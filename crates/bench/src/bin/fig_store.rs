//! Behavior-store benchmark (ISSUE 4): cold live extraction vs warm
//! store scans across *process-fresh* sessions.
//!
//! The paper's headline optimization is materializing extracted unit
//! behaviors so repeated inspection never re-runs the model; PR 4 makes
//! that durable. This bin measures the payoff on a real char-LSTM
//! extractor: every iteration opens a **fresh** `Session` (fresh-process
//! semantics — plan cache, score cache and buffer pool all start cold,
//! only the on-disk store persists) and runs the same extraction-bound
//! 5-query correlation batch (materialization pays for the extractor,
//! so the workload is sized to be extraction-dominated — 96 hidden
//! units over 384 records of 16 symbols):
//!
//! * `cold_live_extraction` — no store configured: the LSTM forward
//!   passes run every iteration.
//! * `warm_store_scan`      — read-write store populated once: unit
//!   columns are scanned from disk through the buffer pool; the
//!   extractor is never called (asserted via a counting wrapper).
//!
//! Writes `BENCH_PR4.json` in the current directory.
//!
//! Run with: `cargo run --release -p deepbase-bench --bin fig_store`

use deepbase::prelude::*;
use deepbase::query::UnitMeta;
use deepbase_nn::{CharLstmModel, OutputMode};
use deepbase_tensor::Matrix;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ND: usize = 384;
const NS: usize = 16;
const UNITS: usize = 96;

/// Owned char-LSTM extractor with forward-pass counting and a weight
/// fingerprint — the store key that survives process restarts.
struct OwnedLstmExtractor {
    model: CharLstmModel,
    forward_passes: Arc<AtomicUsize>,
}

impl Extractor for OwnedLstmExtractor {
    fn n_units(&self) -> usize {
        self.model.hidden()
    }

    fn extract(&self, records: &[&Record], unit_ids: &[usize]) -> Matrix {
        self.forward_passes.fetch_add(1, Ordering::SeqCst);
        if records.is_empty() {
            return Matrix::zeros(0, unit_ids.len());
        }
        let inputs: Vec<Vec<u32>> = records.iter().map(|r| r.symbols.clone()).collect();
        let full = self.model.extract_activations(&inputs);
        let mut out = Matrix::zeros(full.rows(), unit_ids.len());
        for r in 0..full.rows() {
            let src = full.row(r);
            let dst = out.row_mut(r);
            for (c, &u) in unit_ids.iter().enumerate() {
                dst[c] = src[u];
            }
        }
        out
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(char_model_fingerprint(&self.model))
    }
}

fn build_catalog(forward_passes: &Arc<AtomicUsize>) -> Catalog {
    let records: Vec<Record> = (0..ND)
        .map(|i| {
            let chars: Vec<char> = (0..NS)
                .map(|t| match (i * 11 + t * 5) % 7 {
                    0 | 4 => 'a',
                    1 | 5 => 'b',
                    2 => 'c',
                    _ => 'd',
                })
                .collect();
            let symbols: Vec<u32> = chars.iter().map(|&c| c as u32 - 'a' as u32).collect();
            Record::standalone(i, symbols, chars.into_iter().collect())
        })
        .collect();
    let mut catalog = Catalog::new();
    catalog.add_model_with_units(
        "probe",
        5,
        Arc::new(OwnedLstmExtractor {
            model: CharLstmModel::new(4, UNITS, OutputMode::LastStep, 42),
            forward_passes: Arc::clone(forward_passes),
        }),
        (0..UNITS)
            .map(|uid| UnitMeta {
                uid,
                layer: (uid % 2) as i64,
            })
            .collect(),
    );
    catalog.add_hypotheses(
        "chars",
        vec![
            Arc::new(FnHypothesis::char_class("is_a", |c| c == 'a')),
            Arc::new(FnHypothesis::char_class("is_b", |c| c == 'b')),
            Arc::new(FnHypothesis::char_class("is_c", |c| c == 'c')),
        ],
    );
    catalog.add_hypotheses("position", vec![Arc::new(FnHypothesis::position_counter())]);
    catalog.add_dataset("seq", Arc::new(Dataset::new("seq", NS, records).unwrap()));
    catalog
}

/// The repeated inspection batch: overlapping unit filters and GROUP BY
/// over correlation (a tiny epsilon keeps every pass streaming the full
/// dataset, so the cold run materializes complete columns).
const QUERIES: [&str; 5] = [
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D HAVING S.unit_score > 0.5",
    "SELECT S.group_id, S.uid INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE H.name = 'chars' GROUP BY U.layer",
    "SELECT S.uid, S.hyp_id, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D WHERE H.name = 'position'",
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE U.layer = 0 HAVING S.unit_score > 0.3",
    "SELECT S.uid, S.unit_score, S.group_score INSPECT U.uid AND H.h USING corr \
     OVER D.seq AS S FROM models M, units U, hypotheses H, inputs D \
     WHERE U.uid < 24 AND H.name = 'chars'",
];

fn inspection_config() -> InspectionConfig {
    InspectionConfig {
        block_records: 64,
        epsilon: Some(1e-12),
        ..Default::default()
    }
}

fn fresh_session(forward_passes: &Arc<AtomicUsize>, store: Option<StoreConfig>) -> Session {
    Session::with_config(
        build_catalog(forward_passes),
        SessionConfig {
            inspection: inspection_config(),
            store,
            ..SessionConfig::default()
        },
    )
}

/// Median nanoseconds per iteration; `f` builds and runs one
/// process-fresh session per call.
fn time_runs(mut f: impl FnMut()) -> f64 {
    f(); // warm the OS caches, not the session (each call is fresh)
    let mut samples = Vec::new();
    let mut spent = Duration::ZERO;
    while samples.len() < 9 && (spent < Duration::from_millis(1500) || samples.len() < 3) {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        spent += elapsed;
        samples.push(elapsed.as_secs_f64() * 1e9);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let store_dir = PathBuf::from("target/tmp-fig-store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_config = || StoreConfig {
        block_records: 64,
        ..StoreConfig::at(&store_dir)
    };

    // Correctness gate: populate the store once, then prove a fresh
    // session answers bit-identically with zero forward passes.
    let live_passes = Arc::new(AtomicUsize::new(0));
    let mut live = fresh_session(&live_passes, None);
    let reference = live.run_batch(&QUERIES).unwrap();
    drop(live);

    let cold_passes = Arc::new(AtomicUsize::new(0));
    let mut cold = fresh_session(&cold_passes, Some(store_config()));
    let populated = cold.run_batch(&QUERIES).unwrap();
    assert_eq!(populated.tables, reference.tables);
    let columns_written = populated.report.store.columns_written;
    assert_eq!(
        columns_written, UNITS,
        "cold pass materializes every column"
    );
    drop(cold);

    let warm_passes = Arc::new(AtomicUsize::new(0));
    let mut warm = fresh_session(&warm_passes, Some(store_config()));
    let warmed = warm.run_batch(&QUERIES).unwrap();
    assert_eq!(
        warmed.tables, reference.tables,
        "warm store scan must be bit-identical to live extraction"
    );
    assert_eq!(
        warm_passes.load(Ordering::SeqCst),
        0,
        "warm store scan must run zero extractor forward passes"
    );
    let warm_stats = warmed.report.store.clone();
    drop(warm);

    // Timed comparison: one process-fresh session per iteration.
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<28} {ns:>14.0} ns");
        entries.push((name.to_string(), ns));
    };
    let timing_passes = Arc::new(AtomicUsize::new(0));
    record(
        "cold_live_extraction",
        time_runs(|| {
            let mut session = fresh_session(&timing_passes, None);
            black_box(session.run_batch(&QUERIES).unwrap());
        }),
    );
    let scan_passes = Arc::new(AtomicUsize::new(0));
    record(
        "warm_store_scan",
        time_runs(|| {
            let mut session = fresh_session(&scan_passes, Some(store_config()));
            black_box(session.run_batch(&QUERIES).unwrap());
        }),
    );
    assert_eq!(
        scan_passes.load(Ordering::SeqCst),
        0,
        "every timed warm iteration stays extraction-free"
    );

    let ns_of = |name: &str| entries.iter().find(|(n, _)| n == name).unwrap().1;
    let speedup = ns_of("cold_live_extraction") / ns_of("warm_store_scan");
    println!("store columns written     : {columns_written}");
    println!(
        "warm blocks read          : {} ({} pool hits, {} pool misses)",
        warm_stats.blocks_read, warm_stats.pool_hits, warm_stats.pool_misses
    );
    println!(
        "forward passes avoided    : {} per warm batch",
        warm_stats.forward_passes_avoided
    );
    println!("warm store scan speedup   : {speedup:.2}x");

    let mut json = String::from("{\n  \"pr\": 4,\n  \"benchmarks\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{\"ns_per_iter\": {ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"warm_scan_speedup\": {speedup:.3},\n  \
         \"columns_written\": {columns_written},\n  \
         \"warm_blocks_read\": {},\n  \
         \"warm_pool_hits\": {},\n  \
         \"warm_pool_misses\": {},\n  \
         \"warm_pool_evictions\": {},\n  \
         \"warm_forward_passes_avoided\": {},\n  \
         \"warm_forward_passes\": 0\n}}\n",
        warm_stats.blocks_read,
        warm_stats.pool_hits,
        warm_stats.pool_misses,
        warm_stats.pool_evictions,
        warm_stats.forward_passes_avoided
    ));
    deepbase_bench::emit_json("BENCH_PR4.json", &json);
    let _ = std::fs::remove_dir_all(&store_dir);
}
