//! Figure 6: DeepBase optimization ablation for the correlation measure.
//!
//! Correlation runs on the CPU (model merging is a GPU-side optimization,
//! so it is disabled here, as in the paper): the ablation compares the
//! naive PyBase design, + early stopping (+ES), and full DeepBase (+ lazy
//! streaming extraction) over the three sweeps.
//!
//! Paper shape: the dominant win comes from early stopping; lazy
//! extraction adds more as the record count grows, and matters less as
//! the unit count grows (pairwise-correlation compute dominates).

use deepbase::prelude::*;
use deepbase_bench::{hypothesis_refs, print_table, run_engine, secs, sql_bench_setup, Args};

fn main() {
    let args = Args::parse();
    println!("== Figure 6: optimization ablation (correlation) ==");
    let corr = CorrelationMeasure;
    let variants: [(&str, EngineKind); 3] = [
        ("PyBase", EngineKind::PyBase),
        ("+ES", EngineKind::MergedEarlyStop), // merging is a no-op for corr
        ("DeepBase", EngineKind::DeepBase),
    ];

    let base_records = if args.paper { 29_696 } else { 768 };
    let base_units = if args.paper { 512 } else { 32 };
    let hyp_counts: Vec<usize> = if args.paper {
        vec![48, 96, 190]
    } else {
        vec![4, 8, 16]
    };
    let record_counts: Vec<usize> = if args.paper {
        vec![7_424, 14_848, 29_696]
    } else {
        vec![192, 384, 768]
    };
    let unit_counts: Vec<usize> = if args.paper {
        vec![128, 256, 512]
    } else {
        vec![16, 32, 64]
    };

    println!("\n-- sweep over #hypotheses --");
    let setup = sql_bench_setup(&args, base_records, base_units);
    let mut rows = Vec::new();
    for &n in &hyp_counts {
        let hyps = hypothesis_refs(&setup.workload, n);
        let mut cells = vec![n.to_string()];
        for (_, engine) in &variants {
            cells.push(secs(
                run_engine(
                    &setup,
                    &hyps,
                    &corr,
                    *engine,
                    Device::SingleCore,
                    None,
                    None,
                )
                .total,
            ));
        }
        rows.push(cells);
    }
    print_table(&["#hyps", "PyBase", "+ES", "DeepBase"], &rows);

    println!("\n-- sweep over #records --");
    let mut rows = Vec::new();
    for &records in &record_counts {
        let setup = sql_bench_setup(&args, records, base_units);
        let hyps = hypothesis_refs(&setup.workload, hyp_counts[1]);
        let mut cells = vec![setup.workload.dataset.len().to_string()];
        for (_, engine) in &variants {
            cells.push(secs(
                run_engine(
                    &setup,
                    &hyps,
                    &corr,
                    *engine,
                    Device::SingleCore,
                    None,
                    None,
                )
                .total,
            ));
        }
        rows.push(cells);
    }
    print_table(&["#records", "PyBase", "+ES", "DeepBase"], &rows);

    println!("\n-- sweep over #hidden units --");
    let mut rows = Vec::new();
    for &units in &unit_counts {
        let setup = sql_bench_setup(&args, base_records, units);
        let hyps = hypothesis_refs(&setup.workload, hyp_counts[1]);
        let mut cells = vec![units.to_string()];
        for (_, engine) in &variants {
            cells.push(secs(
                run_engine(
                    &setup,
                    &hyps,
                    &corr,
                    *engine,
                    Device::SingleCore,
                    None,
                    None,
                )
                .total,
            ));
        }
        rows.push(cells);
    }
    print_table(&["#units", "PyBase", "+ES", "DeepBase"], &rows);
    println!(
        "\n(expected: +ES ≤ PyBase everywhere; DeepBase ≤ +ES, \
              with the streaming gain largest on the record sweep)"
    );
}
