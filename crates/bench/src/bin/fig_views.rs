//! Materialized-view benchmark (ISSUE 9): the append-and-serve loop,
//! cold per-request execution vs view replay with incremental refresh.
//!
//! The workload models a dashboard polling one INSPECT statement while
//! the dataset grows: each round appends a segment and then serves the
//! same statement several times. Without a view every serve pays
//! char-LSTM forward passes over the whole dataset; with a materialized
//! view each round pays one *incremental* refresh (forward passes over
//! only the appended segment) and every serve replays the stored frame
//! with zero extraction and zero store block reads:
//!
//! * `cold_append_serve` — no store, fresh session per request: every
//!   serve re-extracts every segment seen so far.
//! * `view_append_serve` — read-write store + named view: per round one
//!   incremental refresh, then replay-only serves (asserted: zero
//!   forward passes AND zero store block reads) that stay bit-identical
//!   to the cold answers.
//!
//! Writes `BENCH_PR9.json` in the current directory.
//!
//! Run with: `cargo run --release -p deepbase-bench --bin fig_views`

use deepbase::prelude::*;
use deepbase::query::UnitMeta;
use deepbase_nn::{CharLstmModel, OutputMode};
use deepbase_relational::Table;
use deepbase_tensor::Matrix;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEG: usize = 64;
const APPENDS: usize = 3;
/// Serves per round: how often the statement is answered between
/// appends. Replay cost is flat in this; cold cost is linear.
const SERVES: usize = 4;
/// LSTM hidden width — forward cost is quadratic in this, so it sets
/// how expensive every cold serve is.
const HIDDEN: usize = 256;
const UNITS: usize = 16;
const BLOCK: usize = 64;

/// Owned char-LSTM extractor with forward-pass counting and a weight
/// fingerprint (stable across sessions, so views stay valid).
struct OwnedLstmExtractor {
    model: CharLstmModel,
    forward_passes: Arc<AtomicUsize>,
}

impl Extractor for OwnedLstmExtractor {
    fn n_units(&self) -> usize {
        self.model.hidden()
    }

    fn extract(&self, records: &[&Record], unit_ids: &[usize]) -> Matrix {
        self.forward_passes.fetch_add(1, Ordering::SeqCst);
        if records.is_empty() {
            return Matrix::zeros(0, unit_ids.len());
        }
        let inputs: Vec<Vec<u32>> = records.iter().map(|r| r.symbols.clone()).collect();
        let full = self.model.extract_activations(&inputs);
        let mut out = Matrix::zeros(full.rows(), unit_ids.len());
        for r in 0..full.rows() {
            let src = full.row(r);
            let dst = out.row_mut(r);
            for (c, &u) in unit_ids.iter().enumerate() {
                dst[c] = src[u];
            }
        }
        out
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(char_model_fingerprint(&self.model))
    }
}

/// One segment's worth of records, ids contiguous across segments.
fn segment_records(segment: usize) -> Vec<Record> {
    (segment * SEG..(segment + 1) * SEG)
        .map(|i| {
            let chars: Vec<char> = (0..NS_SYM)
                .map(|t| match (i * 11 + t * 5) % 7 {
                    0 | 4 => 'a',
                    1 | 5 => 'b',
                    2 => 'c',
                    _ => 'd',
                })
                .collect();
            let symbols: Vec<u32> = chars.iter().map(|&c| c as u32 - 'a' as u32).collect();
            Record::standalone(i, symbols, chars.into_iter().collect())
        })
        .collect()
}

const NS_SYM: usize = 16;

/// Catalog whose dataset holds segments `0..segments`.
fn build_catalog(segments: usize, forward_passes: &Arc<AtomicUsize>) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add_model_with_units(
        "probe",
        5,
        Arc::new(OwnedLstmExtractor {
            model: CharLstmModel::new(4, HIDDEN, OutputMode::LastStep, 42),
            forward_passes: Arc::clone(forward_passes),
        }),
        (0..UNITS)
            .map(|uid| UnitMeta {
                uid,
                layer: (uid % 2) as i64,
            })
            .collect(),
    );
    catalog.add_hypotheses(
        "chars",
        vec![
            Arc::new(FnHypothesis::char_class("is_a", |c| c == 'a')),
            Arc::new(FnHypothesis::char_class("is_b", |c| c == 'b')),
        ],
    );
    catalog.add_dataset(
        "seq",
        Arc::new(
            Dataset::with_segments("seq", NS_SYM, (0..segments).map(segment_records).collect())
                .unwrap(),
        ),
    );
    catalog
}

const QUERY: &str = "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
                     FROM models M, units U, hypotheses H, inputs D";

fn inspection() -> InspectionConfig {
    InspectionConfig {
        block_records: BLOCK,
        epsilon: Some(1e-12),
        ..Default::default()
    }
}

/// The cold serving loop: every serve is a fresh store-less session over
/// the grown dataset — full re-extraction per request. Returns each
/// round's answer and the summed serve time (appends excluded).
fn run_cold() -> (Vec<Table>, f64) {
    let forward_passes = Arc::new(AtomicUsize::new(0));
    let mut tables = Vec::new();
    let mut serve_ns = 0.0;
    for round in 0..=APPENDS {
        let mut last = None;
        for _ in 0..SERVES {
            let mut session = Session::with_config(
                build_catalog(round + 1, &forward_passes),
                SessionConfig {
                    inspection: inspection(),
                    ..SessionConfig::default()
                },
            );
            let start = Instant::now();
            last = Some(black_box(session.run(QUERY).unwrap()));
            serve_ns += start.elapsed().as_secs_f64() * 1e9;
        }
        tables.push(last.unwrap());
    }
    (tables, serve_ns)
}

struct ViewLoop {
    tables: Vec<Table>,
    serve_ns: f64,
    refresh_passes: Vec<usize>,
    replay_passes: usize,
    replay_blocks_read: usize,
    stats: StoreStats,
}

/// The view serving loop: one session, one named view. Each round pays
/// one incremental refresh; every serve replays the stored frame.
fn run_view(store_dir: &PathBuf) -> ViewLoop {
    let forward_passes = Arc::new(AtomicUsize::new(0));
    let mut session = Session::with_config(
        build_catalog(1, &forward_passes),
        SessionConfig {
            inspection: inspection(),
            store: Some(StoreConfig {
                block_records: BLOCK,
                ..StoreConfig::at(store_dir)
            }),
            ..SessionConfig::default()
        },
    );
    session.create_view("dashboard", QUERY).unwrap();
    let mut tables = Vec::new();
    let mut serve_ns = 0.0;
    let mut refresh_passes = Vec::new();
    let (mut replay_passes, mut replay_blocks_read) = (0usize, 0usize);
    for round in 0..=APPENDS {
        if round > 0 {
            session
                .append_records("seq", segment_records(round))
                .unwrap();
            let before = forward_passes.load(Ordering::SeqCst);
            let start = Instant::now();
            let refresh = session.refresh_view("dashboard").unwrap();
            serve_ns += start.elapsed().as_secs_f64() * 1e9;
            assert_eq!(refresh, ViewRefresh::Incremental { new_segments: 1 });
            refresh_passes.push(forward_passes.load(Ordering::SeqCst) - before);
        }
        let passes_before = forward_passes.load(Ordering::SeqCst);
        let blocks_before = session.store_stats().blocks_read;
        let mut last = None;
        for _ in 0..SERVES {
            let start = Instant::now();
            last = Some(black_box(session.read_view("dashboard").unwrap()));
            serve_ns += start.elapsed().as_secs_f64() * 1e9;
        }
        replay_passes += forward_passes.load(Ordering::SeqCst) - passes_before;
        replay_blocks_read += session.store_stats().blocks_read - blocks_before;
        tables.push(last.unwrap());
    }
    ViewLoop {
        tables,
        serve_ns,
        refresh_passes,
        replay_passes,
        replay_blocks_read,
        stats: session.store_stats().clone(),
    }
}

/// Median summed serve nanoseconds across loop repetitions.
fn time_loops(mut f: impl FnMut() -> f64) -> f64 {
    f(); // warm the OS caches (every loop is otherwise self-contained)
    let mut samples = Vec::new();
    let mut spent = Duration::ZERO;
    while samples.len() < 7 && (spent < Duration::from_millis(2500) || samples.len() < 3) {
        let start = Instant::now();
        samples.push(f());
        spent += start.elapsed();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let store_dir = PathBuf::from("target/tmp-fig-views");
    let _ = std::fs::remove_dir_all(&store_dir);
    let blocks_per_segment = SEG.div_ceil(BLOCK);

    // Correctness gate: replay and incremental refresh must match the
    // cold answers bit-identically at every round, the replays must do
    // zero forward passes and zero store block reads, and each refresh
    // must extract only the appended segment.
    let (cold_tables, _) = run_cold();
    let view = run_view(&store_dir);
    assert_eq!(cold_tables.len(), view.tables.len());
    for (round, (c, v)) in cold_tables.iter().zip(&view.tables).enumerate() {
        assert_eq!(c, v, "view serve == cold serve at round {round}");
    }
    assert_eq!(view.replay_passes, 0, "replays ran forward passes");
    assert_eq!(view.replay_blocks_read, 0, "replays read store blocks");
    for &passes in &view.refresh_passes {
        assert_eq!(
            passes, blocks_per_segment,
            "each refresh extracts only the appended segment"
        );
    }
    assert_eq!(view.stats.view_hits, (APPENDS + 1) * SERVES);
    assert_eq!(view.stats.view_refreshes, APPENDS);
    let view_stats = view.stats;

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<28} {ns:>14.0} ns");
        entries.push((name.to_string(), ns));
    };
    record("cold_append_serve", time_loops(|| run_cold().1));
    record(
        "view_append_serve",
        time_loops(|| {
            let _ = std::fs::remove_dir_all(&store_dir);
            run_view(&store_dir).serve_ns
        }),
    );

    let ns_of = |name: &str| entries.iter().find(|(n, _)| n == name).unwrap().1;
    let speedup = ns_of("cold_append_serve") / ns_of("view_append_serve");
    println!(
        "workload                  : {APPENDS} appends x {SEG} records, {SERVES} serves per round"
    );
    println!("replay forward passes     : 0 (asserted), store blocks read: 0 (asserted)");
    println!(
        "refresh passes per append : {blocks_per_segment} (cold serve grows to {})",
        (APPENDS + 1) * blocks_per_segment
    );
    println!(
        "view bytes written        : {} over {} builds+refreshes",
        view_stats.view_bytes_written,
        view_stats.view_builds + view_stats.view_refreshes
    );
    println!("replay serving speedup    : {speedup:.2}x");

    let mut json = String::from("{\n  \"pr\": 9,\n  \"benchmarks\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{\"ns_per_iter\": {ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"replay_speedup\": {speedup:.3},\n  \
         \"appends\": {APPENDS},\n  \
         \"serves_per_round\": {SERVES},\n  \
         \"segment_records\": {SEG},\n  \
         \"replay_forward_passes\": 0,\n  \
         \"replay_blocks_read\": 0,\n  \
         \"refresh_passes_per_append\": {blocks_per_segment},\n  \
         \"view_bytes_written\": {}\n}}\n",
        view_stats.view_bytes_written
    ));
    deepbase_bench::emit_json("BENCH_PR9.json", &json);
    let _ = std::fs::remove_dir_all(&store_dir);
}
