//! Multi-query sharing benchmark (ISSUE 2): shared-extraction batch
//! scheduling vs per-query execution.
//!
//! Runs a workload of INSPECT queries that all inspect the same model —
//! the paper's §5 amortization claim — once as N sequential
//! `run_query` calls and once as a batch through the `Session` API
//! (score reuse disabled, so the timing isolates shared extraction and
//! plan-cache amortization, not result caching; `fig_plan_cache` measures
//! the caches), on the single-core and pool-parallel devices, and reports
//! wall-clock plus extraction-work accounting (records extracted,
//! hypothesis evaluations). Writes `BENCH_PR2.json` in the current
//! directory.
//!
//! Run with: `cargo run --release -p deepbase-bench --bin fig_batch_sharing`

use deepbase::prelude::*;
use deepbase::query::{run_query, UnitMeta};
use deepbase_nn::{CharLstmModel, OutputMode};
use deepbase_tensor::Matrix;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ND: usize = 384;
const NS: usize = 12;
const UNITS: usize = 48;

/// Owned char-LSTM extractor: a *real* forward pass per extraction, the
/// cost the paper's shared-extraction argument is about (the catalog
/// needs `'static` extractors, so the model is owned rather than
/// borrowed as in `CharModelExtractor`).
struct CountingExtractor {
    model: CharLstmModel,
    records: Arc<AtomicUsize>,
}

impl Extractor for CountingExtractor {
    fn n_units(&self) -> usize {
        self.model.hidden()
    }

    fn extract(&self, records: &[&Record], unit_ids: &[usize]) -> Matrix {
        self.records.fetch_add(records.len(), Ordering::SeqCst);
        if records.is_empty() {
            return Matrix::zeros(0, unit_ids.len());
        }
        let inputs: Vec<Vec<u32>> = records.iter().map(|r| r.symbols.clone()).collect();
        let full = self.model.extract_activations(&inputs);
        let mut out = Matrix::zeros(full.rows(), unit_ids.len());
        for r in 0..full.rows() {
            let src = full.row(r);
            let dst = out.row_mut(r);
            for (c, &u) in unit_ids.iter().enumerate() {
                dst[c] = src[u];
            }
        }
        out
    }
}

struct CountingHypothesis {
    inner: FnHypothesis,
    calls: Arc<AtomicUsize>,
}

impl HypothesisFn for CountingHypothesis {
    fn id(&self) -> &str {
        self.inner.id()
    }

    fn behavior(&self, record: &Record) -> Result<Vec<f32>, DniError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.behavior(record)
    }
}

fn build_catalog() -> (Catalog, Arc<AtomicUsize>, Arc<AtomicUsize>) {
    let records: Vec<Record> = (0..ND)
        .map(|i| {
            let chars: Vec<char> = (0..NS)
                .map(|t| match (i * 11 + t * 5) % 7 {
                    0 | 4 => 'a',
                    1 | 5 => 'b',
                    2 => 'c',
                    _ => 'd',
                })
                .collect();
            let symbols: Vec<u32> = chars.iter().map(|&c| c as u32 - 'a' as u32).collect();
            Record::standalone(i, symbols, chars.into_iter().collect())
        })
        .collect();
    let dataset = Arc::new(Dataset::new("seq", NS, records).unwrap());

    let extracted = Arc::new(AtomicUsize::new(0));
    let evals = Arc::new(AtomicUsize::new(0));
    let mut catalog = Catalog::new();
    catalog.add_model_with_units(
        "probe",
        5,
        Arc::new(CountingExtractor {
            model: CharLstmModel::new(4, UNITS, OutputMode::LastStep, 42),
            records: Arc::clone(&extracted),
        }),
        (0..UNITS)
            .map(|uid| UnitMeta {
                uid,
                layer: (uid % 2) as i64,
            })
            .collect(),
    );

    let count = |h: FnHypothesis| -> Arc<dyn HypothesisFn> {
        Arc::new(CountingHypothesis {
            inner: h,
            calls: Arc::clone(&evals),
        })
    };
    let is_a = count(FnHypothesis::char_class("is_a", |c| c == 'a'));
    let is_b = count(FnHypothesis::char_class("is_b", |c| c == 'b'));
    let is_c = count(FnHypothesis::char_class("is_c", |c| c == 'c'));
    let counter = count(FnHypothesis::position_counter());
    catalog.add_hypotheses("chars", vec![Arc::clone(&is_a), is_b, is_c]);
    catalog.add_hypotheses("position", vec![counter, is_a]);
    catalog.add_dataset("seq", dataset);
    (catalog, extracted, evals)
}

/// Eight queries over one model: overlapping hypothesis sets, varied unit
/// filters, GROUP BY, HAVING, and measures — the "many hypotheses over
/// one model" workload the batch scheduler amortizes.
const QUERIES: [&str; 8] = [
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D HAVING S.unit_score > 0.5",
    "SELECT S.group_id, S.uid INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE H.name = 'chars' GROUP BY U.layer",
    "SELECT S.uid, S.hyp_id, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D WHERE H.name = 'position'",
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE U.layer = 0 HAVING S.unit_score > 0.3",
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE U.layer = 1 AND H.name = 'chars'",
    "SELECT S.uid, S.unit_score, S.group_score INSPECT U.uid AND H.h USING mutual_info \
     OVER D.seq AS S FROM models M, units U, hypotheses H, inputs D \
     WHERE U.uid < 6 AND H.name = 'chars'",
    "SELECT S.uid, S.group_score INSPECT U.uid AND H.h USING logreg_l1 OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE U.uid < 16 AND H.name = 'position'",
    "SELECT M.epoch, S.uid INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D HAVING S.group_score > 0.2",
];

fn time_runs(mut f: impl FnMut()) -> f64 {
    f(); // warm up
    let mut samples = Vec::new();
    let mut spent = Duration::ZERO;
    while samples.len() < 9 && (spent < Duration::from_millis(1500) || samples.len() < 3) {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        spent += elapsed;
        samples.push(elapsed.as_secs_f64() * 1e9);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<44} {ns:>14.0} ns");
        entries.push((name.to_string(), ns));
    };

    let config = |device: Device| InspectionConfig {
        device,
        block_records: 64,
        ..Default::default()
    };

    // Wall-clock: N sequential executions vs one shared batch, both devices.
    let (catalog, _, _) = build_catalog();
    for (i, q) in QUERIES.iter().enumerate() {
        let cfg = config(Device::SingleCore);
        let t = Instant::now();
        let _ = run_query(q, &catalog, &cfg).unwrap();
        println!("query {i}: {:>10.1} us", t.elapsed().as_secs_f64() * 1e6);
    }
    for (device, tag) in [
        (Device::SingleCore, "single"),
        (Device::Parallel(4), "parallel_t4"),
    ] {
        let cfg = config(device);
        // Correctness gate before timing: identical tables.
        let sequential: Vec<_> = QUERIES
            .iter()
            .map(|q| run_query(q, &catalog, &cfg).unwrap())
            .collect();
        record(
            &format!("multi_query_sequential_{tag}"),
            time_runs(|| {
                for q in &QUERIES {
                    black_box(run_query(q, &catalog, &cfg).unwrap());
                }
            }),
        );
        let (session_catalog, _, _) = build_catalog();
        let mut session = Session::with_config(
            session_catalog,
            SessionConfig {
                inspection: cfg.clone(),
                reuse_scores: false,
                ..SessionConfig::default()
            },
        );
        let batch = session.run_batch(&QUERIES).unwrap();
        assert_eq!(
            batch.tables, sequential,
            "batch must match sequential execution"
        );
        record(
            &format!("multi_query_batch_{tag}"),
            time_runs(|| {
                black_box(session.run_batch(&QUERIES).unwrap());
            }),
        );
    }

    // Work accounting on fresh catalogs (tight epsilon: full passes, so
    // the counts are exact rather than convergence-dependent).
    let tight = InspectionConfig {
        epsilon: Some(1e-9),
        block_records: 64,
        ..Default::default()
    };
    let (catalog, extracted, evals) = build_catalog();
    for q in &QUERIES {
        let _ = run_query(q, &catalog, &tight).unwrap();
    }
    let seq_extracted = extracted.load(Ordering::SeqCst);
    let seq_evals = evals.load(Ordering::SeqCst);

    let (catalog, extracted, evals) = build_catalog();
    let mut session = Session::with_config(
        catalog,
        SessionConfig {
            inspection: tight.clone(),
            reuse_scores: false,
            ..SessionConfig::default()
        },
    );
    let batch = session.run_batch(&QUERIES).unwrap();
    let batch_extracted = extracted.load(Ordering::SeqCst);
    let batch_evals = evals.load(Ordering::SeqCst);
    assert_eq!(batch.report.groups.len(), 1);
    assert_eq!(batch.report.groups[0].extraction_passes, 1);

    println!("records extracted : sequential {seq_extracted}, batch {batch_extracted}");
    println!("hypothesis evals  : sequential {seq_evals}, batch {batch_evals}");

    let seq_single = entries
        .iter()
        .find(|(n, _)| n == "multi_query_sequential_single")
        .unwrap()
        .1;
    let batch_single = entries
        .iter()
        .find(|(n, _)| n == "multi_query_batch_single")
        .unwrap()
        .1;
    let speedup = seq_single / batch_single;
    println!("shared-batch speedup (single-core): {speedup:.2}x");

    let mut json = String::from("{\n  \"pr\": 2,\n  \"benchmarks\": {\n");
    for (name, ns) in &entries {
        json.push_str(&format!("    \"{name}\": {{\"ns_per_iter\": {ns:.1}}},\n"));
    }
    json.push_str(&format!(
        "    \"speedup_single_core\": {{\"x\": {speedup:.3}}}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"extraction\": {{\n    \"sequential_records_extracted\": {seq_extracted},\n    \
         \"batch_records_extracted\": {batch_extracted},\n    \
         \"sequential_hypothesis_evals\": {seq_evals},\n    \
         \"batch_hypothesis_evals\": {batch_evals},\n    \
         \"queries\": {},\n    \"extraction_passes\": 1\n  }}\n}}\n",
        QUERIES.len()
    ));
    deepbase_bench::emit_json("BENCH_PR2.json", &json);
}
