//! Figure 14 (Appendix D): F1 of the highest-affinity hypotheses across
//! training epochs of the SQL auto-completion model.
//!
//! Paper shape: clause-level hypotheses (SELECT/FROM/WHERE/ORDER) are
//! learned within the first epochs — affinity rises with accuracy — with
//! ORDER-related rules among the strongest.

use deepbase::prelude::*;
use deepbase::workloads::sql;
use deepbase_bench::{print_table, Args};

fn main() {
    let args = Args::parse();
    println!("== Figure 14: hypothesis affinity across training epochs ==\n");
    let workload = sql::build(&sql::SqlWorkloadConfig {
        n_queries: if args.paper { 4096 } else { 64 },
        max_records: if args.paper { 29_696 } else { 768 },
        ..Default::default()
    });
    let hidden = if args.paper { 512 } else { 32 };
    let epochs = if args.paper { 13 } else { 4 };
    let snapshots = sql::train_model(&workload, hidden, epochs, 0.02, 5);

    // Inspect snapshots at epochs 0 (random init), 1, and the last —
    // the paper's checkpoints.
    let checkpoints: Vec<usize> = vec![0, 1, snapshots.len() - 1];
    let tracked = [
        "select_kw:time",
        "from_kw:time",
        "where_kw:time",
        "order_kw:time",
        "ordering_term:time",
        "number:time",
    ];
    let hypotheses: Vec<&dyn HypothesisFn> = workload
        .hypotheses
        .iter()
        .filter(|h| tracked.contains(&h.id()))
        .map(|h| h as &dyn HypothesisFn)
        .collect();
    let logreg = LogRegMeasure {
        inner_epochs: 20,
        ..LogRegMeasure::l2(0.001)
    };

    let mut per_checkpoint = Vec::new();
    let mut accuracies = Vec::new();
    for &cp in &checkpoints {
        let model = &snapshots[cp];
        accuracies.push(model.accuracy(&workload.train_inputs, &workload.train_targets));
        let extractor = CharModelExtractor::new(model);
        let request = InspectionRequest {
            model_id: format!("epoch{cp}"),
            extractor: &extractor,
            groups: vec![UnitGroup::all(hidden)],
            dataset: &workload.dataset,
            hypotheses: hypotheses.clone(),
            measures: vec![&logreg],
        };
        let (frame, _) = inspect(&request, &InspectionConfig::default()).expect("inspect");
        per_checkpoint.push(frame);
    }

    println!(
        "model accuracy at checkpoints {:?}: {:?}\n",
        checkpoints,
        accuracies
            .iter()
            .map(|a| format!("{:.1}%", a * 100.0))
            .collect::<Vec<_>>()
    );
    let mut rows = Vec::new();
    for hyp in &tracked {
        let mut cells = vec![hyp.to_string()];
        for frame in &per_checkpoint {
            cells.push(format!(
                "{:.3}",
                frame.group_score("logreg_l2", hyp).unwrap_or(0.0)
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("hypothesis".to_string())
        .chain(checkpoints.iter().map(|c| format!("epoch {c}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);
    println!(
        "\n(expected: F1 rises from epoch 0 to the trained checkpoints for the \
         clause hypotheses — the model learns SQL structure, not arbitrary n-grams)"
    );
}
