//! Store-side query execution benchmark (ISSUE 10): zone-map predicate
//! pushdown + per-block compression vs plain warm scans and cold live
//! extraction.
//!
//! Real networks saturate: trained char-LSTM gates pin whole units to a
//! constant or a two-level alphabet, and those columns compress to
//! almost nothing while their blocks can be served straight from the
//! zone map without touching the disk. This bin builds that unit mix
//! explicitly — one quarter of the units constant, one quarter saturated
//! to ±1, the rest raw LSTM activations — and measures, with one
//! process-fresh session per iteration:
//!
//! * `cold_live_extraction` — no store: LSTM forward passes every time.
//! * `warm_pruned_scan`     — v3 store, pushdown on (the default):
//!   constant blocks are reconstructed from zone entries, the rest
//!   decompress through the buffer pool.
//! * `warm_unpruned_scan`   — same store, pushdown disabled: every
//!   block is read and checksummed.
//!
//! Asserts bit-identical tables everywhere, zero warm forward passes,
//! `blocks_pruned > 0`, compressed bytes < raw bytes, and a warm-scan
//! speedup over cold extraction > 2.2x. Writes `BENCH_PR10.json`.
//!
//! Run with: `cargo run --release -p deepbase-bench --bin fig_pushdown`

use deepbase::prelude::*;
use deepbase::query::UnitMeta;
use deepbase_nn::{CharLstmModel, OutputMode};
use deepbase_tensor::Matrix;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ND: usize = 384;
const NS: usize = 16;
const UNITS: usize = 96;

/// Char-LSTM extractor with a saturated/constant unit mix layered on
/// top: units ≡ 0 (mod 4) are clamped to a constant, units ≡ 1 (mod 4)
/// saturate to ±1 (a two-symbol alphabet the Dict codec bit-packs), the
/// rest pass the raw activations through. Forward passes are counted and
/// the fingerprint is derived from the underlying weights so the store
/// key survives process restarts.
struct MixedLstmExtractor {
    model: CharLstmModel,
    forward_passes: Arc<AtomicUsize>,
}

impl Extractor for MixedLstmExtractor {
    fn n_units(&self) -> usize {
        self.model.hidden()
    }

    fn extract(&self, records: &[&Record], unit_ids: &[usize]) -> Matrix {
        self.forward_passes.fetch_add(1, Ordering::SeqCst);
        if records.is_empty() {
            return Matrix::zeros(0, unit_ids.len());
        }
        let inputs: Vec<Vec<u32>> = records.iter().map(|r| r.symbols.clone()).collect();
        let full = self.model.extract_activations(&inputs);
        let mut out = Matrix::zeros(full.rows(), unit_ids.len());
        for r in 0..full.rows() {
            let src = full.row(r);
            let dst = out.row_mut(r);
            for (c, &u) in unit_ids.iter().enumerate() {
                dst[c] = match u % 4 {
                    0 => 0.5,
                    1 => {
                        if src[u] >= 0.0 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    _ => src[u],
                };
            }
        }
        out
    }

    fn fingerprint(&self) -> Option<u64> {
        // The mix is part of the behavior, so salt the weight hash.
        Some(char_model_fingerprint(&self.model) ^ 0x7075_7368_646f_776e)
    }
}

fn build_catalog(forward_passes: &Arc<AtomicUsize>) -> Catalog {
    let records: Vec<Record> = (0..ND)
        .map(|i| {
            let chars: Vec<char> = (0..NS)
                .map(|t| match (i * 11 + t * 5) % 7 {
                    0 | 4 => 'a',
                    1 | 5 => 'b',
                    2 => 'c',
                    _ => 'd',
                })
                .collect();
            let symbols: Vec<u32> = chars.iter().map(|&c| c as u32 - 'a' as u32).collect();
            Record::standalone(i, symbols, chars.into_iter().collect())
        })
        .collect();
    let mut catalog = Catalog::new();
    catalog.add_model_with_units(
        "probe",
        5,
        Arc::new(MixedLstmExtractor {
            model: CharLstmModel::new(4, UNITS, OutputMode::LastStep, 42),
            forward_passes: Arc::clone(forward_passes),
        }),
        (0..UNITS)
            .map(|uid| UnitMeta {
                uid,
                layer: (uid % 2) as i64,
            })
            .collect(),
    );
    catalog.add_hypotheses(
        "chars",
        vec![
            Arc::new(FnHypothesis::char_class("is_a", |c| c == 'a')),
            Arc::new(FnHypothesis::char_class("is_b", |c| c == 'b')),
            Arc::new(FnHypothesis::char_class("is_c", |c| c == 'c')),
        ],
    );
    catalog.add_hypotheses("position", vec![Arc::new(FnHypothesis::position_counter())]);
    catalog.add_dataset("seq", Arc::new(Dataset::new("seq", NS, records).unwrap()));
    catalog
}

/// The repeated inspection batch (tiny epsilon keeps every pass
/// streaming the full dataset, so the cold run materializes complete
/// columns and warm runs scan every block that pushdown doesn't prune).
const QUERIES: [&str; 3] = [
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D HAVING S.unit_score > 0.5",
    "SELECT S.group_id, S.uid INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE H.name = 'chars' GROUP BY U.layer",
    "SELECT S.uid, S.hyp_id, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D WHERE H.name = 'position'",
];

fn inspection_config(pushdown: bool) -> InspectionConfig {
    InspectionConfig {
        block_records: 64,
        epsilon: Some(1e-12),
        pushdown,
        ..Default::default()
    }
}

fn fresh_session(
    forward_passes: &Arc<AtomicUsize>,
    store: Option<StoreConfig>,
    pushdown: bool,
) -> Session {
    Session::with_config(
        build_catalog(forward_passes),
        SessionConfig {
            inspection: inspection_config(pushdown),
            store,
            ..SessionConfig::default()
        },
    )
}

/// Median nanoseconds per iteration; `f` builds and runs one
/// process-fresh session per call.
fn time_runs(mut f: impl FnMut()) -> f64 {
    f(); // warm the OS caches, not the session (each call is fresh)
    let mut samples = Vec::new();
    let mut spent = Duration::ZERO;
    while samples.len() < 9 && (spent < Duration::from_millis(1500) || samples.len() < 3) {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        spent += elapsed;
        samples.push(elapsed.as_secs_f64() * 1e9);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let store_dir = PathBuf::from("target/tmp-fig-pushdown");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_config = || StoreConfig {
        block_records: 64,
        ..StoreConfig::at(&store_dir)
    };

    // Correctness gate: populate the store once, then prove a fresh
    // session answers bit-identically with zero forward passes, prunes
    // blocks, and wrote fewer bytes than the raw activations.
    let live_passes = Arc::new(AtomicUsize::new(0));
    let mut live = fresh_session(&live_passes, None, true);
    let reference = live.run_batch(&QUERIES).unwrap();
    drop(live);

    let cold_passes = Arc::new(AtomicUsize::new(0));
    let mut cold = fresh_session(&cold_passes, Some(store_config()), true);
    let populated = cold.run_batch(&QUERIES).unwrap();
    assert_eq!(populated.tables, reference.tables);
    assert_eq!(
        populated.report.store.columns_written, UNITS,
        "cold pass materializes every column"
    );
    let raw_bytes = populated.report.store.raw_bytes_written;
    let stored_bytes = populated.report.store.stored_bytes_written;
    assert!(
        stored_bytes < raw_bytes,
        "the saturated/constant unit mix must compress ({stored_bytes} vs {raw_bytes} raw)"
    );
    drop(cold);

    let warm_passes = Arc::new(AtomicUsize::new(0));
    let mut warm = fresh_session(&warm_passes, Some(store_config()), true);
    let plan = warm.explain_batch(&QUERIES).unwrap();
    assert!(
        plan.contains("pruned:"),
        "explain must render the zone-map pushdown estimate, got:\n{plan}"
    );
    let warmed = warm.run_batch(&QUERIES).unwrap();
    assert_eq!(
        warmed.tables, reference.tables,
        "pruned warm scan must be bit-identical to live extraction"
    );
    assert_eq!(
        warm_passes.load(Ordering::SeqCst),
        0,
        "warm store scan must run zero extractor forward passes"
    );
    let warm_stats = warmed.report.store.clone();
    assert!(
        warm_stats.blocks_pruned > 0,
        "constant units guarantee prunable blocks"
    );
    drop(warm);

    let unpruned_passes = Arc::new(AtomicUsize::new(0));
    let mut unpruned = fresh_session(&unpruned_passes, Some(store_config()), false);
    let unpruned_out = unpruned.run_batch(&QUERIES).unwrap();
    assert_eq!(
        unpruned_out.tables, reference.tables,
        "pushdown-off warm scan must also be bit-identical"
    );
    assert_eq!(unpruned_out.report.store.blocks_pruned, 0);
    drop(unpruned);

    // Timed comparison: one process-fresh session per iteration.
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<28} {ns:>14.0} ns");
        entries.push((name.to_string(), ns));
    };
    let timing_passes = Arc::new(AtomicUsize::new(0));
    record(
        "cold_live_extraction",
        time_runs(|| {
            let mut session = fresh_session(&timing_passes, None, true);
            black_box(session.run_batch(&QUERIES).unwrap());
        }),
    );
    let pruned_passes = Arc::new(AtomicUsize::new(0));
    record(
        "warm_pruned_scan",
        time_runs(|| {
            let mut session = fresh_session(&pruned_passes, Some(store_config()), true);
            black_box(session.run_batch(&QUERIES).unwrap());
        }),
    );
    assert_eq!(
        pruned_passes.load(Ordering::SeqCst),
        0,
        "every timed pruned iteration stays extraction-free"
    );
    let raw_scan_passes = Arc::new(AtomicUsize::new(0));
    record(
        "warm_unpruned_scan",
        time_runs(|| {
            let mut session = fresh_session(&raw_scan_passes, Some(store_config()), false);
            black_box(session.run_batch(&QUERIES).unwrap());
        }),
    );

    let ns_of = |name: &str| entries.iter().find(|(n, _)| n == name).unwrap().1;
    let speedup = ns_of("cold_live_extraction") / ns_of("warm_pruned_scan");
    let prune_gain = ns_of("warm_unpruned_scan") / ns_of("warm_pruned_scan");
    let ratio = stored_bytes as f64 / raw_bytes as f64;
    println!("blocks pruned per warm run: {}", warm_stats.blocks_pruned);
    println!(
        "bytes written             : {stored_bytes} compressed vs {raw_bytes} raw ({:.1}%)",
        ratio * 100.0
    );
    println!(
        "warm blocks read          : {} ({} pool hits, {} pool misses)",
        warm_stats.blocks_read, warm_stats.pool_hits, warm_stats.pool_misses
    );
    println!("warm pruned scan speedup  : {speedup:.2}x over cold extraction");
    println!("pushdown gain             : {prune_gain:.2}x over unpruned warm scan");
    assert!(
        speedup > 2.2,
        "warm pruned scan must beat cold extraction by > 2.2x, got {speedup:.2}x"
    );

    let mut json = String::from("{\n  \"pr\": 10,\n  \"benchmarks\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{\"ns_per_iter\": {ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"warm_scan_speedup\": {speedup:.3},\n  \
         \"pushdown_gain\": {prune_gain:.3},\n  \
         \"blocks_pruned\": {},\n  \
         \"raw_bytes_written\": {raw_bytes},\n  \
         \"stored_bytes_written\": {stored_bytes},\n  \
         \"compression_ratio\": {ratio:.4},\n  \
         \"warm_blocks_read\": {},\n  \
         \"warm_forward_passes\": 0\n}}\n",
        warm_stats.blocks_pruned, warm_stats.blocks_read
    ));
    deepbase_bench::emit_json("BENCH_PR10.json", &json);
    let _ = std::fs::remove_dir_all(&store_dir);
}
