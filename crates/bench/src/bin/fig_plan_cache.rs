//! Plan-cache / session benchmark (ISSUE 3): repeated-batch workloads
//! through a long-lived `Session` vs per-call one-shot execution.
//!
//! A development session re-runs the same INSPECT batch many times (the
//! paper's model-development loop: the hypothesis library and test set
//! stay fixed while the analyst iterates). The one-shot path re-parses,
//! re-binds and re-extracts on every call; a session binds once (plan
//! cache), shares hypothesis behaviors across batches (session cache)
//! and reuses converged scores (score cache). This bin measures the
//! amortization on a real char-LSTM extractor:
//!
//! * `per_call_run_batch`   — `Catalog::run_batch` every iteration
//! * `session_bind_amortized` — `Session::run_batch`, score reuse off
//!   (plan cache + session hypothesis cache only)
//! * `session_full_reuse`   — `Session::run_batch`, full score reuse
//!
//! and reports the repeated-batch speedups plus the plan-cache hit rate.
//! Writes `BENCH_PR3.json` in the current directory.
//!
//! Run with: `cargo run --release -p deepbase-bench --bin fig_plan_cache`

use deepbase::prelude::*;
use deepbase::query::UnitMeta;
use deepbase_nn::{CharLstmModel, OutputMode};
use deepbase_tensor::Matrix;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ND: usize = 256;
const NS: usize = 12;
const UNITS: usize = 32;

/// Owned char-LSTM extractor: a real forward pass per extraction — the
/// cost the session caches amortize away.
struct OwnedLstmExtractor {
    model: CharLstmModel,
}

impl Extractor for OwnedLstmExtractor {
    fn n_units(&self) -> usize {
        self.model.hidden()
    }

    fn extract(&self, records: &[&Record], unit_ids: &[usize]) -> Matrix {
        if records.is_empty() {
            return Matrix::zeros(0, unit_ids.len());
        }
        let inputs: Vec<Vec<u32>> = records.iter().map(|r| r.symbols.clone()).collect();
        let full = self.model.extract_activations(&inputs);
        let mut out = Matrix::zeros(full.rows(), unit_ids.len());
        for r in 0..full.rows() {
            let src = full.row(r);
            let dst = out.row_mut(r);
            for (c, &u) in unit_ids.iter().enumerate() {
                dst[c] = src[u];
            }
        }
        out
    }
}

fn build_catalog() -> Catalog {
    let records: Vec<Record> = (0..ND)
        .map(|i| {
            let chars: Vec<char> = (0..NS)
                .map(|t| match (i * 11 + t * 5) % 7 {
                    0 | 4 => 'a',
                    1 | 5 => 'b',
                    2 => 'c',
                    _ => 'd',
                })
                .collect();
            let symbols: Vec<u32> = chars.iter().map(|&c| c as u32 - 'a' as u32).collect();
            Record::standalone(i, symbols, chars.into_iter().collect())
        })
        .collect();
    let mut catalog = Catalog::new();
    catalog.add_model_with_units(
        "probe",
        5,
        Arc::new(OwnedLstmExtractor {
            model: CharLstmModel::new(4, UNITS, OutputMode::LastStep, 42),
        }),
        (0..UNITS)
            .map(|uid| UnitMeta {
                uid,
                layer: (uid % 2) as i64,
            })
            .collect(),
    );
    catalog.add_hypotheses(
        "chars",
        vec![
            Arc::new(FnHypothesis::char_class("is_a", |c| c == 'a')),
            Arc::new(FnHypothesis::char_class("is_b", |c| c == 'b')),
            Arc::new(FnHypothesis::char_class("is_c", |c| c == 'c')),
        ],
    );
    catalog.add_hypotheses("position", vec![Arc::new(FnHypothesis::position_counter())]);
    catalog.add_dataset("seq", Arc::new(Dataset::new("seq", NS, records).unwrap()));
    catalog
}

/// The repeated development batch: overlapping hypothesis sets, varied
/// unit filters, GROUP BY and measures.
const QUERIES: [&str; 6] = [
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D HAVING S.unit_score > 0.5",
    "SELECT S.group_id, S.uid INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE H.name = 'chars' GROUP BY U.layer",
    "SELECT S.uid, S.hyp_id, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D WHERE H.name = 'position'",
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE U.layer = 0 HAVING S.unit_score > 0.3",
    "SELECT S.uid, S.unit_score, S.group_score INSPECT U.uid AND H.h USING mutual_info \
     OVER D.seq AS S FROM models M, units U, hypotheses H, inputs D \
     WHERE U.uid < 6 AND H.name = 'chars'",
    "SELECT S.uid, S.group_score INSPECT U.uid AND H.h USING logreg_l1 OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE U.uid < 12 AND H.name = 'position'",
];

fn time_runs(mut f: impl FnMut()) -> f64 {
    f(); // warm up (fills session caches: steady-state cost is the point)
    let mut samples = Vec::new();
    let mut spent = Duration::ZERO;
    while samples.len() < 9 && (spent < Duration::from_millis(1500) || samples.len() < 3) {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        spent += elapsed;
        samples.push(elapsed.as_secs_f64() * 1e9);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn session_with(reuse_scores: bool, cfg: &InspectionConfig) -> Session {
    Session::with_config(
        build_catalog(),
        SessionConfig {
            inspection: cfg.clone(),
            reuse_scores,
            ..SessionConfig::default()
        },
    )
}

fn main() {
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<44} {ns:>14.0} ns");
        entries.push((name.to_string(), ns));
    };
    let cfg = InspectionConfig {
        block_records: 64,
        ..Default::default()
    };

    // Correctness gate: all three paths produce identical tables.
    let catalog = build_catalog();
    let per_call = catalog.run_batch(&QUERIES, &cfg).unwrap();
    let mut bind_amortized = session_with(false, &cfg);
    let mut full_reuse = session_with(true, &cfg);
    assert_eq!(
        bind_amortized.run_batch(&QUERIES).unwrap().tables,
        per_call.tables
    );
    let first = full_reuse.run_batch(&QUERIES).unwrap();
    assert_eq!(first.tables, per_call.tables);
    let replay = full_reuse.run_batch(&QUERIES).unwrap();
    assert_eq!(replay.tables, per_call.tables);
    assert_eq!(replay.report.plan.plan_cache_hits, QUERIES.len());
    assert!(replay.report.plan.score_cache_hits > 0);

    record(
        "per_call_run_batch",
        time_runs(|| {
            black_box(catalog.run_batch(&QUERIES, &cfg).unwrap());
        }),
    );
    record(
        "session_bind_amortized",
        time_runs(|| {
            black_box(bind_amortized.run_batch(&QUERIES).unwrap());
        }),
    );
    record(
        "session_full_reuse",
        time_runs(|| {
            black_box(full_reuse.run_batch(&QUERIES).unwrap());
        }),
    );

    let ns_of = |name: &str| entries.iter().find(|(n, _)| n == name).unwrap().1;
    let per_call_ns = ns_of("per_call_run_batch");
    let bind_speedup = per_call_ns / ns_of("session_bind_amortized");
    let reuse_speedup = per_call_ns / ns_of("session_full_reuse");

    let stats = full_reuse.stats();
    let lookups = stats.plan_cache_hits + stats.plan_cache_misses;
    let hit_rate = stats.plan_cache_hits as f64 / lookups.max(1) as f64;
    println!(
        "plan cache        : {} hits / {} lookups ({:.1}% hit rate)",
        stats.plan_cache_hits,
        lookups,
        100.0 * hit_rate
    );
    println!("score cache hits  : {}", stats.score_cache_hits);
    println!("prepare-amortization speedup (scores off): {bind_speedup:.2}x");
    println!("full session reuse speedup               : {reuse_speedup:.2}x");

    let mut json = String::from("{\n  \"pr\": 3,\n  \"benchmarks\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{\"ns_per_iter\": {ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"plan_cache_hit_rate\": {hit_rate:.4},\n  \
         \"plan_cache_hits\": {},\n  \"plan_cache_misses\": {},\n  \
         \"score_cache_hits\": {},\n  \
         \"bind_amortization_speedup\": {bind_speedup:.3},\n  \
         \"full_reuse_speedup\": {reuse_speedup:.3}\n}}\n",
        stats.plan_cache_hits, stats.plan_cache_misses, stats.score_cache_hits
    ));
    deepbase_bench::emit_json("BENCH_PR3.json", &json);
}
