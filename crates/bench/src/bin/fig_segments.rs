//! Segmented-dataset benchmark (ISSUE 7): the append-and-reinspect loop,
//! cold full re-extraction vs warm incremental re-inspection.
//!
//! The workload models a growing dataset: start with one sealed segment,
//! then repeatedly append a segment and re-run the same correlation
//! batch. Without a store every re-run pays char-LSTM forward passes
//! over the *whole* dataset; with per-segment store keys the old
//! segments scan warm and only the appended records are extracted, so
//! the per-append cost stays flat while the dataset grows:
//!
//! * `cold_append_reinspect` — no store: each post-append run re-extracts
//!   every segment seen so far.
//! * `warm_append_reinspect` — read-write store: each post-append run
//!   extracts exactly the new segment (asserted via forward-pass counts)
//!   and stays bit-identical to the cold run.
//!
//! Writes `BENCH_PR7.json` in the current directory.
//!
//! Run with: `cargo run --release -p deepbase-bench --bin fig_segments`

use deepbase::prelude::*;
use deepbase::query::UnitMeta;
use deepbase_nn::{CharLstmModel, OutputMode};
use deepbase_tensor::Matrix;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEG: usize = 64;
const APPENDS: usize = 4;
const NS: usize = 16;
/// LSTM hidden width — forward cost is quadratic in this, so it sets
/// how expensive a cold re-extraction is.
const HIDDEN: usize = 256;
/// Units actually inspected (and stored): a slice of the hidden state,
/// as in the paper's setting where the probe looks at a few units of a
/// large model.
const UNITS: usize = 16;
const BLOCK: usize = 64;

/// Owned char-LSTM extractor with forward-pass counting and a weight
/// fingerprint — the store key that survives process restarts.
struct OwnedLstmExtractor {
    model: CharLstmModel,
    forward_passes: Arc<AtomicUsize>,
}

impl Extractor for OwnedLstmExtractor {
    fn n_units(&self) -> usize {
        self.model.hidden()
    }

    fn extract(&self, records: &[&Record], unit_ids: &[usize]) -> Matrix {
        self.forward_passes.fetch_add(1, Ordering::SeqCst);
        if records.is_empty() {
            return Matrix::zeros(0, unit_ids.len());
        }
        let inputs: Vec<Vec<u32>> = records.iter().map(|r| r.symbols.clone()).collect();
        let full = self.model.extract_activations(&inputs);
        let mut out = Matrix::zeros(full.rows(), unit_ids.len());
        for r in 0..full.rows() {
            let src = full.row(r);
            let dst = out.row_mut(r);
            for (c, &u) in unit_ids.iter().enumerate() {
                dst[c] = src[u];
            }
        }
        out
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(char_model_fingerprint(&self.model))
    }
}

/// One segment's worth of records, ids contiguous across segments.
fn segment_records(segment: usize) -> Vec<Record> {
    (segment * SEG..(segment + 1) * SEG)
        .map(|i| {
            let chars: Vec<char> = (0..NS)
                .map(|t| match (i * 11 + t * 5) % 7 {
                    0 | 4 => 'a',
                    1 | 5 => 'b',
                    2 => 'c',
                    _ => 'd',
                })
                .collect();
            let symbols: Vec<u32> = chars.iter().map(|&c| c as u32 - 'a' as u32).collect();
            Record::standalone(i, symbols, chars.into_iter().collect())
        })
        .collect()
}

fn build_catalog(forward_passes: &Arc<AtomicUsize>) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add_model_with_units(
        "probe",
        5,
        Arc::new(OwnedLstmExtractor {
            model: CharLstmModel::new(4, HIDDEN, OutputMode::LastStep, 42),
            forward_passes: Arc::clone(forward_passes),
        }),
        (0..UNITS)
            .map(|uid| UnitMeta {
                uid,
                layer: (uid % 2) as i64,
            })
            .collect(),
    );
    catalog.add_hypotheses(
        "chars",
        vec![
            Arc::new(FnHypothesis::char_class("is_a", |c| c == 'a')),
            Arc::new(FnHypothesis::char_class("is_b", |c| c == 'b')),
        ],
    );
    catalog.add_dataset(
        "seq",
        Arc::new(Dataset::with_segments("seq", NS, vec![segment_records(0)]).unwrap()),
    );
    catalog
}

const QUERIES: [&str; 2] = [
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D HAVING S.unit_score > 0.5",
    "SELECT S.group_id, S.uid INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D GROUP BY U.layer",
];

fn fresh_session(forward_passes: &Arc<AtomicUsize>, store: Option<StoreConfig>) -> Session {
    Session::with_config(
        build_catalog(forward_passes),
        SessionConfig {
            inspection: InspectionConfig {
                block_records: BLOCK,
                epsilon: Some(1e-12),
                ..Default::default()
            },
            store,
            ..SessionConfig::default()
        },
    )
}

/// One full append-and-reinspect loop: seed run over segment 0, then
/// `APPENDS` rounds of (append one segment, re-run the batch). Returns
/// the tables of every step, the summed re-inspection time (appends and
/// the seed run excluded), and the forward passes per re-inspection.
struct LoopRun {
    steps: Vec<BatchOutput>,
    reinspect_ns: f64,
    step_passes: Vec<usize>,
    store: StoreStats,
}

fn run_loop(store: Option<StoreConfig>) -> LoopRun {
    let forward_passes = Arc::new(AtomicUsize::new(0));
    let mut session = fresh_session(&forward_passes, store);
    let mut steps = vec![session.run_batch(&QUERIES).unwrap()];
    let mut reinspect_ns = 0.0;
    let mut step_passes = Vec::new();
    for round in 0..APPENDS {
        session
            .append_records("seq", segment_records(round + 1))
            .unwrap();
        let before = forward_passes.load(Ordering::SeqCst);
        let start = Instant::now();
        let out = black_box(session.run_batch(&QUERIES).unwrap());
        reinspect_ns += start.elapsed().as_secs_f64() * 1e9;
        step_passes.push(forward_passes.load(Ordering::SeqCst) - before);
        steps.push(out);
    }
    LoopRun {
        steps,
        reinspect_ns,
        step_passes,
        store: session.store_stats().clone(),
    }
}

/// Median summed re-inspection nanoseconds across loop repetitions.
fn time_loops(mut f: impl FnMut() -> f64) -> f64 {
    f(); // warm the OS caches (every loop is otherwise self-contained)
    let mut samples = Vec::new();
    let mut spent = Duration::ZERO;
    while samples.len() < 7 && (spent < Duration::from_millis(2500) || samples.len() < 3) {
        let start = Instant::now();
        samples.push(f());
        spent += start.elapsed();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let store_dir = PathBuf::from("target/tmp-fig-segments");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_config = || StoreConfig {
        block_records: BLOCK,
        ..StoreConfig::at(&store_dir)
    };
    let blocks_per_segment = SEG.div_ceil(BLOCK);

    // Correctness gate: the warm incremental loop must match the cold
    // loop bit-identically at every step while extracting only the new
    // segment per append.
    let cold = run_loop(None);
    let warm = run_loop(Some(store_config()));
    assert_eq!(cold.steps.len(), warm.steps.len());
    for (c, w) in cold.steps.iter().zip(&warm.steps) {
        assert_eq!(c.tables, w.tables, "warm == cold per step");
    }
    for (round, (&c, &w)) in cold.step_passes.iter().zip(&warm.step_passes).enumerate() {
        assert_eq!(
            c,
            (round + 2) * blocks_per_segment,
            "cold re-extracts every segment"
        );
        assert_eq!(
            w, blocks_per_segment,
            "warm re-inspection extracts only the appended segment"
        );
    }
    assert!(warm.store.forward_passes_avoided > 0);
    let warm_stats = warm.store;

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        println!("{name:<28} {ns:>14.0} ns");
        entries.push((name.to_string(), ns));
    };
    record(
        "cold_append_reinspect",
        time_loops(|| run_loop(None).reinspect_ns),
    );
    record(
        "warm_append_reinspect",
        time_loops(|| {
            let _ = std::fs::remove_dir_all(&store_dir);
            run_loop(Some(store_config())).reinspect_ns
        }),
    );

    let ns_of = |name: &str| entries.iter().find(|(n, _)| n == name).unwrap().1;
    let speedup = ns_of("cold_append_reinspect") / ns_of("warm_append_reinspect");
    println!(
        "appends                   : {APPENDS} x {SEG} records ({} segments final)",
        APPENDS + 1
    );
    println!(
        "warm passes per append    : {blocks_per_segment} (cold grows to {})",
        (APPENDS + 1) * blocks_per_segment
    );
    println!(
        "segment passes (warm loop): {} ({} forward passes avoided)",
        warm_stats.segment_passes, warm_stats.forward_passes_avoided
    );
    println!("incremental speedup       : {speedup:.2}x");

    let mut json = String::from("{\n  \"pr\": 7,\n  \"benchmarks\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{\"ns_per_iter\": {ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"incremental_speedup\": {speedup:.3},\n  \
         \"appends\": {APPENDS},\n  \
         \"segment_records\": {SEG},\n  \
         \"warm_passes_per_append\": {blocks_per_segment},\n  \
         \"warm_segment_passes\": {},\n  \
         \"warm_forward_passes_avoided\": {}\n}}\n",
        warm_stats.segment_passes, warm_stats.forward_passes_avoided
    ));
    deepbase_bench::emit_json("BENCH_PR7.json", &json);
    let _ = std::fs::remove_dir_all(&store_dir);
}
