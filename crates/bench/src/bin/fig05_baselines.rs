//! Figure 5: runtime of the MADLib and Python baselines vs DeepBase with
//! all optimizations, for the correlation (top row) and logistic
//! regression (bottom row) measures, sweeping the number of hypotheses,
//! records, and hidden units (columns).
//!
//! Paper shape to reproduce: DeepBase ≪ PyBase ≪ MADLib for both measures,
//! with the gap widening along every sweep axis. Absolute ratios differ
//! from the paper's 72×/419× because our "PyBase" is compiled Rust rather
//! than interpreted Python (see DESIGN.md).

use deepbase::prelude::*;
use deepbase_bench::{hypothesis_refs, print_table, run_engine, secs, sql_bench_setup, Args};

fn main() {
    let args = Args::parse();
    println!("== Figure 5: baselines vs DeepBase ==");

    let engines: [(&str, EngineKind); 3] = [
        ("MADLib", EngineKind::Madlib),
        ("PyBase", EngineKind::PyBase),
        ("DeepBase", EngineKind::DeepBase),
    ];
    let corr = CorrelationMeasure;
    let logreg = LogRegMeasure::l1(0.01);
    let measures: [(&str, &dyn Measure); 2] = [("correlation", &corr), ("logreg", &logreg)];

    // Sweep 1: number of hypotheses (records/units at defaults).
    let base_records = if args.paper { 29_696 } else { 512 };
    let base_units = if args.paper { 512 } else { 32 };
    let hyp_counts: Vec<usize> = if args.paper {
        vec![48, 96, 190]
    } else {
        vec![4, 8, 16]
    };

    let setup = sql_bench_setup(&args, base_records, base_units);
    for (mname, measure) in &measures {
        println!(
            "\n-- {mname}: sweep over #hypotheses ({base_records} records, {base_units} units) --"
        );
        let mut rows = Vec::new();
        for &n_hyps in &hyp_counts {
            let hyps = hypothesis_refs(&setup.workload, n_hyps);
            let mut cells = vec![n_hyps.to_string()];
            for (ename, engine) in &engines {
                let profile = run_engine(
                    &setup,
                    &hyps,
                    *measure,
                    *engine,
                    Device::SingleCore,
                    None,
                    None,
                );
                let _ = ename;
                cells.push(secs(profile.total));
            }
            rows.push(cells);
        }
        print_table(&["#hyps", "MADLib", "PyBase", "DeepBase"], &rows);
    }

    // Sweep 2: number of records.
    let record_counts: Vec<usize> = if args.paper {
        vec![7_424, 14_848, 29_696]
    } else {
        vec![128, 256, 512]
    };
    for (mname, measure) in &measures {
        println!("\n-- {mname}: sweep over #records ({base_units} units) --");
        let mut rows = Vec::new();
        for &records in &record_counts {
            let setup = sql_bench_setup(&args, records, base_units);
            let hyps = hypothesis_refs(&setup.workload, hyp_counts[1]);
            let mut cells = vec![setup.workload.dataset.len().to_string()];
            for (_, engine) in &engines {
                let profile = run_engine(
                    &setup,
                    &hyps,
                    *measure,
                    *engine,
                    Device::SingleCore,
                    None,
                    None,
                );
                cells.push(secs(profile.total));
            }
            rows.push(cells);
        }
        print_table(&["#records", "MADLib", "PyBase", "DeepBase"], &rows);
    }

    // Sweep 3: number of hidden units.
    let unit_counts: Vec<usize> = if args.paper {
        vec![128, 256, 512]
    } else {
        vec![16, 32, 64]
    };
    for (mname, measure) in &measures {
        println!("\n-- {mname}: sweep over #hidden units ({base_records} records) --");
        let mut rows = Vec::new();
        for &units in &unit_counts {
            let setup = sql_bench_setup(&args, base_records, units);
            let hyps = hypothesis_refs(&setup.workload, hyp_counts[1]);
            let mut cells = vec![units.to_string()];
            for (_, engine) in &engines {
                let profile = run_engine(
                    &setup,
                    &hyps,
                    *measure,
                    *engine,
                    Device::SingleCore,
                    None,
                    None,
                );
                cells.push(secs(profile.total));
            }
            rows.push(cells);
        }
        print_table(&["#units", "MADLib", "PyBase", "DeepBase"], &rows);
    }
    println!("\n(expected ordering per row: DeepBase < PyBase < MADLib)");
}
