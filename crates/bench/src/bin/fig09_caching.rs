//! Figure 9: effect of cached hypothesis behaviors.
//!
//! The model-development loop re-inspects changing models against a fixed
//! hypothesis library and test set. The first (cold) run pays hypothesis
//! extraction; the second (cached) run serves behaviors from the LRU
//! cache. Paper shape: caching improves correlation modestly (inspection
//! dominates it) and logistic regression substantially.

use deepbase::prelude::*;
use deepbase::workloads::sql;
use deepbase_bench::{hypothesis_refs, print_table, run_engine, secs, Args, SqlBenchSetup};

fn main() {
    let args = Args::parse();
    println!("== Figure 9: cold vs cached hypothesis extraction ==\n");
    // Disable ground-truth parse trees: hypothesis extraction must run the
    // Earley parser, as the paper's NLTK-based extraction does (this is
    // what makes hypothesis behaviors expensive enough to be worth
    // caching).
    let records = if args.paper { 29_696 } else { 768 };
    let hidden = if args.paper { 512 } else { 32 };
    let workload = sql::build(&sql::SqlWorkloadConfig {
        n_queries: (records / 6).max(8),
        max_records: records,
        prepopulate_parse_cache: false,
        ..Default::default()
    });
    let snapshots = sql::train_model(&workload, hidden, if args.paper { 8 } else { 2 }, 0.02, 0);
    let setup = SqlBenchSetup {
        workload,
        model: snapshots.into_iter().last().expect("snapshot"),
        hidden,
    };
    let hyps = hypothesis_refs(&setup.workload, if args.paper { 190 } else { 12 });

    let corr = CorrelationMeasure;
    let logreg = LogRegMeasure::l1(0.01);
    let measures: [(&str, &dyn Measure); 2] = [("correlation", &corr), ("logreg", &logreg)];

    let mut rows = Vec::new();
    for (mname, measure) in &measures {
        let cache = HypothesisCache::new(1 << 30);
        let cold = run_engine(
            &setup,
            &hyps,
            *measure,
            EngineKind::DeepBase,
            Device::SingleCore,
            None,
            Some(std::sync::Arc::clone(&cache)),
        );
        // Second run: same dataset and hypotheses, "retrained" model (the
        // same extractor here; what matters is hypothesis reuse).
        let warm = run_engine(
            &setup,
            &hyps,
            *measure,
            EngineKind::DeepBase,
            Device::SingleCore,
            None,
            Some(std::sync::Arc::clone(&cache)),
        );
        let stats = cache.stats();
        rows.push(vec![
            mname.to_string(),
            secs(cold.total),
            secs(warm.total),
            format!(
                "{:.1}x",
                cold.total.as_secs_f64() / warm.total.as_secs_f64().max(1e-9)
            ),
            secs(cold.hypothesis_extraction),
            secs(warm.hypothesis_extraction),
            format!("{}h/{}m", stats.hits, stats.misses),
        ]);
    }
    print_table(
        &[
            "measure",
            "cold total",
            "cached total",
            "speedup",
            "cold hyp",
            "cached hyp",
            "cache",
        ],
        &rows,
    );
    println!(
        "\n(expected: cached hypothesis-extraction time collapses; logreg \
         benefits more than correlation, as in the paper's 12.4x vs 1.9x)"
    );
}
