//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (Figs. 1–15 and the
//! appendix benchmarks) has a binary in `src/bin/` that prints the same
//! rows/series the paper reports. Defaults are scaled to finish in
//! seconds–minutes on a laptop; pass `--paper` for paper-scale parameters
//! (§6.2: 29,696 records, 512 units, 142 rules, 190 hypotheses).

use deepbase::prelude::*;
use deepbase::workloads::sql;
use deepbase_lang::sql::SqlGrammarConfig;
use std::time::{Duration, Instant};

/// Common CLI arguments for harness binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Run at the paper's full scale.
    pub paper: bool,
    /// Extra scale multiplier on records (1.0 = preset).
    pub scale: f32,
}

impl Args {
    /// Parses `--paper` and `--scale X` from `std::env::args`.
    pub fn parse() -> Args {
        let mut args = Args {
            paper: false,
            scale: 1.0,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => args.paper = true,
                "--scale" => {
                    args.scale = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale requires a number");
                }
                "--help" | "-h" => {
                    eprintln!("flags: --paper (full paper scale), --scale X (record multiplier)");
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown flag {other:?}"),
            }
        }
        args
    }
}

/// Writes a harness's JSON artifact to `path` and announces it on
/// stdout — the one emission path every figure binary shares.
///
/// # Panics
/// On I/O failure: a benchmark that cannot persist its artifact should
/// fail loudly in CI rather than upload nothing.
pub fn emit_json(path: &str, json: &str) {
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Times a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Seconds as a compact string.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// The §6.2 scalability setup: SQL workload + trained model, at harness
/// scale.
pub struct SqlBenchSetup {
    /// The workload (dataset, hypotheses, parse cache, vocab).
    pub workload: sql::SqlWorkload,
    /// The trained auto-completion model.
    pub model: deepbase_nn::CharLstmModel,
    /// Hidden width used.
    pub hidden: usize,
}

/// Builds the default benchmark setup.
///
/// Paper defaults: 29,696 records, 512 hidden units, 142 grammar rules,
/// 190 hypotheses. Quick defaults are whatever the caller passes.
pub fn sql_bench_setup(args: &Args, records: usize, hidden: usize) -> SqlBenchSetup {
    let (records, hidden) = if args.paper {
        (29_696, 512)
    } else {
        (records, hidden)
    };
    let records = ((records as f32 * args.scale) as usize).max(64);
    let workload = sql::build(&sql::SqlWorkloadConfig {
        grammar: SqlGrammarConfig::medium(),
        n_queries: (records / 6).max(8),
        max_records: records,
        ..Default::default()
    });
    let epochs = if args.paper { 8 } else { 2 };
    let snapshots = sql::train_model(&workload, hidden, epochs, 0.02, 0);
    let model = snapshots.into_iter().last().expect("at least one snapshot");
    SqlBenchSetup {
        workload,
        model,
        hidden,
    }
}

/// Runs one inspection with the given engine/measure and returns its
/// profile (scores are discarded; the harnesses report runtimes).
pub fn run_engine(
    setup: &SqlBenchSetup,
    hypotheses: &[&dyn HypothesisFn],
    measure: &dyn Measure,
    engine: EngineKind,
    device: Device,
    epsilon: Option<f32>,
    cache: Option<std::sync::Arc<HypothesisCache>>,
) -> Profile {
    let extractor = CharModelExtractor::new(&setup.model);
    let request = InspectionRequest {
        model_id: "sql_char_model".into(),
        extractor: &extractor,
        groups: vec![UnitGroup::all(setup.model.hidden())],
        dataset: &setup.workload.dataset,
        hypotheses: hypotheses.to_vec(),
        measures: vec![measure],
    };
    let config = InspectionConfig {
        engine,
        device,
        epsilon,
        cache,
        ..Default::default()
    };
    let (_, profile) = inspect(&request, &config).expect("benchmark inspection");
    profile
}

/// Subset of the hypothesis library as trait objects.
pub fn hypothesis_refs(workload: &sql::SqlWorkload, n: usize) -> Vec<&dyn HypothesisFn> {
    workload
        .hypotheses
        .iter()
        .take(n)
        .map(|h| h as &dyn HypothesisFn)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_builds_and_runs() {
        let args = Args {
            paper: false,
            scale: 1.0,
        };
        let setup = sql_bench_setup(&args, 128, 12);
        assert!(setup.workload.dataset.len() <= 128);
        let hyps = hypothesis_refs(&setup.workload, 4);
        assert_eq!(hyps.len(), 4);
        let corr = CorrelationMeasure;
        let profile = run_engine(
            &setup,
            &hyps,
            &corr,
            EngineKind::DeepBase,
            Device::SingleCore,
            Some(0.1),
            None,
        );
        assert!(profile.records_read > 0);
    }

    #[test]
    fn table_printer_aligns() {
        print_table(
            &["engine", "time"],
            &[
                vec!["PyBase".into(), "1.0s".into()],
                vec!["DeepBase".into(), "0.1s".into()],
            ],
        );
    }
}
