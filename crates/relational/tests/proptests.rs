//! Property-based tests for the relational engine: aggregates must agree
//! with reference computations, joins with nested loops, and the statement
//! limit must be respected, for arbitrary tables.

use deepbase_relational::{
    aggregate, hash_join, select, AggFn, ColType, ExecStats, Schema, Table, Value,
};
use proptest::prelude::*;

fn table_from(rows: &[(i64, f32, f32)]) -> Table {
    let mut t = Table::new(Schema::new(vec![
        ("k", ColType::Int),
        ("x", ColType::Float),
        ("y", ColType::Float),
    ]));
    for &(k, x, y) in rows {
        t.push_row(vec![Value::Int(k), Value::Float(x), Value::Float(y)])
            .unwrap();
    }
    t
}

proptest! {
    #[test]
    fn count_sum_avg_match_reference(
        rows in proptest::collection::vec((0i64..4, -50.0f32..50.0, -50.0f32..50.0), 1..60),
    ) {
        let t = table_from(&rows);
        let mut stats = ExecStats::default();
        let out = aggregate(
            &t,
            &mut stats,
            &[],
            &[AggFn::Count, AggFn::Sum("x".into()), AggFn::Avg("x".into())],
        )
        .unwrap();
        let expected_sum: f32 = rows.iter().map(|r| r.1).sum();
        let got_count = out.value(0, "count").unwrap().as_i64().unwrap();
        let got_sum = out.value(0, "sum_x").unwrap().as_f32().unwrap();
        let got_avg = out.value(0, "avg_x").unwrap().as_f32().unwrap();
        prop_assert_eq!(got_count as usize, rows.len());
        prop_assert!((got_sum - expected_sum).abs() < 0.05 * (1.0 + expected_sum.abs()));
        prop_assert!(
            (got_avg - expected_sum / rows.len() as f32).abs() < 0.05 * (1.0 + got_avg.abs())
        );
    }

    #[test]
    fn grouped_counts_partition_table(
        rows in proptest::collection::vec((0i64..4, -1.0f32..1.0, -1.0f32..1.0), 1..60),
    ) {
        let t = table_from(&rows);
        let mut stats = ExecStats::default();
        let out = aggregate(&t, &mut stats, &["k"], &[AggFn::Count]).unwrap();
        let total: i64 = (0..out.len())
            .map(|r| out.value(r, "count").unwrap().as_i64().unwrap())
            .sum();
        prop_assert_eq!(total as usize, rows.len());
        // Group keys are distinct.
        let keys: Vec<i64> =
            (0..out.len()).map(|r| out.value(r, "k").unwrap().as_i64().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn corr_aggregate_matches_stats_crate(
        rows in proptest::collection::vec((0i64..2, -10.0f32..10.0, -10.0f32..10.0), 4..60),
    ) {
        let t = table_from(&rows);
        let mut stats = ExecStats::default();
        let out =
            aggregate(&t, &mut stats, &[], &[AggFn::Corr("x".into(), "y".into())]).unwrap();
        let xs: Vec<f32> = rows.iter().map(|r| r.1).collect();
        let ys: Vec<f32> = rows.iter().map(|r| r.2).collect();
        let expected = deepbase_stats::pearson(&xs, &ys);
        let got = out.value(0, "corr_x_y").unwrap().as_f32().unwrap();
        prop_assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
    }

    #[test]
    fn select_then_count_equals_filtered_len(
        rows in proptest::collection::vec((0i64..4, -10.0f32..10.0, -10.0f32..10.0), 0..40),
    ) {
        let t = table_from(&rows);
        let mut stats = ExecStats::default();
        let filtered = select(&t, &mut stats, |t, r| {
            t.value(r, "x").unwrap().as_f32().unwrap() > 0.0
        });
        let expected = rows.iter().filter(|r| r.1 > 0.0).count();
        prop_assert_eq!(filtered.len(), expected);
        prop_assert_eq!(stats.rows_scanned, rows.len());
    }

    #[test]
    fn hash_join_matches_nested_loop(
        left in proptest::collection::vec((0i64..4, -5.0f32..5.0, 0.0f32..1.0), 0..20),
        right in proptest::collection::vec((0i64..4, -5.0f32..5.0, 0.0f32..1.0), 0..20),
    ) {
        let lt = table_from(&left);
        let rt = table_from(&right);
        let mut stats = ExecStats::default();
        let joined = hash_join(&lt, &rt, "k", "k", &mut stats).unwrap();
        let expected: usize = left
            .iter()
            .map(|l| right.iter().filter(|r| r.0 == l.0).count())
            .sum();
        prop_assert_eq!(joined.len(), expected);
    }
}
