//! Typed in-memory columnar tables.
//!
//! The paper's DB-oriented baseline (§5.1.1) materializes unit and
//! hypothesis behaviors into PostgreSQL relations — either sparse
//! `(id, unitid, symbolid, behavior)` rows or a dense form with one column
//! per unit/hypothesis — and computes affinity with SQL aggregates and
//! MADLib UDAs. This module provides the storage layer for that baseline
//! (and for post-processing DNI result frames relationally).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 32-bit float.
    Float(f32),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Float view (ints widen; strings are an error).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::Int(i) => Some(*i as f32),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Str(_) => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Column type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// Integers.
    Int,
    /// Floats.
    Float,
    /// Strings.
    Str,
}

/// Columnar storage for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Integer column.
    Ints(Vec<i64>),
    /// Float column.
    Floats(Vec<f32>),
    /// String column.
    Strs(Vec<String>),
}

impl Column {
    fn new(ty: ColType) -> Column {
        match ty {
            ColType::Int => Column::Ints(Vec::new()),
            ColType::Float => Column::Floats(Vec::new()),
            ColType::Str => Column::Strs(Vec::new()),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Ints(v) => v.len(),
            Column::Floats(v) => v.len(),
            Column::Strs(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at a row.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Ints(v) => Value::Int(v[row]),
            Column::Floats(v) => Value::Float(v[row]),
            Column::Strs(v) => Value::Str(v[row].clone()),
        }
    }

    fn push(&mut self, v: Value) -> Result<(), TableError> {
        match (self, v) {
            (Column::Ints(col), Value::Int(i)) => col.push(i),
            (Column::Floats(col), Value::Float(f)) => col.push(f),
            (Column::Floats(col), Value::Int(i)) => col.push(i as f32),
            (Column::Strs(col), Value::Str(s)) => col.push(s),
            (col, v) => {
                return Err(TableError {
                    msg: format!(
                        "type mismatch pushing {v:?} into {:?} column",
                        col_type(col)
                    ),
                })
            }
        }
        Ok(())
    }

    /// Borrow as float slice (only for Float columns).
    pub fn floats(&self) -> Option<&[f32]> {
        match self {
            Column::Floats(v) => Some(v),
            _ => None,
        }
    }
}

fn col_type(c: &Column) -> ColType {
    match c {
        Column::Ints(_) => ColType::Int,
        Column::Floats(_) => ColType::Float,
        Column::Strs(_) => ColType::Str,
    }
}

/// Table error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table error: {}", self.msg)
    }
}

impl std::error::Error for TableError {}

/// A named, typed schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    cols: Vec<(String, ColType)>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(cols: Vec<(&str, ColType)>) -> Schema {
        Schema {
            cols: cols.into_iter().map(|(n, t)| (n.to_string(), t)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n == name)
    }

    /// Column names.
    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Column type by position.
    pub fn col_type(&self, idx: usize) -> ColType {
        self.cols[idx].1
    }
}

/// A columnar table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Table {
        let columns = (0..schema.arity())
            .map(|i| Column::new(schema.col_type(i)))
            .collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Schema accessor.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row; values must match the schema arity and types
    /// (integers widen into float columns).
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), TableError> {
        if values.len() != self.schema.arity() {
            return Err(TableError {
                msg: format!("row arity {} != {}", values.len(), self.schema.arity()),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Value at `(row, column name)`.
    pub fn value(&self, row: usize, name: &str) -> Option<Value> {
        self.column(name).map(|c| c.value(row))
    }

    /// Materializes a row as values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Renders an aligned text table (up to `max_rows` rows), used by the
    /// benchmark harnesses to print paper-style result tables.
    pub fn render(&self, max_rows: usize) -> String {
        let names = self.schema.names();
        let mut cells: Vec<Vec<String>> = vec![names.iter().map(|s| s.to_string()).collect()];
        for r in 0..self.rows.min(max_rows) {
            cells.push(self.row(r).iter().map(|v| v.to_string()).collect());
        }
        let widths: Vec<usize> = (0..names.len())
            .map(|c| cells.iter().map(|row| row[c].len()).max().unwrap_or(1))
            .collect();
        let mut out = String::new();
        for (i, row) in cells.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", cell, width = widths[c]));
            }
            out.push('\n');
            if i == 0 {
                for &w in &widths {
                    out.push_str(&"-".repeat(w));
                    out.push_str("  ");
                }
                out.push('\n');
            }
        }
        if self.rows > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows - max_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ("uid", ColType::Int),
            ("score", ColType::Float),
            ("name", ColType::Str),
        ]));
        t.push_row(vec![
            Value::Int(1),
            Value::Float(0.5),
            Value::Str("a".into()),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Int(2),
            Value::Float(0.8),
            Value::Str("b".into()),
        ])
        .unwrap();
        t
    }

    #[test]
    fn push_and_read_roundtrip() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, "uid"), Some(Value::Int(1)));
        assert_eq!(t.value(1, "score"), Some(Value::Float(0.8)));
        assert_eq!(t.value(1, "name"), Some(Value::Str("b".into())));
        assert_eq!(t.value(0, "missing"), None);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        assert!(t.push_row(vec![Value::Int(3)]).is_err());
        assert_eq!(t.len(), 2, "failed push must not change the table");
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = sample();
        let err = t
            .push_row(vec![
                Value::Str("x".into()),
                Value::Float(0.0),
                Value::Str("c".into()),
            ])
            .unwrap_err();
        assert!(err.msg.contains("type mismatch"));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut t = Table::new(Schema::new(vec![("v", ColType::Float)]));
        t.push_row(vec![Value::Int(3)]).unwrap();
        assert_eq!(t.value(0, "v"), Some(Value::Float(3.0)));
    }

    #[test]
    fn column_float_slice() {
        let t = sample();
        assert_eq!(
            t.column("score").unwrap().floats(),
            Some(&[0.5f32, 0.8][..])
        );
        assert_eq!(t.column("uid").unwrap().floats(), None);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f32(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_i64(), Some(2));
        assert_eq!(Value::Str("x".into()).as_f32(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn render_is_aligned_and_bounded() {
        let t = sample();
        let s = t.render(1);
        assert!(s.contains("uid"));
        assert!(s.contains("(1 more rows)"));
    }
}
