//! Relational operators and user-defined aggregates.
//!
//! This is the execution layer of the MADLib-style baseline (paper
//! §5.1.1): full-scan selection, hash join, hash group-by with aggregate
//! functions, and iterative UDAs (`corr`, logistic-regression training).
//! Scan work is metered in [`ExecStats`] so the benchmark harnesses can
//! report the baseline's pass counts, and the PostgreSQL expression-limit
//! (1,600 target-list expressions per statement) is enforced, which is
//! what forces the baseline into repeated full scans in the paper.

use crate::table::{ColType, Schema, Table, TableError, Value};
use deepbase_stats::StreamingPearson;
use std::collections::HashMap;

/// PostgreSQL's default limit on expressions in a target list; computing
/// more aggregates than this requires batching into several statements,
/// each paying a full scan (paper §5.1.1).
pub const MAX_EXPRESSIONS_PER_STATEMENT: usize = 1600;

/// Scan accounting for baseline cost reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of full table scans performed.
    pub full_scans: usize,
    /// Total rows touched.
    pub rows_scanned: usize,
}

impl ExecStats {
    /// Resets counters.
    pub fn reset(&mut self) {
        *self = ExecStats::default();
    }

    fn record_scan(&mut self, rows: usize) {
        self.full_scans += 1;
        self.rows_scanned += rows;
    }
}

/// Aggregate function over a single float column (by name), or `Count`.
#[derive(Debug, Clone)]
pub enum AggFn {
    /// Row count.
    Count,
    /// Sum of a float column.
    Sum(String),
    /// Mean of a float column.
    Avg(String),
    /// Minimum of a float column.
    Min(String),
    /// Maximum of a float column.
    Max(String),
    /// Pearson correlation between two float columns — the SQL `corr`
    /// aggregate the paper's baseline uses for the correlation measure.
    Corr(String, String),
}

impl AggFn {
    fn output_name(&self) -> String {
        match self {
            AggFn::Count => "count".into(),
            AggFn::Sum(c) => format!("sum_{c}"),
            AggFn::Avg(c) => format!("avg_{c}"),
            AggFn::Min(c) => format!("min_{c}"),
            AggFn::Max(c) => format!("max_{c}"),
            AggFn::Corr(a, b) => format!("corr_{a}_{b}"),
        }
    }
}

enum AggState {
    Count(usize),
    Sum(f64),
    Avg(f64, usize),
    Min(f32),
    Max(f32),
    Corr(StreamingPearson),
}

impl AggState {
    fn new(f: &AggFn) -> AggState {
        match f {
            AggFn::Count => AggState::Count(0),
            AggFn::Sum(_) => AggState::Sum(0.0),
            AggFn::Avg(..) => AggState::Avg(0.0, 0),
            AggFn::Min(_) => AggState::Min(f32::INFINITY),
            AggFn::Max(_) => AggState::Max(f32::NEG_INFINITY),
            AggFn::Corr(..) => AggState::Corr(StreamingPearson::new()),
        }
    }

    fn step(&mut self, f: &AggFn, table: &Table, row: usize) {
        match (self, f) {
            (AggState::Count(n), AggFn::Count) => *n += 1,
            (AggState::Sum(s), AggFn::Sum(c)) => {
                *s += table.value(row, c).and_then(|v| v.as_f32()).unwrap_or(0.0) as f64;
            }
            (AggState::Avg(s, n), AggFn::Avg(c)) => {
                *s += table.value(row, c).and_then(|v| v.as_f32()).unwrap_or(0.0) as f64;
                *n += 1;
            }
            (AggState::Min(m), AggFn::Min(c)) => {
                let v = table
                    .value(row, c)
                    .and_then(|v| v.as_f32())
                    .unwrap_or(f32::INFINITY);
                *m = m.min(v);
            }
            (AggState::Max(m), AggFn::Max(c)) => {
                let v = table
                    .value(row, c)
                    .and_then(|v| v.as_f32())
                    .unwrap_or(f32::NEG_INFINITY);
                *m = m.max(v);
            }
            (AggState::Corr(acc), AggFn::Corr(a, b)) => {
                let x = table.value(row, a).and_then(|v| v.as_f32()).unwrap_or(0.0);
                let y = table.value(row, b).and_then(|v| v.as_f32()).unwrap_or(0.0);
                acc.push(x, y);
            }
            _ => unreachable!("state/function mismatch"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Sum(s) => Value::Float(s as f32),
            AggState::Avg(s, n) => Value::Float(if n == 0 { 0.0 } else { (s / n as f64) as f32 }),
            AggState::Min(m) => Value::Float(m),
            AggState::Max(m) => Value::Float(m),
            AggState::Corr(acc) => Value::Float(acc.correlation()),
        }
    }
}

/// Full-scan selection: rows where `pred` holds.
pub fn select(table: &Table, stats: &mut ExecStats, pred: impl Fn(&Table, usize) -> bool) -> Table {
    stats.record_scan(table.len());
    let mut out = Table::new(table.schema().clone());
    for r in 0..table.len() {
        if pred(table, r) {
            out.push_row(table.row(r)).expect("same schema");
        }
    }
    out
}

/// Projection by column names.
pub fn project(table: &Table, stats: &mut ExecStats, cols: &[&str]) -> Result<Table, TableError> {
    stats.record_scan(table.len());
    let mut schema_cols = Vec::new();
    let mut indices = Vec::new();
    for &c in cols {
        let idx = table.schema().index_of(c).ok_or_else(|| TableError {
            msg: format!("unknown column {c:?}"),
        })?;
        indices.push(idx);
        schema_cols.push((c, table.schema().col_type(idx)));
    }
    let mut out = Table::new(Schema::new(schema_cols));
    for r in 0..table.len() {
        let row: Vec<Value> = indices
            .iter()
            .map(|&i| table.column_at(i).value(r))
            .collect();
        out.push_row(row).expect("projected schema");
    }
    Ok(out)
}

/// Hash equi-join on one column from each side. Output columns are the
/// left columns followed by the right columns (right join column renamed
/// with a `right_` prefix when names collide).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_col: &str,
    right_col: &str,
    stats: &mut ExecStats,
) -> Result<Table, TableError> {
    let li = left.schema().index_of(left_col).ok_or_else(|| TableError {
        msg: format!("unknown left column {left_col:?}"),
    })?;
    let ri = right
        .schema()
        .index_of(right_col)
        .ok_or_else(|| TableError {
            msg: format!("unknown right column {right_col:?}"),
        })?;
    stats.record_scan(left.len());
    stats.record_scan(right.len());

    // Build on the right side.
    let mut build: HashMap<String, Vec<usize>> = HashMap::new();
    for r in 0..right.len() {
        build
            .entry(key_of(&right.column_at(ri).value(r)))
            .or_default()
            .push(r);
    }

    let left_names = left.schema().names();
    let mut cols: Vec<(String, ColType)> = left_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.to_string(), left.schema().col_type(i)))
        .collect();
    for (i, n) in right.schema().names().iter().enumerate() {
        let name = if left.schema().index_of(n).is_some() {
            format!("right_{n}")
        } else {
            n.to_string()
        };
        cols.push((name, right.schema().col_type(i)));
    }
    let schema = Schema::new(
        cols.iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    let mut out = Table::new(schema);
    for l in 0..left.len() {
        let key = key_of(&left.column_at(li).value(l));
        if let Some(matches) = build.get(&key) {
            for &r in matches {
                let mut row = left.row(l);
                row.extend(right.row(r));
                out.push_row(row).expect("join schema");
            }
        }
    }
    Ok(out)
}

fn key_of(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{f}"),
        Value::Str(s) => format!("s{s}"),
    }
}

/// Hash group-by with aggregates. With an empty `group_cols` the whole
/// table forms one group. Enforces [`MAX_EXPRESSIONS_PER_STATEMENT`]: a
/// wider aggregate list must be issued as several statements (each paying
/// its own scan), exactly the batching the paper describes.
pub fn aggregate(
    table: &Table,
    stats: &mut ExecStats,
    group_cols: &[&str],
    aggs: &[AggFn],
) -> Result<Table, TableError> {
    if aggs.len() > MAX_EXPRESSIONS_PER_STATEMENT {
        return Err(TableError {
            msg: format!(
                "statement has {} expressions; the engine limit is {} — batch the query",
                aggs.len(),
                MAX_EXPRESSIONS_PER_STATEMENT
            ),
        });
    }
    stats.record_scan(table.len());
    let group_indices: Vec<usize> = group_cols
        .iter()
        .map(|c| {
            table.schema().index_of(c).ok_or_else(|| TableError {
                msg: format!("unknown group column {c:?}"),
            })
        })
        .collect::<Result<_, _>>()?;

    // Group states keyed by the group tuple.
    let mut groups: HashMap<String, (Vec<Value>, Vec<AggState>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for r in 0..table.len() {
        let key_vals: Vec<Value> = group_indices
            .iter()
            .map(|&i| table.column_at(i).value(r))
            .collect();
        let key: String = key_vals.iter().map(key_of).collect::<Vec<_>>().join("|");
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (key_vals, aggs.iter().map(AggState::new).collect())
        });
        for (state, f) in entry.1.iter_mut().zip(aggs.iter()) {
            state.step(f, table, r);
        }
    }

    // Output schema: group columns then aggregate outputs.
    let mut cols: Vec<(String, ColType)> = group_cols
        .iter()
        .zip(group_indices.iter())
        .map(|(c, &i)| (c.to_string(), table.schema().col_type(i)))
        .collect();
    for f in aggs {
        let ty = if matches!(f, AggFn::Count) {
            ColType::Int
        } else {
            ColType::Float
        };
        cols.push((f.output_name(), ty));
    }
    let schema = Schema::new(
        cols.iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    );
    let mut out = Table::new(schema);
    for key in order {
        let (vals, states) = groups.remove(&key).expect("group present");
        let mut row = vals;
        row.extend(states.into_iter().map(AggState::finish));
        out.push_row(row).expect("aggregate schema");
    }
    Ok(out)
}

/// Iterative logistic-regression training UDA over a dense behavior table
/// (the `SVMTrain`-style MADLib call of §5.1.1): `feature_cols` are unit
/// columns, `label_col` is one hypothesis column. Each epoch performs a
/// full scan of the table, which is the baseline's dominant cost. Returns
/// the trained probe.
pub fn logreg_train_uda(
    table: &Table,
    stats: &mut ExecStats,
    feature_cols: &[&str],
    label_col: &str,
    epochs: usize,
    config: &deepbase_stats::LogRegConfig,
) -> Result<deepbase_stats::MultiLogReg, TableError> {
    use deepbase_tensor::Matrix;
    let feat_idx: Vec<usize> = feature_cols
        .iter()
        .map(|c| {
            table.schema().index_of(c).ok_or_else(|| TableError {
                msg: format!("unknown feature column {c:?}"),
            })
        })
        .collect::<Result<_, _>>()?;
    let label_idx = table
        .schema()
        .index_of(label_col)
        .ok_or_else(|| TableError {
            msg: format!("unknown label column {label_col:?}"),
        })?;

    let mut model = deepbase_stats::MultiLogReg::new(feat_idx.len(), 1, config.clone());
    let block = 512usize;
    for _ in 0..epochs.max(1) {
        stats.record_scan(table.len());
        let mut start = 0usize;
        while start < table.len() {
            let end = (start + block).min(table.len());
            let mut x = Matrix::zeros(end - start, feat_idx.len());
            let mut y = Matrix::zeros(end - start, 1);
            for r in start..end {
                for (c, &fi) in feat_idx.iter().enumerate() {
                    x.set(
                        r - start,
                        c,
                        table.column_at(fi).value(r).as_f32().unwrap_or(0.0),
                    );
                }
                y.set(
                    r - start,
                    0,
                    table.column_at(label_idx).value(r).as_f32().unwrap_or(0.0),
                );
            }
            model.partial_fit(&x, &y);
            start = end;
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn behavior_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ("symbolid", ColType::Int),
            ("u0", ColType::Float),
            ("u1", ColType::Float),
            ("h0", ColType::Float),
        ]));
        for i in 0..100i64 {
            let u0 = (i % 10) as f32;
            let u1 = ((i * 7) % 13) as f32;
            let h0 = if i % 10 >= 5 { 1.0 } else { 0.0 };
            t.push_row(vec![
                Value::Int(i),
                Value::Float(u0),
                Value::Float(u1),
                Value::Float(h0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn select_filters_rows_and_counts_scan() {
        let t = behavior_table();
        let mut stats = ExecStats::default();
        let out = select(&t, &mut stats, |t, r| {
            t.value(r, "h0").unwrap().as_f32().unwrap() > 0.5
        });
        assert_eq!(out.len(), 50);
        assert_eq!(stats.full_scans, 1);
        assert_eq!(stats.rows_scanned, 100);
    }

    #[test]
    fn project_keeps_named_columns() {
        let t = behavior_table();
        let mut stats = ExecStats::default();
        let out = project(&t, &mut stats, &["u0", "h0"]).unwrap();
        assert_eq!(out.schema().names(), vec!["u0", "h0"]);
        assert_eq!(out.len(), 100);
        assert!(project(&t, &mut stats, &["nope"]).is_err());
    }

    #[test]
    fn aggregate_whole_table() {
        let t = behavior_table();
        let mut stats = ExecStats::default();
        let out = aggregate(
            &t,
            &mut stats,
            &[],
            &[
                AggFn::Count,
                AggFn::Avg("u0".into()),
                AggFn::Min("u0".into()),
                AggFn::Max("u0".into()),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "count"), Some(Value::Int(100)));
        assert_eq!(out.value(0, "avg_u0"), Some(Value::Float(4.5)));
        assert_eq!(out.value(0, "min_u0"), Some(Value::Float(0.0)));
        assert_eq!(out.value(0, "max_u0"), Some(Value::Float(9.0)));
    }

    #[test]
    fn aggregate_grouped_sums() {
        let t = behavior_table();
        let mut stats = ExecStats::default();
        let out = aggregate(
            &t,
            &mut stats,
            &["h0"],
            &[AggFn::Count, AggFn::Sum("u0".into())],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // Group h0=0 holds u0 in 0..5 over 10 cycles: sum = 10*(0+..+4)=100.
        let mut by_group = std::collections::HashMap::new();
        for r in 0..2 {
            let g = out.value(r, "h0").unwrap().as_f32().unwrap();
            let s = out.value(r, "sum_u0").unwrap().as_f32().unwrap();
            by_group.insert(g as i32, s);
        }
        assert_eq!(by_group[&0], 100.0);
        assert_eq!(by_group[&1], 350.0);
    }

    #[test]
    fn corr_aggregate_matches_stats_crate() {
        let t = behavior_table();
        let mut stats = ExecStats::default();
        let out = aggregate(
            &t,
            &mut stats,
            &[],
            &[AggFn::Corr("u0".into(), "h0".into())],
        )
        .unwrap();
        let expected = deepbase_stats::pearson(
            t.column("u0").unwrap().floats().unwrap(),
            t.column("h0").unwrap().floats().unwrap(),
        );
        let got = out.value(0, "corr_u0_h0").unwrap().as_f32().unwrap();
        assert!((got - expected).abs() < 1e-5);
    }

    #[test]
    fn expression_limit_enforced() {
        let t = behavior_table();
        let mut stats = ExecStats::default();
        let too_many: Vec<AggFn> = (0..MAX_EXPRESSIONS_PER_STATEMENT + 1)
            .map(|_| AggFn::Count)
            .collect();
        let err = aggregate(&t, &mut stats, &[], &too_many).unwrap_err();
        assert!(err.msg.contains("batch"));
    }

    #[test]
    fn hash_join_matches_keys() {
        let mut left = Table::new(Schema::new(vec![
            ("uid", ColType::Int),
            ("layer", ColType::Int),
        ]));
        left.push_row(vec![Value::Int(1), Value::Int(0)]).unwrap();
        left.push_row(vec![Value::Int(2), Value::Int(1)]).unwrap();
        let mut right = Table::new(Schema::new(vec![
            ("uid", ColType::Int),
            ("score", ColType::Float),
        ]));
        right
            .push_row(vec![Value::Int(2), Value::Float(0.9)])
            .unwrap();
        right
            .push_row(vec![Value::Int(3), Value::Float(0.1)])
            .unwrap();
        right
            .push_row(vec![Value::Int(2), Value::Float(0.7)])
            .unwrap();

        let mut stats = ExecStats::default();
        let out = hash_join(&left, &right, "uid", "uid", &mut stats).unwrap();
        assert_eq!(out.len(), 2, "uid=2 matches twice");
        assert_eq!(
            out.schema().names(),
            vec!["uid", "layer", "right_uid", "score"]
        );
        assert_eq!(out.value(0, "layer"), Some(Value::Int(1)));
    }

    #[test]
    fn logreg_uda_learns_separable_hypothesis() {
        let t = behavior_table();
        let mut stats = ExecStats::default();
        let config = deepbase_stats::LogRegConfig {
            learning_rate: 0.1,
            ..Default::default()
        };
        let model = logreg_train_uda(&t, &mut stats, &["u0", "u1"], "h0", 20, &config).unwrap();
        assert_eq!(stats.full_scans, 20, "one scan per epoch");
        // h0 = (u0 >= 5): linearly separable on u0.
        use deepbase_tensor::Matrix;
        let x = Matrix::from_fn(100, 2, |r, c| t.column_at(1 + c).value(r).as_f32().unwrap());
        let y = Matrix::from_fn(100, 1, |r, _| t.column_at(3).value(r).as_f32().unwrap());
        let f1 = model.f1_per_output(&x, &y)[0];
        assert!(f1 > 0.9, "UDA probe F1 {f1}");
    }

    #[test]
    fn stats_reset() {
        let mut stats = ExecStats {
            full_scans: 3,
            rows_scanned: 10,
        };
        stats.reset();
        assert_eq!(stats, ExecStats::default());
    }
}
