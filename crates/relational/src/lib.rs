//! # deepbase-relational
//!
//! A miniature in-memory columnar relational engine: the substrate for the
//! paper's DB-oriented baseline (§5.1.1, "MADLib"), which materializes
//! behavior matrices as dense relations and computes affinity scores with
//! SQL aggregates and in-database ML UDAs.
//!
//! * [`table`] — typed columnar tables with schemas and text rendering.
//! * [`exec`] — full-scan select/project, hash join, hash group-by with
//!   aggregate functions (`count/sum/avg/min/max/corr`), an iterative
//!   logistic-regression training UDA (one full scan per epoch, like
//!   MADLib), scan metering ([`exec::ExecStats`]) and the PostgreSQL
//!   1,600-expression statement limit that forces batched scans.
//!
//! The DeepBase core crate builds its `Engine::Madlib` baseline and the
//! INSPECT post-processing on these primitives.

pub mod exec;
pub mod table;

pub use exec::{
    aggregate, hash_join, logreg_train_uda, project, select, AggFn, ExecStats,
    MAX_EXPRESSIONS_PER_STATEMENT,
};
pub use table::{ColType, Column, Schema, Table, TableError, Value};
