//! Character vocabularies and the sliding-window record layout used by the
//! paper's RNN models.
//!
//! Records in DeepBase are fixed-length symbol vectors (paper §3): the SQL
//! auto-completion model reads a window of `ns` characters (left-padded
//! with `~`, visible in Fig. 1) and predicts the next character; inspection
//! records are windows with a stride (§6.2 footnote: stride 5).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Padding character (id 0 in every vocabulary), matching the `~` glyph of
/// the paper's Fig. 1.
pub const PAD: char = '~';

/// A character vocabulary with a reserved padding symbol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    chars: Vec<char>,
    #[serde(skip)]
    index: HashMap<char, u32>,
}

impl Vocab {
    /// Builds a vocabulary from an alphabet; `PAD` is prepended as id 0 if
    /// not present, duplicates are dropped, order is otherwise preserved.
    pub fn from_alphabet(alphabet: &[char]) -> Vocab {
        let mut chars = vec![PAD];
        for &c in alphabet {
            if !chars.contains(&c) {
                chars.push(c);
            }
        }
        let index = chars
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
        Vocab { chars, index }
    }

    /// Rebuilds the lookup index (needed after serde deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .chars
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
    }

    /// Number of symbols (including padding).
    pub fn size(&self) -> usize {
        self.chars.len()
    }

    /// Id of the padding symbol (always 0).
    pub fn pad_id(&self) -> u32 {
        0
    }

    /// Id of a character; unknown characters map to padding.
    pub fn id(&self, c: char) -> u32 {
        self.index.get(&c).copied().unwrap_or(0)
    }

    /// Character for an id; out-of-range ids map to padding.
    pub fn char(&self, id: u32) -> char {
        self.chars.get(id as usize).copied().unwrap_or(PAD)
    }

    /// Encodes a string to symbol ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.chars().map(|c| self.id(c)).collect()
    }

    /// Decodes symbol ids back to a string.
    pub fn decode(&self, ids: &[u32]) -> String {
        ids.iter().map(|&i| self.char(i)).collect()
    }
}

/// One training/inspection window: `ns` characters of context (left-padded)
/// and, when the window is not at end-of-string, the next character to
/// predict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// The window text, exactly `ns` characters, left-padded with [`PAD`].
    pub text: String,
    /// Offset into the source string of the *first non-pad* character
    /// (i.e. the window covers `source[offset .. offset + visible]`).
    pub offset: usize,
    /// Number of non-pad characters in the window.
    pub visible: usize,
    /// The character following the window in the source, if any.
    pub target: Option<char>,
}

/// Produces sliding windows over `source`: for positions `p = stride, 2*stride,
/// ...` the window holds the `ns` characters ending just before `p`'s
/// target character. Every window has length exactly `ns`.
pub fn sliding_windows(source: &str, ns: usize, stride: usize) -> Vec<Window> {
    assert!(ns > 0 && stride > 0, "ns and stride must be positive");
    let chars: Vec<char> = source.chars().collect();
    let mut windows = Vec::new();
    let mut p = stride.min(chars.len());
    if chars.is_empty() {
        return windows;
    }
    loop {
        // Window covers chars[start..p], left-padded to ns.
        let start = p.saturating_sub(ns);
        let visible = p - start;
        let mut text = String::with_capacity(ns);
        for _ in 0..(ns - visible) {
            text.push(PAD);
        }
        text.extend(&chars[start..p]);
        windows.push(Window {
            text,
            offset: start,
            visible,
            target: chars.get(p).copied(),
        });
        if p >= chars.len() {
            break;
        }
        p = (p + stride).min(chars.len());
    }
    windows
}

/// Slices a per-character behavior vector of the *source* string into the
/// per-symbol behavior of a window, padding positions receiving 0. This is
/// how parse-derived hypotheses (computed once on the full record, §6.1)
/// are projected onto stride windows.
pub fn project_behavior(source_behavior: &[f32], window: &Window, ns: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; ns];
    let pad = ns - window.visible;
    for i in 0..window.visible {
        let src = window.offset + i;
        if src < source_behavior.len() {
            out[pad + i] = source_behavior[src];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_reserves_pad_as_zero() {
        let v = Vocab::from_alphabet(&['a', 'b']);
        assert_eq!(v.pad_id(), 0);
        assert_eq!(v.char(0), PAD);
        assert_eq!(v.size(), 3);
    }

    #[test]
    fn vocab_dedups_and_handles_pad_in_alphabet() {
        let v = Vocab::from_alphabet(&['a', 'a', PAD, 'b']);
        assert_eq!(v.size(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let v = Vocab::from_alphabet(&['S', 'E', 'L', 'C', 'T', ' ']);
        let ids = v.encode("SELECT");
        assert_eq!(v.decode(&ids), "SELECT");
    }

    #[test]
    fn unknown_chars_become_pad() {
        let v = Vocab::from_alphabet(&['a']);
        assert_eq!(v.encode("xa"), vec![0, 1]);
        assert_eq!(v.decode(&[99]), PAD.to_string());
    }

    #[test]
    fn windows_left_pad_to_ns() {
        let ws = sliding_windows("abcdef", 4, 2);
        assert_eq!(ws[0].text, "~~ab");
        assert_eq!(ws[0].target, Some('c'));
        assert_eq!(ws[0].visible, 2);
        assert_eq!(ws[0].offset, 0);
    }

    #[test]
    fn windows_advance_by_stride() {
        let ws = sliding_windows("abcdefgh", 4, 2);
        let texts: Vec<&str> = ws.iter().map(|w| w.text.as_str()).collect();
        assert_eq!(texts, vec!["~~ab", "abcd", "cdef", "efgh"]);
        assert_eq!(ws.last().unwrap().target, None);
    }

    #[test]
    fn windows_all_have_length_ns() {
        for (src, ns, stride) in [("a", 5, 1), ("abcdef", 3, 2), ("xyz", 10, 4)] {
            for w in sliding_windows(src, ns, stride) {
                assert_eq!(w.text.chars().count(), ns, "window {w:?}");
            }
        }
    }

    #[test]
    fn windows_cover_end_of_string() {
        let ws = sliding_windows("abcde", 3, 2);
        assert_eq!(ws.last().unwrap().text, "cde");
        assert_eq!(ws.last().unwrap().target, None);
    }

    #[test]
    fn empty_source_yields_no_windows() {
        assert!(sliding_windows("", 4, 2).is_empty());
    }

    #[test]
    fn project_behavior_aligns_with_padding() {
        let source_b = vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0];
        let ws = sliding_windows("abcdef", 4, 2);
        // First window "~~ab": pads then behavior of chars 0..2.
        assert_eq!(
            project_behavior(&source_b, &ws[0], 4),
            vec![0.0, 0.0, 10.0, 20.0]
        );
        // Second window "abcd".
        assert_eq!(
            project_behavior(&source_b, &ws[1], 4),
            vec![10.0, 20.0, 30.0, 40.0]
        );
    }

    #[test]
    fn project_behavior_handles_short_source() {
        let ws = sliding_windows("abcd", 4, 4);
        let b = project_behavior(&[1.0, 2.0], &ws[0], 4);
        assert_eq!(b, vec![1.0, 2.0, 0.0, 0.0]);
    }
}
