//! Synthetic English→German parallel corpus with ground-truth POS tags.
//!
//! The paper's NMT experiments (§6.3) train probes on an English–German
//! WMT15 corpus annotated by CoreNLP. That corpus is not shippable here, so
//! this module generates the closest synthetic equivalent: template-based
//! English sentences with known POS tags, paired with "German" produced by
//! dictionary mapping plus a verb-final reordering rule for subordinate
//! clauses (the structural divergence that makes the translation task
//! non-trivial). Umlauts are transliterated to ASCII to keep the token
//! model simple; this does not affect the probe analyses.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bilingual lexicon entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    en: &'static str,
    de: &'static str,
    tag: &'static str,
}

const NOUNS: &[Entry] = &[
    Entry {
        en: "dog",
        de: "hund",
        tag: "NN",
    },
    Entry {
        en: "cat",
        de: "katze",
        tag: "NN",
    },
    Entry {
        en: "house",
        de: "haus",
        tag: "NN",
    },
    Entry {
        en: "book",
        de: "buch",
        tag: "NN",
    },
    Entry {
        en: "child",
        de: "kind",
        tag: "NN",
    },
    Entry {
        en: "man",
        de: "mann",
        tag: "NN",
    },
    Entry {
        en: "woman",
        de: "frau",
        tag: "NN",
    },
    Entry {
        en: "apple",
        de: "apfel",
        tag: "NN",
    },
    Entry {
        en: "car",
        de: "auto",
        tag: "NN",
    },
    Entry {
        en: "tree",
        de: "baum",
        tag: "NN",
    },
    Entry {
        en: "water",
        de: "wasser",
        tag: "NN",
    },
    Entry {
        en: "bread",
        de: "brot",
        tag: "NN",
    },
];

const PLURAL_NOUNS: &[Entry] = &[
    Entry {
        en: "dogs",
        de: "hunde",
        tag: "NNS",
    },
    Entry {
        en: "books",
        de: "buecher",
        tag: "NNS",
    },
    Entry {
        en: "children",
        de: "kinder",
        tag: "NNS",
    },
    Entry {
        en: "apples",
        de: "aepfel",
        tag: "NNS",
    },
    Entry {
        en: "trees",
        de: "baeume",
        tag: "NNS",
    },
];

const VERBS_VBZ: &[Entry] = &[
    Entry {
        en: "sees",
        de: "sieht",
        tag: "VBZ",
    },
    Entry {
        en: "eats",
        de: "isst",
        tag: "VBZ",
    },
    Entry {
        en: "reads",
        de: "liest",
        tag: "VBZ",
    },
    Entry {
        en: "finds",
        de: "findet",
        tag: "VBZ",
    },
    Entry {
        en: "likes",
        de: "mag",
        tag: "VBZ",
    },
    Entry {
        en: "knows",
        de: "kennt",
        tag: "VBZ",
    },
    Entry {
        en: "watches",
        de: "schaut",
        tag: "VBZ",
    },
];

const VERBS_VBD: &[Entry] = &[
    Entry {
        en: "saw",
        de: "sah",
        tag: "VBD",
    },
    Entry {
        en: "found",
        de: "fand",
        tag: "VBD",
    },
    Entry {
        en: "read",
        de: "las",
        tag: "VBD",
    },
    Entry {
        en: "ate",
        de: "ass",
        tag: "VBD",
    },
    Entry {
        en: "knew",
        de: "kannte",
        tag: "VBD",
    },
];

const ADJECTIVES: &[Entry] = &[
    Entry {
        en: "big",
        de: "gross",
        tag: "JJ",
    },
    Entry {
        en: "small",
        de: "klein",
        tag: "JJ",
    },
    Entry {
        en: "red",
        de: "rot",
        tag: "JJ",
    },
    Entry {
        en: "old",
        de: "alt",
        tag: "JJ",
    },
    Entry {
        en: "young",
        de: "jung",
        tag: "JJ",
    },
    Entry {
        en: "good",
        de: "gut",
        tag: "JJ",
    },
];

const COMPARATIVES: &[Entry] = &[
    Entry {
        en: "bigger",
        de: "groesser",
        tag: "JJR",
    },
    Entry {
        en: "smaller",
        de: "kleiner",
        tag: "JJR",
    },
    Entry {
        en: "older",
        de: "aelter",
        tag: "JJR",
    },
];

const ADVERBS: &[Entry] = &[
    Entry {
        en: "quickly",
        de: "schnell",
        tag: "RB",
    },
    Entry {
        en: "often",
        de: "oft",
        tag: "RB",
    },
    Entry {
        en: "here",
        de: "hier",
        tag: "RB",
    },
    Entry {
        en: "never",
        de: "nie",
        tag: "RB",
    },
    Entry {
        en: "slowly",
        de: "langsam",
        tag: "RB",
    },
];

const DETERMINERS: &[Entry] = &[
    Entry {
        en: "the",
        de: "der",
        tag: "DT",
    },
    Entry {
        en: "a",
        de: "ein",
        tag: "DT",
    },
    Entry {
        en: "every",
        de: "jeder",
        tag: "DT",
    },
    Entry {
        en: "this",
        de: "dieser",
        tag: "DT",
    },
];

const PREPOSITIONS: &[Entry] = &[
    Entry {
        en: "in",
        de: "in",
        tag: "IN",
    },
    Entry {
        en: "with",
        de: "mit",
        tag: "IN",
    },
    Entry {
        en: "near",
        de: "bei",
        tag: "IN",
    },
    Entry {
        en: "under",
        de: "unter",
        tag: "IN",
    },
];

const PRONOUNS: &[Entry] = &[
    Entry {
        en: "he",
        de: "er",
        tag: "PRP",
    },
    Entry {
        en: "she",
        de: "sie",
        tag: "PRP",
    },
    Entry {
        en: "it",
        de: "es",
        tag: "PRP",
    },
    Entry {
        en: "we",
        de: "wir",
        tag: "PRP",
    },
    Entry {
        en: "they",
        de: "sie",
        tag: "PRP",
    },
];

const CONJUNCTIONS: &[Entry] = &[
    Entry {
        en: "and",
        de: "und",
        tag: "CC",
    },
    Entry {
        en: "or",
        de: "oder",
        tag: "CC",
    },
    Entry {
        en: "but",
        de: "aber",
        tag: "CC",
    },
];

const CARDINALS: &[Entry] = &[
    Entry {
        en: "two",
        de: "zwei",
        tag: "CD",
    },
    Entry {
        en: "three",
        de: "drei",
        tag: "CD",
    },
    Entry {
        en: "four",
        de: "vier",
        tag: "CD",
    },
];

const NAMES: &[Entry] = &[
    Entry {
        en: "Anna",
        de: "Anna",
        tag: "NNP",
    },
    Entry {
        en: "Max",
        de: "Max",
        tag: "NNP",
    },
    Entry {
        en: "Berlin",
        de: "Berlin",
        tag: "NNP",
    },
];

/// A slot in a sentence template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Nn,
    Nns,
    Vbz,
    Vbd,
    Jj,
    Jjr,
    Rb,
    Dt,
    In,
    Prp,
    Cc,
    Cd,
    Nnp,
    /// Literal subordinator "because"/"weil" introducing a verb-final
    /// German clause. Tagged IN.
    Because,
    Period,
}

impl Slot {
    fn pool(&self) -> Option<&'static [Entry]> {
        match self {
            Slot::Nn => Some(NOUNS),
            Slot::Nns => Some(PLURAL_NOUNS),
            Slot::Vbz => Some(VERBS_VBZ),
            Slot::Vbd => Some(VERBS_VBD),
            Slot::Jj => Some(ADJECTIVES),
            Slot::Jjr => Some(COMPARATIVES),
            Slot::Rb => Some(ADVERBS),
            Slot::Dt => Some(DETERMINERS),
            Slot::In => Some(PREPOSITIONS),
            Slot::Prp => Some(PRONOUNS),
            Slot::Cc => Some(CONJUNCTIONS),
            Slot::Cd => Some(CARDINALS),
            Slot::Nnp => Some(NAMES),
            Slot::Because | Slot::Period => None,
        }
    }
}

/// Sentence templates. Each is a main clause, optionally followed by a
/// `because` subordinate clause (whose German verb goes clause-final).
const TEMPLATES: &[&[Slot]] = &[
    &[
        Slot::Dt,
        Slot::Jj,
        Slot::Nn,
        Slot::Vbz,
        Slot::Dt,
        Slot::Nn,
        Slot::Period,
    ],
    &[
        Slot::Prp,
        Slot::Vbd,
        Slot::Dt,
        Slot::Nn,
        Slot::In,
        Slot::Dt,
        Slot::Nn,
        Slot::Period,
    ],
    &[Slot::Dt, Slot::Nn, Slot::Vbz, Slot::Rb, Slot::Period],
    &[
        Slot::Prp,
        Slot::Vbz,
        Slot::Dt,
        Slot::Nn,
        Slot::Cc,
        Slot::Prp,
        Slot::Vbz,
        Slot::Dt,
        Slot::Nn,
        Slot::Period,
    ],
    &[
        Slot::Cd,
        Slot::Nns,
        Slot::Vbd,
        Slot::Dt,
        Slot::Jj,
        Slot::Nn,
        Slot::Period,
    ],
    &[
        Slot::Nnp,
        Slot::Vbz,
        Slot::Dt,
        Slot::Jjr,
        Slot::Nn,
        Slot::Period,
    ],
    &[
        Slot::Dt,
        Slot::Nn,
        Slot::In,
        Slot::Dt,
        Slot::Nn,
        Slot::Vbz,
        Slot::Rb,
        Slot::Period,
    ],
    &[
        Slot::Prp,
        Slot::Vbz,
        Slot::Dt,
        Slot::Nn,
        Slot::Because,
        Slot::Prp,
        Slot::Vbz,
        Slot::Dt,
        Slot::Nn,
        Slot::Period,
    ],
    &[
        Slot::Nnp,
        Slot::Cc,
        Slot::Nnp,
        Slot::Vbd,
        Slot::Dt,
        Slot::Nns,
        Slot::Period,
    ],
    &[
        Slot::Dt,
        Slot::Jj,
        Slot::Jj,
        Slot::Nn,
        Slot::Vbd,
        Slot::Dt,
        Slot::Nn,
        Slot::Rb,
        Slot::Period,
    ],
];

/// One aligned sentence pair with source-side POS annotations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SentencePair {
    /// English tokens.
    pub source: Vec<String>,
    /// German tokens (ASCII-transliterated).
    pub target: Vec<String>,
    /// Penn Treebank tag of each source token.
    pub source_tags: Vec<String>,
}

/// A generated parallel corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParallelCorpus {
    /// The sentence pairs.
    pub pairs: Vec<SentencePair>,
}

impl ParallelCorpus {
    /// Average source-sentence length in tokens.
    pub fn mean_source_len(&self) -> f32 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        self.pairs.iter().map(|p| p.source.len()).sum::<usize>() as f32 / self.pairs.len() as f32
    }

    /// Sorted set of tags that actually occur in the corpus.
    pub fn observed_tags(&self) -> Vec<String> {
        let mut set: std::collections::BTreeSet<String> = Default::default();
        for p in &self.pairs {
            set.extend(p.source_tags.iter().cloned());
        }
        set.into_iter().collect()
    }
}

/// Generates `n` sentence pairs with the given seed.
pub fn generate_corpus(n: usize, seed: u64) -> ParallelCorpus {
    let mut rng = deepbase_tensor::init::seeded_rng(seed);
    let pairs = (0..n).map(|_| generate_pair(&mut rng)).collect();
    ParallelCorpus { pairs }
}

fn generate_pair(rng: &mut impl Rng) -> SentencePair {
    let template = TEMPLATES.choose(rng).expect("templates non-empty");
    let mut source = Vec::with_capacity(template.len());
    let mut tags = Vec::with_capacity(template.len());
    // German tokens per clause; clause 1 (if present) is the subordinate.
    let mut de_clauses: Vec<Vec<String>> = vec![Vec::new()];
    let mut subordinate = false;

    for slot in template.iter() {
        match slot {
            Slot::Period => {
                source.push(".".to_string());
                tags.push(".".to_string());
            }
            Slot::Because => {
                source.push("because".to_string());
                tags.push("IN".to_string());
                de_clauses.push(vec!["weil".to_string()]);
                subordinate = true;
            }
            other => {
                let pool = other.pool().expect("slot has a pool");
                let entry = pool.choose(rng).expect("pool non-empty");
                source.push(entry.en.to_string());
                tags.push(entry.tag.to_string());
                let clause = de_clauses.last_mut().expect("clause list non-empty");
                clause.push(entry.de.to_string());
            }
        }
    }

    // German surface order: main clause verbatim; subordinate clause has
    // its finite verb moved to the end (V-final).
    let mut target = Vec::new();
    for (i, mut clause) in de_clauses.into_iter().enumerate() {
        if i > 0 && subordinate {
            // First token is "weil"; find the verb (the token translating a
            // VBZ/VBD slot is at the same relative position as in English:
            // directly after the subject pronoun, i.e. index 2 of the
            // clause). Move it to the end.
            if clause.len() > 2 {
                let verb = clause.remove(2);
                clause.push(verb);
            }
        }
        target.extend(clause);
    }
    target.push(".".to_string());

    SentencePair {
        source,
        target,
        source_tags: tags,
    }
}

/// A word-level vocabulary with the reserved symbols sequence models need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WordVocab {
    words: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

/// Reserved ids in every [`WordVocab`].
pub const PAD_ID: u32 = 0;
/// Beginning-of-sequence.
pub const BOS_ID: u32 = 1;
/// End-of-sequence.
pub const EOS_ID: u32 = 2;
/// Unknown word.
pub const UNK_ID: u32 = 3;

impl WordVocab {
    /// Builds a vocabulary over an iterator of tokens.
    pub fn build<'a>(tokens: impl IntoIterator<Item = &'a str>) -> WordVocab {
        let mut words: Vec<String> = ["<pad>", "<bos>", "<eos>", "<unk>"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut index: HashMap<String, u32> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();
        for tok in tokens {
            if !index.contains_key(tok) {
                index.insert(tok.to_string(), words.len() as u32);
                words.push(tok.to_string());
            }
        }
        WordVocab { words, index }
    }

    /// Rebuilds the lookup index (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();
    }

    /// Vocabulary size including reserved symbols.
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Token id (UNK for unknown tokens).
    pub fn id(&self, word: &str) -> u32 {
        self.index.get(word).copied().unwrap_or(UNK_ID)
    }

    /// Token for an id.
    pub fn word(&self, id: u32) -> &str {
        self.words
            .get(id as usize)
            .map(|s| s.as_str())
            .unwrap_or("<unk>")
    }

    /// Encodes a token sequence (no BOS/EOS added).
    pub fn encode(&self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.id(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::tag_id;

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = generate_corpus(20, 5);
        let b = generate_corpus(20, 5);
        assert_eq!(a.pairs, b.pairs);
        let c = generate_corpus(20, 6);
        assert_ne!(a.pairs, c.pairs);
    }

    #[test]
    fn tags_align_with_tokens() {
        let corpus = generate_corpus(50, 1);
        for pair in &corpus.pairs {
            assert_eq!(pair.source.len(), pair.source_tags.len());
            assert!(pair.source.len() >= 5);
        }
    }

    #[test]
    fn all_tags_are_penn_tags() {
        let corpus = generate_corpus(100, 2);
        for tag in corpus.observed_tags() {
            assert!(tag_id(&tag).is_some(), "tag {tag} not in Penn set");
        }
    }

    #[test]
    fn corpus_covers_many_tag_types() {
        let corpus = generate_corpus(300, 3);
        let tags = corpus.observed_tags();
        // Templates cover at least these categories.
        for required in [
            "DT", "NN", "VBZ", "VBD", "JJ", "RB", "PRP", "CC", "IN", "CD", "NNP", ".",
        ] {
            assert!(
                tags.contains(&required.to_string()),
                "missing {required}: {tags:?}"
            );
        }
    }

    #[test]
    fn sentences_end_with_period() {
        let corpus = generate_corpus(30, 4);
        for pair in &corpus.pairs {
            assert_eq!(pair.source.last().unwrap(), ".");
            assert_eq!(pair.target.last().unwrap(), ".");
        }
    }

    #[test]
    fn subordinate_clause_is_verb_final_in_german() {
        // Find a "because" sentence and check the German verb moved.
        let corpus = generate_corpus(500, 7);
        let pair = corpus
            .pairs
            .iter()
            .find(|p| p.source.contains(&"because".to_string()))
            .expect("template 8 must appear in 500 samples");
        let weil_pos = pair.target.iter().position(|t| t == "weil").unwrap();
        // After "weil": subject, object determiner, object noun, then verb.
        let clause = &pair.target[weil_pos + 1..pair.target.len() - 1];
        assert_eq!(clause.len(), 4, "clause {clause:?}");
        // The English verb is token 6 (index of second VBZ); its German
        // translation must be the final token of the clause.
        let en_verb = &pair.source[6];
        let expected_de = VERBS_VBZ.iter().find(|e| e.en == en_verb).unwrap().de;
        assert_eq!(clause.last().unwrap(), expected_de);
    }

    #[test]
    fn mean_length_matches_paper_scale() {
        // Paper: 24.2 words/sentence on WMT; ours are shorter but must be
        // non-trivial (>= 5 tokens).
        let corpus = generate_corpus(200, 8);
        assert!(corpus.mean_source_len() >= 5.0);
    }

    #[test]
    fn word_vocab_reserved_ids() {
        let v = WordVocab::build(["dog", "sees"]);
        assert_eq!(v.id("<pad>"), PAD_ID);
        assert_eq!(v.id("<bos>"), BOS_ID);
        assert_eq!(v.id("<eos>"), EOS_ID);
        assert_eq!(v.id("never-seen"), UNK_ID);
        assert_eq!(v.size(), 6);
    }

    #[test]
    fn word_vocab_encode_roundtrip() {
        let corpus = generate_corpus(10, 9);
        let v = WordVocab::build(
            corpus
                .pairs
                .iter()
                .flat_map(|p| p.source.iter().map(|s| s.as_str())),
        );
        let pair = &corpus.pairs[0];
        let ids = v.encode(&pair.source);
        for (id, tok) in ids.iter().zip(pair.source.iter()) {
            assert_eq!(v.word(*id), tok);
        }
    }
}
