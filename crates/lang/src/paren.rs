//! The nested-parentheses grammar of the paper's accuracy benchmark
//! (Appendix C): strings such as `0(1(2((44))))` where a digit naming the
//! current nesting level may precede each balanced parenthesis, up to 4
//! levels. The grammar is `r_i -> i r_i | ( r_{i+1} )` for `i < 4` and
//! `r4 -> ε | 4 r4`.

use crate::grammar::Grammar;

/// Maximum nesting level of the benchmark grammar.
pub const MAX_LEVEL: usize = 4;

/// Grammar spec for the parentheses language.
pub fn paren_grammar_spec() -> String {
    let mut spec = String::new();
    for i in 0..MAX_LEVEL {
        spec.push_str(&format!(
            "r{i} -> {{2.0}} '{i}' r{i} | '(' r{} ')' ;\n",
            i + 1
        ));
    }
    spec.push_str(&format!("r{MAX_LEVEL} -> | '{MAX_LEVEL}' r{MAX_LEVEL} ;\n"));
    spec
}

/// The parsed parentheses grammar (start symbol `r0`).
pub fn paren_grammar() -> Grammar {
    Grammar::from_spec(&paren_grammar_spec()).expect("builtin paren grammar must parse")
}

/// Hypothesis: 1 where the character is `(` or `)` — the "recognizes
/// parentheses symbols" hypothesis verified in Appendix C.
pub fn paren_symbol_behavior(text: &str) -> Vec<f32> {
    text.chars()
        .map(|c| if c == '(' || c == ')' { 1.0 } else { 0.0 })
        .collect()
}

/// Hypothesis: the current nesting level at each character. Opening parens
/// count at the deeper level they introduce; closing parens at the level
/// they close, mirroring the spans the grammar assigns.
pub fn nesting_level_behavior(text: &str) -> Vec<f32> {
    let mut out = Vec::with_capacity(text.len());
    let mut depth = 0i32;
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                out.push(depth as f32);
            }
            ')' => {
                out.push(depth as f32);
                depth -= 1;
            }
            _ => out.push(depth as f32),
        }
    }
    out
}

/// Hypothesis: 1 where the nesting level is exactly [`MAX_LEVEL`] — the
/// deliberately ambiguous hypothesis of Appendix C (units may learn the
/// digit `4` rather than the level).
pub fn level_is_max_behavior(text: &str) -> Vec<f32> {
    nesting_level_behavior(text)
        .into_iter()
        .map(|d| if d as usize == MAX_LEVEL { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earley::EarleyParser;
    use deepbase_tensor::init::seeded_rng;

    #[test]
    fn grammar_has_five_levels() {
        let g = paren_grammar();
        for i in 0..=MAX_LEVEL {
            assert!(g.nt_id(&format!("r{i}")).is_some());
        }
    }

    #[test]
    fn sampled_strings_are_balanced() {
        let g = paren_grammar();
        let mut rng = seeded_rng(21);
        for _ in 0..100 {
            let (text, _) = g.sample(&mut rng, 12);
            let mut depth = 0i32;
            for c in text.chars() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced: {text}");
                    }
                    d => assert!(d.is_ascii_digit(), "unexpected char in {text}"),
                }
            }
            assert_eq!(depth, 0, "unbalanced: {text}");
        }
    }

    #[test]
    fn digits_match_their_nesting_level() {
        let g = paren_grammar();
        let mut rng = seeded_rng(33);
        for _ in 0..50 {
            let (text, _) = g.sample(&mut rng, 12);
            let levels = nesting_level_behavior(&text);
            for (c, &level) in text.chars().zip(levels.iter()) {
                if let Some(d) = c.to_digit(10) {
                    assert_eq!(d as f32, level, "digit/level mismatch in {text}");
                }
            }
        }
    }

    #[test]
    fn sampled_strings_reparse() {
        let g = paren_grammar();
        let parser = EarleyParser::new(&g);
        let mut rng = seeded_rng(4);
        for _ in 0..30 {
            let (text, _) = g.sample(&mut rng, 10);
            assert!(parser.recognizes(&text), "must reparse {text}");
        }
    }

    #[test]
    fn example_string_from_paper_parses() {
        let parser_grammar = paren_grammar();
        let parser = EarleyParser::new(&parser_grammar);
        assert!(parser.recognizes("0(1(2((44))))"));
        assert!(!parser.recognizes("0(1("));
    }

    #[test]
    fn paren_symbol_behavior_marks_parens() {
        assert_eq!(paren_symbol_behavior("0(1)"), vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn nesting_level_of_paper_example() {
        let b = nesting_level_behavior("0(1(2((44))))");
        // 0 ( 1 ( 2 ( ( 4 4 ) ) ) )
        assert_eq!(
            b,
            vec![0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 4.0, 4.0, 4.0, 4.0, 3.0, 2.0, 1.0]
        );
    }

    #[test]
    fn level_is_max_flags_only_level4() {
        let b = level_is_max_behavior("0(1(2((44))))");
        assert_eq!(
            b,
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0]
        );
    }
}
