//! Earley chart parser over character terminals.
//!
//! This replaces NLTK's chart parser in the paper's pipeline (§6.1):
//! sampled SQL strings are parsed back into trees, and a single parse of a
//! record is amortized across all parse-derived hypothesis functions. The
//! implementation handles epsilon productions via the Aycock–Horspool
//! nullable-prediction trick and returns the first derivation found
//! (deterministic for a fixed grammar).

use crate::grammar::{Grammar, Sym};
use crate::tree::ParseTree;
use std::collections::HashSet;

/// An Earley item: production, dot position, origin set, plus the child
/// trees accumulated so far (back-pointer-free tree building; strings in
/// this pipeline are short windows, so cloning subtree vectors is cheap).
#[derive(Debug, Clone)]
struct Item {
    prod: usize,
    dot: usize,
    origin: usize,
    children: Vec<ParseTree>,
}

/// Earley parser bound to a grammar.
pub struct EarleyParser<'g> {
    grammar: &'g Grammar,
    nullable: Vec<bool>,
}

impl<'g> EarleyParser<'g> {
    /// Builds a parser, precomputing the nullable-nonterminal set.
    pub fn new(grammar: &'g Grammar) -> Self {
        let n = grammar.nonterminal_names().len();
        let mut nullable = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for p in grammar.productions() {
                if nullable[p.lhs] {
                    continue;
                }
                let all_nullable = p.rhs.iter().all(|s| match s {
                    Sym::T(_) => false,
                    Sym::Nt(nt) => nullable[*nt],
                });
                if all_nullable {
                    nullable[p.lhs] = true;
                    changed = true;
                }
            }
        }
        EarleyParser { grammar, nullable }
    }

    /// True when the nonterminal can derive the empty string.
    pub fn is_nullable(&self, nt: usize) -> bool {
        self.nullable[nt]
    }

    /// Parses `input`, returning the first full-span derivation of the
    /// start symbol, or `None` when the string is not in the language.
    pub fn parse(&self, input: &str) -> Option<ParseTree> {
        let chars: Vec<char> = input.chars().collect();
        let n = chars.len();
        let g = self.grammar;

        // chart[k] = items ending at position k.
        let mut chart: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
        let mut seen: Vec<HashSet<(usize, usize, usize)>> = vec![HashSet::new(); n + 1];

        for &p in g.productions_of(g.start()) {
            push_item(
                &mut chart[0],
                &mut seen[0],
                Item {
                    prod: p,
                    dot: 0,
                    origin: 0,
                    children: Vec::new(),
                },
            );
        }

        for k in 0..=n {
            let mut i = 0;
            while i < chart[k].len() {
                let item = chart[k][i].clone();
                i += 1;
                let rhs = &g.productions()[item.prod].rhs;
                if item.dot < rhs.len() {
                    match rhs[item.dot] {
                        Sym::Nt(nt) => {
                            // Predictor.
                            for &p in g.productions_of(nt) {
                                push_item(
                                    &mut chart[k],
                                    &mut seen[k],
                                    Item {
                                        prod: p,
                                        dot: 0,
                                        origin: k,
                                        children: Vec::new(),
                                    },
                                );
                            }
                            // Aycock–Horspool: advance over nullable NTs
                            // immediately, attaching an empty subtree.
                            if self.nullable[nt] {
                                let mut advanced = item.clone();
                                advanced.dot += 1;
                                advanced.children.push(ParseTree {
                                    rule: g.nt_name(nt).to_string(),
                                    start: k,
                                    end: k,
                                    children: Vec::new(),
                                });
                                push_item(&mut chart[k], &mut seen[k], advanced);
                            }
                        }
                        Sym::T(c) => {
                            // Scanner.
                            if k < n && chars[k] == c {
                                let mut advanced = item.clone();
                                advanced.dot += 1;
                                push_item(&mut chart[k + 1], &mut seen[k + 1], advanced);
                            }
                        }
                    }
                } else {
                    // Completer: item.prod's LHS spans item.origin..k.
                    let lhs = g.productions()[item.prod].lhs;
                    let completed = ParseTree {
                        rule: g.nt_name(lhs).to_string(),
                        start: item.origin,
                        end: k,
                        children: item.children.clone(),
                    };
                    // Advance every parent in chart[origin] waiting on lhs.
                    let parents: Vec<Item> = chart[item.origin]
                        .iter()
                        .filter(|parent| {
                            let prhs = &g.productions()[parent.prod].rhs;
                            parent.dot < prhs.len() && prhs[parent.dot] == Sym::Nt(lhs)
                        })
                        .cloned()
                        .collect();
                    for mut parent in parents {
                        parent.dot += 1;
                        parent.children.push(completed.clone());
                        push_item(&mut chart[k], &mut seen[k], parent);
                    }
                }
            }
        }

        // Accept: a completed start production spanning the whole input.
        chart[n]
            .iter()
            .find(|item| {
                let p = &g.productions()[item.prod];
                p.lhs == g.start() && item.dot == p.rhs.len() && item.origin == 0
            })
            .map(|item| ParseTree {
                rule: g.nt_name(g.start()).to_string(),
                start: 0,
                end: n,
                children: item.children.clone(),
            })
    }

    /// True when `input` is in the grammar's language.
    pub fn recognizes(&self, input: &str) -> bool {
        self.parse(input).is_some()
    }
}

fn push_item(set: &mut Vec<Item>, seen: &mut HashSet<(usize, usize, usize)>, item: Item) {
    // First derivation wins: duplicates (same production/dot/origin) are
    // dropped, which keeps the parser deterministic and linear in practice.
    if seen.insert((item.prod, item.dot, item.origin)) {
        set.push(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepbase_tensor::init::seeded_rng;

    const ARITH: &str = r"
        expr -> term | expr '+' term ;
        term -> digit | '(' expr ')' ;
        digit -> '1' | '2' | '3' ;
    ";

    fn arith() -> Grammar {
        Grammar::from_spec(ARITH).unwrap()
    }

    #[test]
    fn accepts_simple_strings() {
        let g = arith();
        let parser = EarleyParser::new(&g);
        for ok in ["1", "1+2", "(1+2)+3", "((1))"] {
            assert!(parser.recognizes(ok), "should accept {ok}");
        }
    }

    #[test]
    fn rejects_malformed_strings() {
        let g = arith();
        let parser = EarleyParser::new(&g);
        for bad in ["", "+", "1+", "(1", "4", "1++2"] {
            assert!(!parser.recognizes(bad), "should reject {bad}");
        }
    }

    #[test]
    fn tree_spans_cover_input() {
        let g = arith();
        let parser = EarleyParser::new(&g);
        let tree = parser.parse("(1+2)+3").unwrap();
        assert_eq!(tree.start, 0);
        assert_eq!(tree.end, 7);
        assert_eq!(tree.rule, "expr");
        // The parenthesized group is an inner expr spanning chars 1..4.
        assert!(tree.spans_of("expr").contains(&(1, 4)));
    }

    #[test]
    fn left_recursion_handled() {
        let g = arith();
        let parser = EarleyParser::new(&g);
        // expr -> expr '+' term is left-recursive; long chains must parse.
        let long = "1+2+3+1+2+3+1+2+3";
        assert!(parser.recognizes(long));
    }

    #[test]
    fn nullable_set_computed_transitively() {
        let g = Grammar::from_spec("s -> a b ; a -> | 'x' ; b -> a a ;").unwrap();
        let parser = EarleyParser::new(&g);
        assert!(parser.is_nullable(g.nt_id("a").unwrap()));
        assert!(parser.is_nullable(g.nt_id("b").unwrap()));
        assert!(parser.is_nullable(g.nt_id("s").unwrap()));
    }

    #[test]
    fn epsilon_productions_parse() {
        let g = Grammar::from_spec("s -> opt 'x' opt ; opt -> | 'o' ;").unwrap();
        let parser = EarleyParser::new(&g);
        for ok in ["x", "ox", "xo", "oxo"] {
            assert!(parser.recognizes(ok), "should accept {ok:?}");
        }
        assert!(!parser.recognizes("oo"));
        assert!(!parser.recognizes("oxoo"));
    }

    #[test]
    fn empty_input_accepted_iff_start_nullable() {
        let g = Grammar::from_spec("s -> | 'x' ;").unwrap();
        let parser = EarleyParser::new(&g);
        assert!(parser.recognizes(""));
        let g2 = Grammar::from_spec("s -> 'x' ;").unwrap();
        let parser2 = EarleyParser::new(&g2);
        assert!(!parser2.recognizes(""));
    }

    #[test]
    fn sampled_strings_reparse_under_same_grammar() {
        let g = arith();
        let parser = EarleyParser::new(&g);
        let mut rng = seeded_rng(11);
        for _ in 0..100 {
            let (text, _) = g.sample(&mut rng, 6);
            assert!(
                parser.recognizes(&text),
                "sampled string must parse: {text}"
            );
        }
    }

    #[test]
    fn parse_tree_matches_sampled_rule_multiset_weakly() {
        // The parsed tree need not equal the sampled derivation (ambiguity),
        // but it must reference only rules of the grammar and have sane spans.
        let g = arith();
        let parser = EarleyParser::new(&g);
        let mut rng = seeded_rng(3);
        let (text, _) = g.sample(&mut rng, 6);
        let tree = parser.parse(&text).unwrap();
        let names = tree.rule_names();
        for n in &names {
            assert!(g.nt_id(n).is_some(), "unknown rule {n}");
        }
    }

    #[test]
    fn unrelated_alphabet_rejected() {
        let g = arith();
        let parser = EarleyParser::new(&g);
        assert!(!parser.recognizes("abc"));
    }
}
