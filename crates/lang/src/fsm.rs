//! Finite-state-machine hypotheses (paper §4.2): regular expressions,
//! simple rules and pattern detectors expressed as DFAs whose state labels
//! become hypothesis behaviors — each input symbol triggers a transition
//! and the hypothesis emits the current state (or a one-hot per state).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A deterministic finite automaton over characters. Missing transitions
/// fall back to `default_state` (a dead/reset state), so the machine is
/// total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dfa {
    n_states: usize,
    start: usize,
    default_state: usize,
    transitions: HashMap<(usize, char), usize>,
    /// Optional human-readable state labels.
    labels: Vec<String>,
}

impl Dfa {
    /// Creates a DFA with `n_states` states; state ids are `0..n_states`.
    /// Missing transitions go to `default_state`.
    pub fn new(n_states: usize, start: usize, default_state: usize) -> Self {
        assert!(
            start < n_states && default_state < n_states,
            "state out of range"
        );
        Dfa {
            n_states,
            start,
            default_state,
            transitions: HashMap::new(),
            labels: (0..n_states).map(|i| format!("s{i}")).collect(),
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Sets a transition.
    pub fn transition(mut self, from: usize, on: char, to: usize) -> Self {
        assert!(
            from < self.n_states && to < self.n_states,
            "state out of range"
        );
        self.transitions.insert((from, on), to);
        self
    }

    /// Names a state (for hypothesis identifiers).
    pub fn label(mut self, state: usize, name: &str) -> Self {
        self.labels[state] = name.to_string();
        self
    }

    /// Label of a state.
    pub fn state_label(&self, state: usize) -> &str {
        &self.labels[state]
    }

    /// Runs the machine over `text`, returning the state *after* reading
    /// each character (length == character count).
    pub fn run(&self, text: &str) -> Vec<usize> {
        let mut state = self.start;
        text.chars()
            .map(|c| {
                state = self
                    .transitions
                    .get(&(state, c))
                    .copied()
                    .unwrap_or(self.default_state);
                state
            })
            .collect()
    }

    /// Hypothesis behavior emitting the raw state id after each symbol.
    pub fn state_id_behavior(&self, text: &str) -> Vec<f32> {
        self.run(text).into_iter().map(|s| s as f32).collect()
    }

    /// Hypothesis behavior emitting 1 whenever the machine is in `state`
    /// (the "hot-one encoded state" form of §4.2).
    pub fn state_indicator_behavior(&self, text: &str, state: usize) -> Vec<f32> {
        self.run(text)
            .into_iter()
            .map(|s| if s == state { 1.0 } else { 0.0 })
            .collect()
    }
}

/// Builds a keyword-tracking DFA: state `k` means "the last `k` characters
/// matched the keyword prefix"; the final state (keyword length) means a
/// full match just completed. This mirrors compiling a regular expression
/// for the keyword. Fallback edges restart at the longest matching prefix
/// (KMP-style), so overlapping text is handled correctly.
pub fn keyword_dfa(keyword: &str) -> Dfa {
    let kw: Vec<char> = keyword.chars().collect();
    assert!(!kw.is_empty(), "keyword must be non-empty");
    let n = kw.len();
    let mut dfa = Dfa::new(n + 1, 0, 0);
    // KMP failure function.
    let mut fail = vec![0usize; n];
    for i in 1..n {
        let mut j = fail[i - 1];
        while j > 0 && kw[i] != kw[j] {
            j = fail[j - 1];
        }
        if kw[i] == kw[j] {
            j += 1;
        }
        fail[i] = j;
    }
    // Forward edges plus fallback edges for every prefix state and every
    // character that appears in the keyword.
    let alphabet: std::collections::BTreeSet<char> = kw.iter().copied().collect();
    for state in 0..=n {
        for &c in &alphabet {
            let mut j = if state == n { fail[n - 1] } else { state };
            loop {
                if j < n && kw[j] == c {
                    j += 1;
                    break;
                }
                if j == 0 {
                    break;
                }
                j = fail[j - 1];
            }
            if j > 0 {
                dfa = dfa.transition(state, c, j);
            }
        }
    }
    dfa.label(n, "matched")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_follows_transitions_and_default() {
        let dfa = Dfa::new(3, 0, 0)
            .transition(0, 'a', 1)
            .transition(1, 'b', 2);
        assert_eq!(dfa.run("ab"), vec![1, 2]);
        assert_eq!(dfa.run("ax"), vec![1, 0]);
        assert_eq!(dfa.run(""), Vec::<usize>::new());
    }

    #[test]
    fn state_behaviors() {
        let dfa = Dfa::new(2, 0, 0)
            .transition(0, 'x', 1)
            .transition(1, 'x', 1);
        assert_eq!(dfa.state_id_behavior("xyx"), vec![1.0, 0.0, 1.0]);
        assert_eq!(dfa.state_indicator_behavior("xyx", 1), vec![1.0, 0.0, 1.0]);
        assert_eq!(dfa.state_indicator_behavior("xyx", 0), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn keyword_dfa_reaches_match_state() {
        let dfa = keyword_dfa("ab");
        let states = dfa.run("xabx");
        assert_eq!(states, vec![0, 1, 2, 0]);
        assert_eq!(dfa.state_label(2), "matched");
    }

    #[test]
    fn keyword_dfa_handles_overlap() {
        // "aa" in "aaa": matches at positions 1 and 2 (KMP fallback).
        let dfa = keyword_dfa("aa");
        let match_state = 2;
        let behavior = dfa.state_indicator_behavior("aaa", match_state);
        assert_eq!(behavior, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn keyword_dfa_prefix_restart() {
        // "abab": after "aba" failing on 'a' must keep the "a" prefix.
        let dfa = keyword_dfa("abab");
        let states = dfa.run("ababab");
        assert_eq!(states[3], 4, "first match at index 3");
        assert_eq!(states[5], 4, "overlapping match at index 5");
    }

    #[test]
    fn select_keyword_dfa_on_sql() {
        let dfa = keyword_dfa("SELECT");
        let text = "SELECT a FROM b";
        let matched = dfa.state_indicator_behavior(text, 6);
        assert_eq!(matched[5], 1.0, "match completes at the final T");
        assert!(matched[6..].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn transition_bounds_checked() {
        let _ = Dfa::new(1, 0, 0).transition(0, 'a', 5);
    }
}
