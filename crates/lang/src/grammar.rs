//! Probabilistic context-free grammars: a compact text DSL, weighted
//! sampling, and the data model shared with the Earley parser.
//!
//! The paper's scalability benchmark (§6.1) samples synthetic SQL from a
//! PCFG using NLTK and parses it back with NLTK's chart parser; this module
//! is the NLTK replacement. Terminals are exploded to characters at load
//! time because every model in the paper reads character (or token)
//! sequences and hypothesis behaviors are per-symbol.

use crate::tree::ParseTree;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A grammar symbol: nonterminal index or single-character terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sym {
    /// Nonterminal, by index into [`Grammar::nonterminal_names`].
    Nt(usize),
    /// Character terminal.
    T(char),
}

/// One production `lhs -> rhs` with a sampling weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Production {
    /// Index of the left-hand-side nonterminal.
    pub lhs: usize,
    /// Right-hand side; empty means an epsilon production.
    pub rhs: Vec<Sym>,
    /// Relative sampling weight among productions of the same LHS.
    pub weight: f32,
}

/// Errors raised while parsing a grammar specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarError {
    /// Description with position context.
    pub msg: String,
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grammar error: {}", self.msg)
    }
}

impl std::error::Error for GrammarError {}

/// A probabilistic context-free grammar over character terminals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grammar {
    nt_names: Vec<String>,
    productions: Vec<Production>,
    by_lhs: Vec<Vec<usize>>,
    start: usize,
    /// Minimum derivation depth of each nonterminal (how many expansion
    /// steps are needed to reach an all-terminal string). Drives sampler
    /// termination once `max_depth` is exceeded.
    min_depth: Vec<usize>,
}

impl Grammar {
    /// Parses a grammar from the spec DSL.
    ///
    /// Syntax (one rule per `;`):
    ///
    /// ```text
    /// # comments run to end of line
    /// query  -> select ' ' from ;
    /// select -> 'SELECT' ;
    /// list   -> {3.0} item | {1.0} item ',' list ;
    /// empty  -> ;                      # epsilon production
    /// ```
    ///
    /// * nonterminals are bare identifiers; the first LHS is the start
    ///   symbol,
    /// * terminals are single-quoted strings (escapes: `\'`, `\\`),
    ///   exploded into one char terminal per character,
    /// * `|` separates alternatives; an optional `{w}` prefix sets the
    ///   alternative's sampling weight (default 1.0).
    pub fn from_spec(spec: &str) -> Result<Grammar, GrammarError> {
        let mut nt_index: HashMap<String, usize> = HashMap::new();
        let mut nt_names: Vec<String> = Vec::new();
        let mut raw_rules: Vec<(usize, Vec<RawAlt>)> = Vec::new();

        let intern = |name: &str,
                      nt_names: &mut Vec<String>,
                      nt_index: &mut HashMap<String, usize>|
         -> usize {
            if let Some(&i) = nt_index.get(name) {
                i
            } else {
                let i = nt_names.len();
                nt_names.push(name.to_string());
                nt_index.insert(name.to_string(), i);
                i
            }
        };

        // Strip comments, then split rules on ';'.
        let cleaned: String = spec
            .lines()
            .map(|l| l.split('#').next().unwrap_or(""))
            .collect::<Vec<_>>()
            .join("\n");
        for (rule_no, rule_text) in cleaned.split(';').enumerate() {
            let rule_text = rule_text.trim();
            if rule_text.is_empty() {
                continue;
            }
            let Some((lhs_text, rhs_text)) = rule_text.split_once("->") else {
                return Err(GrammarError {
                    msg: format!("rule {} missing '->': {:?}", rule_no, rule_text),
                });
            };
            let lhs_name = lhs_text.trim();
            if !is_identifier(lhs_name) {
                return Err(GrammarError {
                    msg: format!("invalid nonterminal name {:?}", lhs_name),
                });
            }
            let lhs = intern(lhs_name, &mut nt_names, &mut nt_index);
            let mut alts = Vec::new();
            for alt_text in split_alternatives(rhs_text) {
                alts.push(parse_alternative(&alt_text, rule_no)?);
            }
            raw_rules.push((lhs, alts));
        }

        if raw_rules.is_empty() {
            return Err(GrammarError {
                msg: "empty grammar".into(),
            });
        }
        let start = raw_rules[0].0;

        // Resolve symbols now that all nonterminals are known: bare
        // identifiers must refer to a defined nonterminal.
        let defined: std::collections::HashSet<usize> =
            raw_rules.iter().map(|(lhs, _)| *lhs).collect();
        let mut productions = Vec::new();
        for (lhs, alts) in &raw_rules {
            for alt in alts {
                let mut rhs = Vec::new();
                for tok in &alt.tokens {
                    match tok {
                        RawTok::Ident(name) => {
                            let Some(&idx) = nt_index.get(name.as_str()) else {
                                return Err(GrammarError {
                                    msg: format!("undefined nonterminal {:?}", name),
                                });
                            };
                            if !defined.contains(&idx) {
                                return Err(GrammarError {
                                    msg: format!("nonterminal {:?} has no productions", name),
                                });
                            }
                            rhs.push(Sym::Nt(idx));
                        }
                        RawTok::Literal(text) => {
                            for ch in text.chars() {
                                rhs.push(Sym::T(ch));
                            }
                        }
                    }
                }
                productions.push(Production {
                    lhs: *lhs,
                    rhs,
                    weight: alt.weight,
                });
            }
        }

        let mut by_lhs = vec![Vec::new(); nt_names.len()];
        for (i, p) in productions.iter().enumerate() {
            by_lhs[p.lhs].push(i);
        }
        // Every referenced nonterminal has productions (checked above), and
        // every defined nonterminal must have at least one alternative.
        for (nt, prods) in by_lhs.iter().enumerate() {
            if prods.is_empty() {
                return Err(GrammarError {
                    msg: format!("nonterminal {:?} has no productions", nt_names[nt]),
                });
            }
        }

        // Minimum derivation depth, by fixpoint: a production's cost is
        // 1 + max over its RHS nonterminals. A nonterminal that never
        // reaches a finite depth can only derive infinite strings, which
        // makes the grammar unusable for sampling — reject it.
        let mut min_depth = vec![usize::MAX; nt_names.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &productions {
                let mut cost = 1usize;
                let mut finite = true;
                for s in &p.rhs {
                    if let Sym::Nt(nt) = s {
                        if min_depth[*nt] == usize::MAX {
                            finite = false;
                            break;
                        }
                        cost = cost.max(1 + min_depth[*nt]);
                    }
                }
                if finite && cost < min_depth[p.lhs] {
                    min_depth[p.lhs] = cost;
                    changed = true;
                }
            }
        }
        if let Some(bad) = min_depth.iter().position(|&d| d == usize::MAX) {
            return Err(GrammarError {
                msg: format!(
                    "nonterminal {:?} cannot derive any finite string",
                    nt_names[bad]
                ),
            });
        }

        Ok(Grammar {
            nt_names,
            productions,
            by_lhs,
            start,
            min_depth,
        })
    }

    /// Names of all nonterminals, in definition order.
    pub fn nonterminal_names(&self) -> &[String] {
        &self.nt_names
    }

    /// Name of nonterminal `i`.
    pub fn nt_name(&self, i: usize) -> &str {
        &self.nt_names[i]
    }

    /// Index of a nonterminal by name.
    pub fn nt_id(&self, name: &str) -> Option<usize> {
        self.nt_names.iter().position(|n| n == name)
    }

    /// All productions.
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Indices of productions with the given LHS.
    pub fn productions_of(&self, lhs: usize) -> &[usize] {
        &self.by_lhs[lhs]
    }

    /// Number of productions (the paper's "grammar rules" knob: 95–171).
    pub fn rule_count(&self) -> usize {
        self.productions.len()
    }

    /// Start nonterminal index.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The set of terminal characters used by the grammar, sorted — the
    /// model alphabet.
    pub fn alphabet(&self) -> Vec<char> {
        let mut set: std::collections::BTreeSet<char> = Default::default();
        for p in &self.productions {
            for s in &p.rhs {
                if let Sym::T(c) = s {
                    set.insert(*c);
                }
            }
        }
        set.into_iter().collect()
    }

    /// Samples one string and its ground-truth parse tree.
    ///
    /// Weighted choice among alternatives; beyond `max_depth` the sampler
    /// switches to the alternative with the fewest nonterminals to force
    /// termination (standard PCFG sampling practice).
    pub fn sample(&self, rng: &mut impl Rng, max_depth: usize) -> (String, ParseTree) {
        let mut text = String::new();
        let tree = self.sample_nt(self.start, rng, 0, max_depth, &mut text);
        (text, tree)
    }

    fn sample_nt(
        &self,
        nt: usize,
        rng: &mut impl Rng,
        depth: usize,
        max_depth: usize,
        out: &mut String,
    ) -> ParseTree {
        let choices = &self.by_lhs[nt];
        let prod_idx = if depth >= max_depth {
            // Termination mode: the alternative whose RHS nonterminals have
            // the smallest minimum derivation depth, guaranteeing progress
            // toward an all-terminal string.
            *choices
                .iter()
                .min_by_key(|&&p| {
                    self.productions[p]
                        .rhs
                        .iter()
                        .map(|s| match s {
                            Sym::Nt(child) => 1 + self.min_depth[*child],
                            Sym::T(_) => 0,
                        })
                        .max()
                        .unwrap_or(0)
                })
                .expect("nonterminal with no productions")
        } else {
            let total: f32 = choices.iter().map(|&p| self.productions[p].weight).sum();
            let mut pick = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
            let mut chosen = choices[0];
            for &p in choices {
                pick -= self.productions[p].weight;
                chosen = p;
                if pick <= 0.0 {
                    break;
                }
            }
            chosen
        };

        let start = out.chars().count();
        let mut children = Vec::new();
        for sym in &self.productions[prod_idx].rhs {
            match sym {
                Sym::T(c) => out.push(*c),
                Sym::Nt(child) => {
                    children.push(self.sample_nt(*child, rng, depth + 1, max_depth, out));
                }
            }
        }
        let end = out.chars().count();
        ParseTree {
            rule: self.nt_names[nt].clone(),
            start,
            end,
            children,
        }
    }
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug)]
enum RawTok {
    Ident(String),
    Literal(String),
}

#[derive(Debug)]
struct RawAlt {
    weight: f32,
    tokens: Vec<RawTok>,
}

/// Splits an RHS on top-level `|` (quotes may contain `|`).
fn split_alternatives(rhs: &str) -> Vec<String> {
    let mut alts = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    let mut escaped = false;
    for c in rhs.chars() {
        if escaped {
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => {
                current.push(c);
                escaped = true;
            }
            '\'' => {
                in_quote = !in_quote;
                current.push(c);
            }
            '|' if !in_quote => {
                alts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    alts.push(current);
    alts
}

fn parse_alternative(text: &str, rule_no: usize) -> Result<RawAlt, GrammarError> {
    let mut weight = 1.0f32;
    let mut rest = text.trim();
    if let Some(stripped) = rest.strip_prefix('{') {
        let Some((w, tail)) = stripped.split_once('}') else {
            return Err(GrammarError {
                msg: format!("rule {rule_no}: unterminated weight"),
            });
        };
        weight = w.trim().parse::<f32>().map_err(|e| GrammarError {
            msg: format!("rule {rule_no}: bad weight {w:?}: {e}"),
        })?;
        if weight <= 0.0 {
            return Err(GrammarError {
                msg: format!("rule {rule_no}: weight must be > 0"),
            });
        }
        rest = tail.trim();
    }

    let mut tokens = Vec::new();
    let mut chars = rest.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut lit = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => {
                        let Some(esc) = chars.next() else { break };
                        match esc {
                            'n' => lit.push('\n'),
                            't' => lit.push('\t'),
                            other => lit.push(other),
                        }
                    }
                    '\'' => {
                        closed = true;
                        break;
                    }
                    other => lit.push(other),
                }
            }
            if !closed {
                return Err(GrammarError {
                    msg: format!("rule {rule_no}: unterminated string literal"),
                });
            }
            tokens.push(RawTok::Literal(lit));
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    ident.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(RawTok::Ident(ident));
        } else {
            return Err(GrammarError {
                msg: format!("rule {rule_no}: unexpected character {c:?} in RHS"),
            });
        }
    }
    Ok(RawAlt { weight, tokens })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepbase_tensor::init::seeded_rng;

    const TOY: &str = r"
        # toy arithmetic grammar
        expr -> term | expr '+' term ;
        term -> digit | '(' expr ')' ;
        digit -> '1' | '2' | '3' ;
    ";

    #[test]
    fn parses_toy_grammar() {
        let g = Grammar::from_spec(TOY).unwrap();
        assert_eq!(g.nonterminal_names(), &["expr", "term", "digit"]);
        assert_eq!(g.rule_count(), 7);
        assert_eq!(g.start(), 0);
    }

    #[test]
    fn alphabet_collects_terminals() {
        let g = Grammar::from_spec(TOY).unwrap();
        assert_eq!(g.alphabet(), vec!['(', ')', '+', '1', '2', '3']);
    }

    #[test]
    fn multi_char_literal_explodes_to_chars() {
        let g = Grammar::from_spec("kw -> 'SELECT' ;").unwrap();
        let p = &g.productions()[0];
        assert_eq!(p.rhs.len(), 6);
        assert!(matches!(p.rhs[0], Sym::T('S')));
    }

    #[test]
    fn epsilon_production_allowed() {
        let g = Grammar::from_spec("opt -> | 'x' ;").unwrap();
        assert!(g.productions().iter().any(|p| p.rhs.is_empty()));
    }

    #[test]
    fn rejects_undefined_nonterminal() {
        let err = Grammar::from_spec("a -> b ;").unwrap_err();
        assert!(err.msg.contains("b"));
    }

    #[test]
    fn rejects_missing_arrow() {
        assert!(Grammar::from_spec("broken rule ;").is_err());
    }

    #[test]
    fn rejects_unterminated_literal() {
        assert!(Grammar::from_spec("a -> 'oops ;").is_err());
    }

    #[test]
    fn rejects_nonpositive_weight() {
        assert!(Grammar::from_spec("a -> {0.0} 'x' ;").is_err());
    }

    #[test]
    fn weights_parse_and_bias_sampling() {
        let g = Grammar::from_spec("s -> {9.0} 'a' | {1.0} 'b' ;").unwrap();
        let mut rng = seeded_rng(5);
        let mut a_count = 0;
        for _ in 0..500 {
            let (text, _) = g.sample(&mut rng, 10);
            if text == "a" {
                a_count += 1;
            }
        }
        assert!(a_count > 400, "weighted sampling skew: {a_count}/500");
    }

    #[test]
    fn sample_string_matches_tree_spans() {
        let g = Grammar::from_spec(TOY).unwrap();
        let mut rng = seeded_rng(1);
        for _ in 0..50 {
            let (text, tree) = g.sample(&mut rng, 8);
            assert_eq!(tree.start, 0);
            assert_eq!(tree.end, text.chars().count());
            // Every node's span must be within its parent's span.
            fn check(node: &crate::tree::ParseTree) {
                for child in &node.children {
                    assert!(child.start >= node.start && child.end <= node.end);
                    check(child);
                }
            }
            check(&tree);
        }
    }

    #[test]
    fn sampling_terminates_beyond_max_depth() {
        // Highly recursive grammar: without depth forcing this would loop.
        let g = Grammar::from_spec("s -> {100.0} '(' s ')' | 'x' ;").unwrap();
        let mut rng = seeded_rng(2);
        let (text, _) = g.sample(&mut rng, 5);
        assert!(text.len() < 40, "runaway sample: {text}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = Grammar::from_spec("# header\n\ns -> 'x' ; # trailing\n").unwrap();
        assert_eq!(g.rule_count(), 1);
    }

    #[test]
    fn escaped_quote_in_literal() {
        let g = Grammar::from_spec(r"s -> '\'' ;").unwrap();
        assert_eq!(g.alphabet(), vec!['\'']);
    }
}
