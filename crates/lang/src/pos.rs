//! Part-of-speech tagging: the Penn Treebank tagset and a rule-based
//! tagger standing in for Stanford CoreNLP (paper §6.3: the NMT analyses
//! annotate tokens with 46 POS tags and probe encoder activations for
//! them).
//!
//! The synthetic parallel corpus ([`crate::corpus`]) carries ground-truth
//! tags by construction; this tagger provides the independent
//! "annotation library" path so experiments can compare probe scores under
//! generated vs. tagged annotations, as the paper does with CoreNLP.

use serde::{Deserialize, Serialize};

/// The 46-tag Penn Treebank tagset (36 word tags + 10 punctuation/symbol
/// tags), as used by the paper's POS probes.
pub const PENN_TAGS: &[&str] = &[
    "CC", "CD", "DT", "EX", "FW", "IN", "JJ", "JJR", "JJS", "LS", "MD", "NN", "NNS", "NNP", "NNPS",
    "PDT", "POS", "PRP", "PRP$", "RB", "RBR", "RBS", "RP", "SYM", "TO", "UH", "VB", "VBD", "VBG",
    "VBN", "VBP", "VBZ", "WDT", "WP", "WP$", "WRB", ".", ",", ":", "(", ")", "\"", "'", "`", "#",
    "$",
];

/// Index of a tag in [`PENN_TAGS`].
pub fn tag_id(tag: &str) -> Option<usize> {
    PENN_TAGS.iter().position(|&t| t == tag)
}

/// Number of tags.
pub fn tag_count() -> usize {
    PENN_TAGS.len()
}

/// A deterministic rule-based POS tagger: closed-class lexicon first, then
/// suffix morphology, then capitalization/digit heuristics, defaulting to
/// `NN`. Accuracy on the synthetic corpus is high because the corpus
/// vocabulary is covered; on arbitrary English it behaves like a classic
/// baseline tagger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PosTagger;

impl PosTagger {
    /// Creates the tagger.
    pub fn new() -> Self {
        PosTagger
    }

    /// Tags one token (context-free).
    pub fn tag(&self, word: &str) -> &'static str {
        let lower = word.to_ascii_lowercase();
        // Punctuation.
        match word {
            "." | "!" | "?" => return ".",
            "," => return ",",
            ":" | ";" => return ":",
            "(" => return "(",
            ")" => return ")",
            "\"" => return "\"",
            "'" => return "'",
            "$" => return "$",
            "#" => return "#",
            _ => {}
        }
        // Closed-class lexicon.
        if let Some(tag) = lexicon_tag(&lower) {
            return tag;
        }
        // Digits.
        if word
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == ',')
            && word.chars().any(|c| c.is_ascii_digit())
        {
            return "CD";
        }
        // Morphological suffixes (ordered longest-first).
        for (suffix, tag) in SUFFIX_RULES {
            if lower.len() > suffix.len() && lower.ends_with(suffix) {
                return tag;
            }
        }
        // Capitalized unknown word: proper noun.
        if word
            .chars()
            .next()
            .map(|c| c.is_ascii_uppercase())
            .unwrap_or(false)
        {
            return "NNP";
        }
        "NN"
    }

    /// Tags a tokenized sentence.
    pub fn tag_sentence(&self, words: &[String]) -> Vec<&'static str> {
        words.iter().map(|w| self.tag(w)).collect()
    }
}

const SUFFIX_RULES: &[(&str, &str)] = &[
    ("ness", "NN"),
    ("ment", "NN"),
    ("tion", "NN"),
    ("sion", "NN"),
    ("able", "JJ"),
    ("ible", "JJ"),
    ("ical", "JJ"),
    ("ious", "JJ"),
    ("est", "JJS"),
    ("ing", "VBG"),
    ("ous", "JJ"),
    ("ful", "JJ"),
    ("ive", "JJ"),
    ("ish", "JJ"),
    ("ed", "VBD"),
    ("ly", "RB"),
    ("er", "JJR"),
    ("s", "NNS"),
];

fn lexicon_tag(lower: &str) -> Option<&'static str> {
    let tag = match lower {
        // Determiners.
        "the" | "a" | "an" | "this" | "that" | "these" | "those" | "each" | "every" | "no" => "DT",
        // Coordinating conjunctions (the paper's §4.4 example).
        "and" | "or" | "but" | "nor" | "yet" => "CC",
        // Prepositions / subordinating conjunctions.
        "in" | "on" | "at" | "by" | "with" | "from" | "of" | "for" | "about" | "into" | "over"
        | "under" | "after" | "before" | "because" | "while" | "if" | "near" => "IN",
        // Personal pronouns.
        "i" | "you" | "he" | "she" | "it" | "we" | "they" | "him" | "her" | "them" | "me"
        | "us" => "PRP",
        // Possessive pronouns.
        "my" | "your" | "his" | "its" | "our" | "their" => "PRP$",
        // Modals.
        "can" | "could" | "will" | "would" | "shall" | "should" | "may" | "might" | "must" => "MD",
        // Wh-words.
        "who" | "what" | "whom" => "WP",
        "whose" => "WP$",
        "which" => "WDT",
        "where" | "when" | "why" | "how" => "WRB",
        // Existential there.
        "there" => "EX",
        // To.
        "to" => "TO",
        // Common adverbs not ending in -ly.
        "very" | "quite" | "rather" | "too" | "so" | "now" | "then" | "here" | "always"
        | "never" | "often" | "again" | "still" => "RB",
        // Common irregular verbs, base/3rd/past forms.
        "be" | "have" | "do" | "go" | "see" | "say" | "eat" | "run" | "sing" | "watch" | "read"
        | "write" | "find" | "like" | "want" | "know" => "VB",
        "is" | "has" | "does" | "goes" | "sees" | "says" | "eats" | "runs" | "sings"
        | "watches" | "reads" | "writes" | "finds" | "likes" | "wants" | "knows" => "VBZ",
        "are" | "am" => "VBP",
        "was" | "were" | "went" | "saw" | "said" | "ate" | "ran" | "sang" | "found" | "knew"
        | "wrote" => "VBD",
        "been" | "done" | "gone" | "seen" | "eaten" | "sung" | "known" | "written" => "VBN",
        // Interjections.
        "oh" | "ah" | "wow" | "hey" => "UH",
        _ => return None,
    };
    Some(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagset_has_46_tags() {
        assert_eq!(PENN_TAGS.len(), 46);
        // No duplicates.
        let set: std::collections::HashSet<_> = PENN_TAGS.iter().collect();
        assert_eq!(set.len(), 46);
    }

    #[test]
    fn tag_id_roundtrips() {
        for (i, tag) in PENN_TAGS.iter().enumerate() {
            assert_eq!(tag_id(tag), Some(i));
        }
        assert_eq!(tag_id("NOPE"), None);
    }

    #[test]
    fn closed_class_words() {
        let t = PosTagger::new();
        assert_eq!(t.tag("the"), "DT");
        assert_eq!(t.tag("and"), "CC");
        assert_eq!(t.tag("in"), "IN");
        assert_eq!(t.tag("he"), "PRP");
        assert_eq!(t.tag("their"), "PRP$");
        assert_eq!(t.tag("should"), "MD");
        assert_eq!(t.tag("to"), "TO");
    }

    #[test]
    fn verbs_by_form() {
        let t = PosTagger::new();
        assert_eq!(t.tag("watch"), "VB");
        assert_eq!(t.tag("watches"), "VBZ");
        assert_eq!(t.tag("watched"), "VBD");
        assert_eq!(t.tag("watching"), "VBG");
        assert_eq!(t.tag("seen"), "VBN");
        assert_eq!(t.tag("are"), "VBP");
    }

    #[test]
    fn morphology_rules() {
        let t = PosTagger::new();
        assert_eq!(t.tag("quickly"), "RB");
        assert_eq!(t.tag("happiness"), "NN");
        assert_eq!(t.tag("walking"), "VBG");
        assert_eq!(t.tag("jumped"), "VBD");
        assert_eq!(t.tag("dogs"), "NNS");
        assert_eq!(t.tag("famous"), "JJ");
        assert_eq!(t.tag("greatest"), "JJS");
    }

    #[test]
    fn numbers_and_punctuation() {
        let t = PosTagger::new();
        assert_eq!(t.tag("42"), "CD");
        assert_eq!(t.tag("3.14"), "CD");
        assert_eq!(t.tag("."), ".");
        assert_eq!(t.tag(","), ",");
        assert_eq!(t.tag("("), "(");
    }

    #[test]
    fn capitalized_unknowns_are_proper_nouns() {
        let t = PosTagger::new();
        assert_eq!(t.tag("Rick"), "NNP");
        assert_eq!(t.tag("Morty"), "NNP");
    }

    #[test]
    fn default_is_common_noun() {
        assert_eq!(PosTagger::new().tag("zorp"), "NN");
    }

    #[test]
    fn paper_example_sentence() {
        // "He watched Rick and Morty ." — the §4.4 perturbation example.
        let t = PosTagger::new();
        let words: Vec<String> = ["He", "watched", "Rick", "and", "Morty", "."]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tags = t.tag_sentence(&words);
        assert_eq!(tags, vec!["PRP", "VBD", "NNP", "CC", "NNP", "."]);
    }

    #[test]
    fn all_emitted_tags_are_in_tagset() {
        let t = PosTagger::new();
        for word in [
            "the",
            "zorp",
            "Running",
            "42",
            ".",
            "watched",
            "carefully",
            "greatest",
        ] {
            let tag = t.tag(word);
            assert!(tag_id(tag).is_some(), "tag {tag} for {word} not in tagset");
        }
    }
}
