//! Parse trees over character spans.
//!
//! Both the PCFG sampler (ground-truth derivations) and the Earley parser
//! produce this structure; the hypothesis generators in
//! [`crate::hypothesis`] consume it.

use serde::{Deserialize, Serialize};

/// A node of a parse tree. `start..end` is the character span the node
/// derives (end-exclusive); leaves of the grammar (terminal characters) are
/// not materialized as nodes — a node with no children derives its span
/// entirely via terminals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseTree {
    /// Name of the nonterminal (production LHS) at this node.
    pub rule: String,
    /// First character position covered (inclusive).
    pub start: usize,
    /// One past the last character position covered.
    pub end: usize,
    /// Child nonterminal nodes, in textual order.
    pub children: Vec<ParseTree>,
}

impl ParseTree {
    /// Number of characters this node derives.
    pub fn span_len(&self) -> usize {
        self.end - self.start
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ParseTree::node_count)
            .sum::<usize>()
    }

    /// Maximum depth (a lone root has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ParseTree::depth)
            .max()
            .unwrap_or(0)
    }

    /// Pre-order traversal visiting every node.
    pub fn visit(&self, f: &mut impl FnMut(&ParseTree, usize)) {
        self.visit_inner(f, 0);
    }

    fn visit_inner(&self, f: &mut impl FnMut(&ParseTree, usize), depth: usize) {
        f(self, depth);
        for child in &self.children {
            child.visit_inner(f, depth + 1);
        }
    }

    /// All `(start, end)` spans of nodes labelled `rule`.
    pub fn spans_of(&self, rule: &str) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        self.visit(&mut |node, _| {
            if node.rule == rule {
                spans.push((node.start, node.end));
            }
        });
        spans
    }

    /// Sorted, de-duplicated set of rule names appearing in the tree.
    pub fn rule_names(&self) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        self.visit(&mut |node, _| {
            set.insert(node.rule.clone());
        });
        set.into_iter().collect()
    }

    /// Nesting depth of `rule` at each character position: how many
    /// ancestors (including the node itself) labelled `rule` cover the
    /// position. This is the composite representation `h1` of paper Fig. 3.
    pub fn nesting_depth(&self, rule: &str, len: usize) -> Vec<f32> {
        let mut depths = vec![0.0f32; len];
        self.visit(&mut |node, _| {
            if node.rule == rule {
                for d in depths.iter_mut().take(node.end.min(len)).skip(node.start) {
                    *d += 1.0;
                }
            }
        });
        depths
    }

    /// Renders an indented textual form, for debugging and examples.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.visit(&mut |node, depth| {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} [{}..{})\n", node.rule, node.start, node.end));
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> ParseTree {
        // expr[0..5] -> term[0..1], expr[2..5](term[2..3], term[4..5])
        ParseTree {
            rule: "expr".into(),
            start: 0,
            end: 5,
            children: vec![
                ParseTree {
                    rule: "term".into(),
                    start: 0,
                    end: 1,
                    children: vec![],
                },
                ParseTree {
                    rule: "expr".into(),
                    start: 2,
                    end: 5,
                    children: vec![
                        ParseTree {
                            rule: "term".into(),
                            start: 2,
                            end: 3,
                            children: vec![],
                        },
                        ParseTree {
                            rule: "term".into(),
                            start: 4,
                            end: 5,
                            children: vec![],
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn node_count_and_depth() {
        let t = sample_tree();
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn spans_of_collects_all_matches() {
        let t = sample_tree();
        assert_eq!(t.spans_of("term"), vec![(0, 1), (2, 3), (4, 5)]);
        assert_eq!(t.spans_of("expr"), vec![(0, 5), (2, 5)]);
        assert!(t.spans_of("missing").is_empty());
    }

    #[test]
    fn rule_names_sorted_unique() {
        assert_eq!(
            sample_tree().rule_names(),
            vec!["expr".to_string(), "term".to_string()]
        );
    }

    #[test]
    fn nesting_depth_counts_overlapping_spans() {
        let t = sample_tree();
        let d = t.nesting_depth("expr", 5);
        assert_eq!(d, vec![1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn nesting_depth_respects_len_clamp() {
        let t = sample_tree();
        let d = t.nesting_depth("expr", 3);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn visit_is_preorder() {
        let t = sample_tree();
        let mut order = Vec::new();
        t.visit(&mut |node, depth| order.push((node.rule.clone(), depth)));
        assert_eq!(order[0], ("expr".to_string(), 0));
        assert_eq!(order[1], ("term".to_string(), 1));
        assert_eq!(order[2], ("expr".to_string(), 1));
    }

    #[test]
    fn pretty_contains_every_node() {
        let text = sample_tree().pretty();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("expr [0..5)"));
    }
}
