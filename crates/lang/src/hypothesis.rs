//! Hypothesis-behavior generators (paper §4.2).
//!
//! A hypothesis function maps a record to a per-symbol behavior vector.
//! This module generates such behaviors from the artifacts the paper
//! catalogues: parse trees (time-domain, signal and nesting-depth
//! representations of Fig. 3), keyword detectors, annotations, and counting
//! iterators. The engine-facing trait lives in `deepbase-core`; here are
//! the pure functions it wraps.

use crate::grammar::Grammar;
use crate::tree::ParseTree;
use serde::{Deserialize, Serialize};

/// How a parse-tree node set is rendered into a behavior vector (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeRepr {
    /// 1 for every character covered by a node of the rule (h2/h3 in the
    /// paper's figure).
    Time,
    /// 1 only at the first and last character of each node's span (h4/h5).
    Signal,
    /// Nesting depth of the rule at each character (the composite h1).
    Depth,
}

impl TreeRepr {
    /// Short name used in hypothesis identifiers.
    pub fn tag(&self) -> &'static str {
        match self {
            TreeRepr::Time => "time",
            TreeRepr::Signal => "signal",
            TreeRepr::Depth => "depth",
        }
    }
}

/// A parse-derived hypothesis: one grammar rule under one representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TreeHypothesis {
    /// Rule (nonterminal) name whose spans drive the behavior.
    pub rule: String,
    /// Rendering of spans into behaviors.
    pub repr: TreeRepr,
}

impl TreeHypothesis {
    /// Stable identifier, e.g. `where_clause:time`.
    pub fn name(&self) -> String {
        format!("{}:{}", self.rule, self.repr.tag())
    }

    /// Evaluates the hypothesis over a parse tree for a string of `len`
    /// characters. The output always has exactly `len` entries.
    pub fn behavior(&self, tree: &ParseTree, len: usize) -> Vec<f32> {
        match self.repr {
            TreeRepr::Time => {
                let mut out = vec![0.0f32; len];
                for (start, end) in tree.spans_of(&self.rule) {
                    for v in out.iter_mut().take(end.min(len)).skip(start) {
                        *v = 1.0;
                    }
                }
                out
            }
            TreeRepr::Signal => {
                let mut out = vec![0.0f32; len];
                for (start, end) in tree.spans_of(&self.rule) {
                    if start < len && end > start {
                        out[start] = 1.0;
                        if end - 1 < len {
                            out[end - 1] = 1.0;
                        }
                    }
                }
                out
            }
            TreeRepr::Depth => tree.nesting_depth(&self.rule, len),
        }
    }
}

/// Generates the paper's default hypothesis library for a grammar: one
/// hypothesis per nonterminal per requested representation (§6.2 builds
/// two per nonterminal — time and signal — giving 190 hypotheses for the
/// 95-nonterminal grammar).
pub fn grammar_hypotheses(grammar: &Grammar, reprs: &[TreeRepr]) -> Vec<TreeHypothesis> {
    let mut out = Vec::with_capacity(grammar.nonterminal_names().len() * reprs.len());
    for name in grammar.nonterminal_names() {
        for &repr in reprs {
            out.push(TreeHypothesis {
                rule: name.clone(),
                repr,
            });
        }
    }
    out
}

/// Keyword detector: 1 for every character inside an occurrence of
/// `keyword` in `text` (the paper's running "detects the SELECT keyword"
/// example). Matches are case-sensitive and may not overlap.
pub fn keyword_behavior(text: &str, keyword: &str) -> Vec<f32> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = vec![0.0f32; chars.len()];
    if keyword.is_empty() {
        return out;
    }
    let kw: Vec<char> = keyword.chars().collect();
    let mut i = 0;
    while i + kw.len() <= chars.len() {
        if chars[i..i + kw.len()] == kw[..] {
            for v in out.iter_mut().skip(i).take(kw.len()) {
                *v = 1.0;
            }
            i += kw.len();
        } else {
            i += 1;
        }
    }
    out
}

/// Character-class detector: 1 where the predicate holds. Used for
/// low-level hypotheses like "whitespace", "period", "digit".
pub fn char_class_behavior(text: &str, pred: impl Fn(char) -> bool) -> Vec<f32> {
    text.chars()
        .map(|c| if pred(c) { 1.0 } else { 0.0 })
        .collect()
}

/// Position counter: the 0-based index of each character, the paper's
/// "model counts the number of characters" hypothesis (§3: behaviors need
/// not be binary).
pub fn position_counter_behavior(text: &str) -> Vec<f32> {
    (0..text.chars().count()).map(|i| i as f32).collect()
}

/// Annotation behavior: 1 over each annotated span (the bounding-box /
/// multi-word-annotation adapter of §4.2). Spans are `(start, end)` in
/// characters, end-exclusive.
pub fn annotation_behavior(len: usize, spans: &[(usize, usize)]) -> Vec<f32> {
    let mut out = vec![0.0f32; len];
    for &(start, end) in spans {
        for v in out.iter_mut().take(end.min(len)).skip(start) {
            *v = 1.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;

    fn tree() -> ParseTree {
        // paren[0..6] containing paren[1..5] — "((xx))"-style nesting.
        ParseTree {
            rule: "paren".into(),
            start: 0,
            end: 6,
            children: vec![ParseTree {
                rule: "paren".into(),
                start: 1,
                end: 5,
                children: vec![ParseTree {
                    rule: "atom".into(),
                    start: 2,
                    end: 4,
                    children: vec![],
                }],
            }],
        }
    }

    #[test]
    fn time_representation_covers_spans() {
        let h = TreeHypothesis {
            rule: "atom".into(),
            repr: TreeRepr::Time,
        };
        assert_eq!(h.behavior(&tree(), 6), vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn signal_representation_marks_endpoints() {
        let h = TreeHypothesis {
            rule: "atom".into(),
            repr: TreeRepr::Signal,
        };
        assert_eq!(h.behavior(&tree(), 6), vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let h2 = TreeHypothesis {
            rule: "paren".into(),
            repr: TreeRepr::Signal,
        };
        // Outer span marks 0 and 5; inner marks 1 and 4.
        assert_eq!(h2.behavior(&tree(), 6), vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn depth_representation_counts_nesting() {
        let h = TreeHypothesis {
            rule: "paren".into(),
            repr: TreeRepr::Depth,
        };
        assert_eq!(h.behavior(&tree(), 6), vec![1.0, 2.0, 2.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    fn behavior_length_always_matches_len() {
        for repr in [TreeRepr::Time, TreeRepr::Signal, TreeRepr::Depth] {
            let h = TreeHypothesis {
                rule: "paren".into(),
                repr,
            };
            for len in [0usize, 3, 6, 10] {
                assert_eq!(h.behavior(&tree(), len).len(), len);
            }
        }
    }

    #[test]
    fn absent_rule_gives_zero_vector() {
        let h = TreeHypothesis {
            rule: "missing".into(),
            repr: TreeRepr::Time,
        };
        assert!(h.behavior(&tree(), 6).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn grammar_hypotheses_two_per_nonterminal() {
        let g = Grammar::from_spec("a -> b ; b -> 'x' ;").unwrap();
        let hyps = grammar_hypotheses(&g, &[TreeRepr::Time, TreeRepr::Signal]);
        assert_eq!(hyps.len(), 4);
        let names: Vec<String> = hyps.iter().map(|h| h.name()).collect();
        assert!(names.contains(&"a:time".to_string()));
        assert!(names.contains(&"b:signal".to_string()));
    }

    #[test]
    fn keyword_behavior_marks_occurrences() {
        let b = keyword_behavior("SELECT 1 FROM a", "SELECT");
        assert_eq!(&b[..6], &[1.0; 6]);
        assert!(b[6..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn keyword_behavior_multiple_and_adjacent() {
        let b = keyword_behavior("abab", "ab");
        assert_eq!(b, vec![1.0, 1.0, 1.0, 1.0]);
        let b2 = keyword_behavior("aaa", "aa");
        // Non-overlapping matching: first two chars only.
        assert_eq!(b2, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn keyword_behavior_empty_keyword_is_zero() {
        assert!(keyword_behavior("abc", "").iter().all(|&v| v == 0.0));
    }

    #[test]
    fn char_class_and_counter() {
        assert_eq!(
            char_class_behavior("a b", char::is_whitespace),
            vec![0.0, 1.0, 0.0]
        );
        assert_eq!(position_counter_behavior("abcd"), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn annotation_behavior_clamps_to_len() {
        assert_eq!(
            annotation_behavior(4, &[(1, 3), (3, 99)]),
            vec![0.0, 1.0, 1.0, 1.0]
        );
    }
}
