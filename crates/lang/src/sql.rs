//! The synthetic SQL grammar of the paper's scalability benchmark (§6.1).
//!
//! The paper samples SQL queries from a PCFG, choosing grammar subsets of
//! 95–171 production rules to vary language complexity and hypothesis
//! count. Rule count is controlled here by the number of table/column
//! alternatives and by optional clauses (ORDER BY / LIMIT / GROUP BY),
//! mirroring how the paper scales its grammar.

use crate::grammar::Grammar;

/// Knobs controlling the generated grammar's size and complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqlGrammarConfig {
    /// Number of distinct table-name alternatives (`table_0`…).
    pub tables: usize,
    /// Number of distinct column-name alternatives (`col_00`…).
    pub columns: usize,
    /// Include `ORDER BY` clause rules.
    pub with_order: bool,
    /// Include `LIMIT` clause rules.
    pub with_limit: bool,
    /// Include `GROUP BY` clause rules.
    pub with_group: bool,
}

impl Default for SqlGrammarConfig {
    fn default() -> Self {
        // The paper's default setup reports 142 grammar rules.
        SqlGrammarConfig {
            tables: 10,
            columns: 70,
            with_order: true,
            with_limit: true,
            with_group: false,
        }
    }
}

impl SqlGrammarConfig {
    /// Small grammar (~95 rules, the paper's lower bound).
    pub fn small() -> Self {
        SqlGrammarConfig {
            tables: 6,
            columns: 30,
            with_order: false,
            with_limit: false,
            with_group: false,
        }
    }

    /// Default grammar (~142 rules, the paper's default).
    pub fn medium() -> Self {
        SqlGrammarConfig::default()
    }

    /// Large grammar (~171 rules, the paper's upper bound).
    pub fn large() -> Self {
        SqlGrammarConfig {
            tables: 16,
            columns: 90,
            with_order: true,
            with_limit: true,
            with_group: true,
        }
    }
}

/// Builds the grammar spec text for a configuration. Exposed so tests and
/// docs can display the grammar; use [`sql_grammar`] for the parsed form.
pub fn sql_grammar_spec(config: &SqlGrammarConfig) -> String {
    let mut spec = String::new();
    spec.push_str("query -> select_stmt ;\n");

    let mut tail = String::new();
    tail.push_str(" opt_where");
    if config.with_group {
        tail.push_str(" opt_group");
    }
    if config.with_order {
        tail.push_str(" opt_order");
    }
    if config.with_limit {
        tail.push_str(" opt_limit");
    }
    spec.push_str(&format!(
        "select_stmt -> select_kw ' ' select_list ' ' from_kw ' ' table_list{tail} ;\n"
    ));
    spec.push_str("select_kw -> 'SELECT' ;\n");
    spec.push_str("from_kw -> 'FROM' ;\n");
    spec.push_str("select_list -> {3.0} column_ref | column_ref ',' ' ' select_list ;\n");
    spec.push_str("column_ref -> {2.0} qualified_col | column_name ;\n");
    spec.push_str("qualified_col -> table_name '.' column_name ;\n");
    spec.push_str("table_list -> {3.0} table_name | table_name ',' ' ' table_list ;\n");
    spec.push_str("opt_where -> {2.0} | ' ' where_kw ' ' predicate ;\n");
    spec.push_str("where_kw -> 'WHERE' ;\n");
    spec.push_str(
        "predicate -> {3.0} comparison | comparison ' ' and_kw ' ' predicate | comparison ' ' or_kw ' ' predicate ;\n",
    );
    spec.push_str("and_kw -> 'AND' ;\n");
    spec.push_str("or_kw -> 'OR' ;\n");
    spec.push_str("comparison -> column_ref comp_op value ;\n");
    spec.push_str("comp_op -> ' = ' | ' < ' | ' > ' | ' <= ' | ' >= ' | ' <> ' ;\n");
    spec.push_str("value -> {2.0} number | string_lit ;\n");
    spec.push_str("number -> {3.0} digit | digit number ;\n");
    spec.push_str("digit -> '0' | '1' | '2' | '3' | '4' | '5' | '6' | '7' | '8' | '9' ;\n");
    spec.push_str("string_lit -> quote word quote ;\n");
    spec.push_str("quote -> '\\'' ;\n");
    spec.push_str("word -> {3.0} letter | letter word ;\n");
    spec.push_str("letter -> 'a' | 'b' | 'c' | 'd' | 'e' | 'f' | 'g' | 'h' ;\n");

    if config.with_group {
        spec.push_str("opt_group -> {2.0} | ' ' group_kw ' ' column_ref ;\n");
        spec.push_str("group_kw -> 'GROUP BY' ;\n");
    }
    if config.with_order {
        spec.push_str("opt_order -> {2.0} | ' ' order_kw ' ' ordering_term ;\n");
        spec.push_str("order_kw -> 'ORDER BY' ;\n");
        spec.push_str("ordering_term -> column_ref direction ;\n");
        spec.push_str("direction -> | ' ASC' | ' DESC' ;\n");
    }
    if config.with_limit {
        spec.push_str("opt_limit -> {2.0} | ' ' limit_kw ' ' number ;\n");
        spec.push_str("limit_kw -> 'LIMIT' ;\n");
    }

    let table_alts: Vec<String> = (0..config.tables.max(1))
        .map(|i| format!("'table_{i}'"))
        .collect();
    spec.push_str(&format!("table_name -> {} ;\n", table_alts.join(" | ")));
    let col_alts: Vec<String> = (0..config.columns.max(1))
        .map(|i| format!("'col_{i:02}'"))
        .collect();
    spec.push_str(&format!("column_name -> {} ;\n", col_alts.join(" | ")));

    spec
}

/// Builds the SQL grammar for a configuration.
pub fn sql_grammar(config: &SqlGrammarConfig) -> Grammar {
    Grammar::from_spec(&sql_grammar_spec(config)).expect("builtin SQL grammar must parse")
}

/// The SQL keywords used by keyword hypotheses and the Fig. 1 walkthrough.
pub const SQL_KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "ORDER BY", "GROUP BY", "LIMIT", "ASC", "DESC",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earley::EarleyParser;
    use deepbase_tensor::init::seeded_rng;

    #[test]
    fn preset_rule_counts_span_papers_range() {
        let small = sql_grammar(&SqlGrammarConfig::small()).rule_count();
        let medium = sql_grammar(&SqlGrammarConfig::medium()).rule_count();
        let large = sql_grammar(&SqlGrammarConfig::large()).rule_count();
        assert!(small < medium && medium < large, "{small} {medium} {large}");
        // The paper varies 95–171 rules; presets must land in that band.
        assert!((85..=110).contains(&small), "small {small}");
        assert!((130..=155).contains(&medium), "medium {medium}");
        assert!((160..=185).contains(&large), "large {large}");
    }

    #[test]
    fn samples_start_with_select() {
        let g = sql_grammar(&SqlGrammarConfig::medium());
        let mut rng = seeded_rng(7);
        for _ in 0..20 {
            let (q, _) = g.sample(&mut rng, 12);
            assert!(q.starts_with("SELECT "), "query {q:?}");
            assert!(q.contains(" FROM "), "query {q:?}");
        }
    }

    #[test]
    fn sampled_queries_reparse() {
        let g = sql_grammar(&SqlGrammarConfig::small());
        let parser = EarleyParser::new(&g);
        let mut rng = seeded_rng(13);
        for _ in 0..10 {
            let (q, _) = g.sample(&mut rng, 10);
            assert!(parser.recognizes(&q), "sampled query must reparse: {q}");
        }
    }

    #[test]
    fn ground_truth_tree_contains_clause_rules() {
        let g = sql_grammar(&SqlGrammarConfig::medium());
        let mut rng = seeded_rng(99);
        // Sample until a query has a WHERE clause.
        for _ in 0..200 {
            let (q, tree) = g.sample(&mut rng, 14);
            if q.contains("WHERE") {
                assert!(!tree.spans_of("where_kw").is_empty());
                assert!(!tree.spans_of("predicate").is_empty());
                return;
            }
        }
        panic!("no WHERE query sampled in 200 tries");
    }

    #[test]
    fn alphabet_is_stable_across_configs() {
        // Extending tables/columns must not change the character alphabet —
        // the char-level model's input layer depends on it.
        let a1 = sql_grammar(&SqlGrammarConfig::small()).alphabet();
        let a2 = sql_grammar(&SqlGrammarConfig::large()).alphabet();
        for c in &a1 {
            assert!(a2.contains(c));
        }
    }

    #[test]
    fn table_and_column_names_parse_digits() {
        // table_10+ style names need two digit chars; ensure the grammar's
        // terminals include what its names use.
        let g = sql_grammar(&SqlGrammarConfig {
            tables: 12,
            ..Default::default()
        });
        let mut rng = seeded_rng(3);
        let (q, _) = g.sample(&mut rng, 10);
        assert!(q.contains("table_"));
    }
}
