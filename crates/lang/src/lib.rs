//! # deepbase-lang
//!
//! Language substrate for the DeepBase reproduction: everything the paper
//! borrows from NLTK and Stanford CoreNLP, implemented from scratch.
//!
//! * [`grammar`] — probabilistic context-free grammars with a text DSL and
//!   weighted sampling (the paper's synthetic-SQL generator).
//! * [`earley`] — Earley chart parser over character terminals (the NLTK
//!   chart-parser replacement, including epsilon productions).
//! * [`tree`] — parse trees over character spans.
//! * [`hypothesis`] — hypothesis-behavior generators: parse-tree
//!   time/signal/depth representations (paper Fig. 3), keyword and
//!   char-class detectors, annotations, counters.
//! * [`vocab`] — character vocabularies, left-padded sliding windows
//!   (paper §3, §6.2) and behavior projection onto windows.
//! * [`sql`] — the scalability benchmark's SQL grammar with 95–171 rule
//!   presets (§6.1).
//! * [`paren`] — the Appendix C nested-parentheses grammar and its
//!   ground-truth hypotheses.
//! * [`fsm`] — DFA-based hypotheses with a KMP keyword compiler (§4.2).
//! * [`pos`] — the Penn Treebank tagset and a rule-based POS tagger (the
//!   CoreNLP stand-in for §6.3).
//! * [`corpus`] — synthetic English→German parallel corpus with
//!   ground-truth tags (the WMT15 stand-in for §6.3).

pub mod corpus;
pub mod earley;
pub mod fsm;
pub mod grammar;
pub mod hypothesis;
pub mod paren;
pub mod pos;
pub mod sql;
pub mod tree;
pub mod vocab;

pub use earley::EarleyParser;
pub use grammar::{Grammar, GrammarError, Production, Sym};
pub use hypothesis::{grammar_hypotheses, TreeHypothesis, TreeRepr};
pub use tree::ParseTree;
pub use vocab::{sliding_windows, Vocab, Window, PAD};
