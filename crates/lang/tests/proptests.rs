//! Property-based tests for the language substrate: grammar/parser
//! round-trips, hypothesis-vector invariants, windowing laws, and tagger
//! totality.

use deepbase_lang::hypothesis::{keyword_behavior, TreeHypothesis};
use deepbase_lang::pos::{tag_id, PosTagger};
use deepbase_lang::vocab::{project_behavior, sliding_windows, Vocab};
use deepbase_lang::{EarleyParser, Grammar, TreeRepr};
use deepbase_tensor::init::seeded_rng;
use proptest::prelude::*;

fn arith_grammar() -> Grammar {
    Grammar::from_spec(
        "expr -> term | expr '+' term ; term -> digit | '(' expr ')' ; digit -> '1' | '2' ;",
    )
    .unwrap()
}

proptest! {
    #[test]
    fn sampled_strings_always_reparse(seed in 0u64..500) {
        let g = arith_grammar();
        let mut rng = seeded_rng(seed);
        let (text, tree) = g.sample(&mut rng, 8);
        let parser = EarleyParser::new(&g);
        prop_assert!(parser.recognizes(&text), "sample must reparse: {text}");
        // The ground-truth tree spans the whole string.
        prop_assert_eq!(tree.start, 0);
        prop_assert_eq!(tree.end, text.chars().count());
    }

    #[test]
    fn sampled_tree_spans_are_nested(seed in 0u64..200) {
        let g = deepbase_lang::paren::paren_grammar();
        let mut rng = seeded_rng(seed);
        let (_, tree) = g.sample(&mut rng, 10);
        let mut stack = vec![&tree];
        while let Some(node) = stack.pop() {
            let mut cursor = node.start;
            for child in &node.children {
                prop_assert!(child.start >= cursor, "children in order");
                prop_assert!(child.end <= node.end, "child within parent");
                cursor = child.end;
                stack.push(child);
            }
        }
    }

    #[test]
    fn tree_hypothesis_length_invariant(seed in 0u64..200, len in 0usize..40) {
        let g = arith_grammar();
        let mut rng = seeded_rng(seed);
        let (_, tree) = g.sample(&mut rng, 6);
        for repr in [TreeRepr::Time, TreeRepr::Signal, TreeRepr::Depth] {
            let h = TreeHypothesis { rule: "term".into(), repr };
            prop_assert_eq!(h.behavior(&tree, len).len(), len);
        }
    }

    #[test]
    fn time_representation_dominates_signal(seed in 0u64..200) {
        // Signal marks a subset of the positions time marks.
        let g = arith_grammar();
        let mut rng = seeded_rng(seed);
        let (text, tree) = g.sample(&mut rng, 6);
        let len = text.chars().count();
        let time = TreeHypothesis { rule: "expr".into(), repr: TreeRepr::Time };
        let signal = TreeHypothesis { rule: "expr".into(), repr: TreeRepr::Signal };
        let t = time.behavior(&tree, len);
        let s = signal.behavior(&tree, len);
        for (tv, sv) in t.iter().zip(s.iter()) {
            prop_assert!(sv <= tv, "signal ⊆ time");
        }
    }

    #[test]
    fn keyword_behavior_counts_match_occurrences(
        body in proptest::collection::vec(prop_oneof![Just('a'), Just('b'), Just('x')], 0..30),
    ) {
        let text: String = body.into_iter().collect();
        let b = keyword_behavior(&text, "ab");
        let marked = b.iter().filter(|&&v| v > 0.5).count();
        // Non-overlapping "ab" matches: each marks exactly 2 chars.
        let matches = text.matches("ab").count();
        prop_assert_eq!(marked, 2 * matches);
    }

    #[test]
    fn windows_partition_positions(
        len in 1usize..60,
        ns in 1usize..20,
        stride in 1usize..10,
    ) {
        let source: String = (0..len).map(|i| char::from(b'a' + (i % 26) as u8)).collect();
        let windows = sliding_windows(&source, ns, stride);
        prop_assert!(!windows.is_empty());
        for w in &windows {
            prop_assert_eq!(w.text.chars().count(), ns);
            prop_assert!(w.visible <= ns);
            prop_assert!(w.offset + w.visible <= len);
        }
        // The final window reaches the end of the source.
        let last = windows.last().unwrap();
        prop_assert_eq!(last.offset + last.visible, len);
        prop_assert!(last.target.is_none());
    }

    #[test]
    fn projection_preserves_visible_values(
        len in 4usize..40,
        ns in 2usize..12,
        stride in 1usize..6,
    ) {
        let source: String = (0..len).map(|i| char::from(b'a' + (i % 26) as u8)).collect();
        let behavior: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
        for w in sliding_windows(&source, ns, stride) {
            let projected = project_behavior(&behavior, &w, ns);
            let pad = ns - w.visible;
            for i in 0..w.visible {
                prop_assert_eq!(projected[pad + i], behavior[w.offset + i]);
            }
            for v in projected.iter().take(pad) {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn vocab_roundtrip_known_chars(text in "[a-d]{0,20}") {
        let v = Vocab::from_alphabet(&['a', 'b', 'c', 'd']);
        prop_assert_eq!(v.decode(&v.encode(&text)), text);
    }

    #[test]
    fn tagger_is_total_and_emits_penn_tags(word in "[A-Za-z]{1,12}") {
        let tag = PosTagger::new().tag(&word);
        prop_assert!(tag_id(tag).is_some(), "{word} -> {tag} not in tagset");
    }

    #[test]
    fn nesting_level_never_negative(seed in 0u64..200) {
        let g = deepbase_lang::paren::paren_grammar();
        let mut rng = seeded_rng(seed);
        let (text, _) = g.sample(&mut rng, 10);
        for level in deepbase_lang::paren::nesting_level_behavior(&text) {
            prop_assert!(level >= 0.0);
        }
    }
}
