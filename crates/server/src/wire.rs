//! The length-prefixed binary wire protocol of the inspection server.
//!
//! Every frame is a `u32` big-endian payload length followed by the
//! payload; the payload's first byte is the opcode. The full grammar is
//! documented in the core crate's "Serving" section (`deepbase` lib
//! docs). Design constraints:
//!
//! * **Dependency-free** — hand-rolled big-endian codec over `std::io`,
//!   no serialization framework.
//! * **Lossless** — [`Table`] `Float` cells travel as raw
//!   [`f32::to_bits`], so a decoded table is bit-identical
//!   (`PartialEq`-equal) to the encoded one, NaN payloads included; a
//!   query answered over TCP equals the in-process answer exactly.
//! * **Typed errors** — error frames carry the stable
//!   [`DniError::code`] plus the display text and are reconstructed
//!   with [`DniError::from_wire`]; code [`PROTOCOL_ERROR`] (0) is
//!   reserved for malformed-frame failures that have no `DniError`.

use deepbase::engine::{CancelToken, RunBudget};
use deepbase::DniError;
use deepbase_relational::{ColType, Schema, Table, Value};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Default cap on one frame's payload (guards against a garbage length
/// prefix allocating unbounded memory).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Reserved error-frame code for protocol-level failures (malformed
/// frame, unknown opcode) — everything a [`DniError`] cannot represent.
/// All real engine errors carry their non-zero [`DniError::code`].
pub const PROTOCOL_ERROR: u16 = 0;

// Request opcodes.
const OP_INSPECT: u8 = 0x01;
const OP_EXPLAIN: u8 = 0x02;
const OP_APPEND: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_BATCH: u8 = 0x06;
const OP_VIEW_CREATE: u8 = 0x07;
const OP_VIEW_READ: u8 = 0x08;
const OP_VIEW_REFRESH: u8 = 0x09;
const OP_VIEW_DROP: u8 = 0x0A;
const OP_VIEW_LIST: u8 = 0x0B;

// Response opcodes.
const OP_RESULT: u8 = 0x81;
const OP_TEXT: u8 = 0x82;
const OP_ERROR: u8 = 0x83;
const OP_OK: u8 = 0x84;
const OP_BATCH_RESULT: u8 = 0x85;

/// Completion-status byte of a RESULT/BATCH frame.
pub const STATUS_CONVERGED: u8 = 0;
/// The run budget's deadline expired mid-stream.
pub const STATUS_DEADLINE: u8 = 1;
/// The run was cancelled (server drain or explicit token).
pub const STATUS_CANCELLED: u8 = 2;
/// A row/block cap of the run budget was reached.
pub const STATUS_BUDGET: u8 = 3;
/// A status this protocol revision does not know (newer server).
pub const STATUS_UNKNOWN: u8 = 255;

/// Human-readable name of a completion-status byte.
pub fn status_name(status: u8) -> &'static str {
    match status {
        STATUS_CONVERGED => "converged",
        STATUS_DEADLINE => "deadline-exceeded",
        STATUS_CANCELLED => "cancelled",
        STATUS_BUDGET => "budget-exhausted",
        _ => "unknown",
    }
}

/// A malformed frame (bad opcode, truncated payload, oversized length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Per-request run budget as carried on the wire; `0` means unset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireBudget {
    /// Wall-clock allowance in milliseconds (0 = unlimited).
    pub deadline_ms: u64,
    /// Cap on records read per shared pass (0 = unlimited).
    pub max_records: u64,
    /// Cap on blocks processed per shared pass (0 = unlimited).
    pub max_blocks: u64,
}

impl WireBudget {
    /// Maps the wire fields onto an engine [`RunBudget`], attaching the
    /// server's drain token so shutdown cancels in-flight requests.
    pub fn to_run_budget(self, cancel: Option<CancelToken>) -> RunBudget {
        RunBudget {
            deadline: (self.deadline_ms > 0).then(|| Duration::from_millis(self.deadline_ms)),
            cancel,
            max_records: (self.max_records > 0).then_some(self.max_records as usize),
            max_blocks: (self.max_blocks > 0).then_some(self.max_blocks as usize),
        }
    }
}

/// One dataset record as carried by an APPEND frame. The server rebuilds
/// it with `Record::standalone`, so client- and server-side record
/// construction agree byte for byte (and therefore fingerprint for
/// fingerprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRecord {
    /// Record id.
    pub id: u64,
    /// Symbol stream.
    pub symbols: Vec<u32>,
    /// Source text.
    pub text: String,
}

/// Plan-pipeline counters of a BATCH response (mirrors the useful subset
/// of `deepbase::plan::PlanStats` so clients can assert plan behavior —
/// admission waves, cache hits — without an in-process session).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WirePlanStats {
    /// Statements served from the session plan cache.
    pub plan_cache_hits: u64,
    /// Statements parsed and bound.
    pub plan_cache_misses: u64,
    /// Work items answered from the score cache.
    pub score_cache_hits: u64,
    /// Shared groups split into waves by admission control.
    pub admission_splits: u64,
    /// Waves beyond the first (queued passes).
    pub admission_queued: u64,
    /// Unit columns charged to the scan budget (store hits).
    pub scan_charged_columns: u64,
    /// Waves that acquired a process-wide admission permit.
    pub global_waves: u64,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute one INSPECT statement under a per-request budget.
    Inspect {
        /// Statement text.
        statement: String,
        /// Per-request budget (zeros = unlimited).
        budget: WireBudget,
    },
    /// Render the physical plan tree without executing.
    Explain {
        /// Statement text.
        statement: String,
    },
    /// Append records to a registered dataset as one sealed segment.
    Append {
        /// Dataset name.
        dataset: String,
        /// Records to append.
        records: Vec<WireRecord>,
    },
    /// Server/scheduler counters as text.
    Stats,
    /// Drain in-flight batches, compact the store, close the listener.
    Shutdown,
    /// Execute several statements as one batch (shared extraction,
    /// per-query error routing).
    Batch {
        /// Statement texts.
        statements: Vec<String>,
        /// Per-request budget (zeros = unlimited).
        budget: WireBudget,
    },
    /// Materialize one INSPECT statement as a named durable view
    /// (answered with OK carrying 0).
    ViewCreate {
        /// View name.
        name: String,
        /// Statement text.
        statement: String,
    },
    /// Replay a fresh view's stored frame — zero extraction, zero store
    /// scans (answered with a RESULT frame; stale views answer with the
    /// typed `ViewStale` error frame).
    ViewRead {
        /// View name.
        name: String,
    },
    /// Bring a view up to date (answered with OK: [`REFRESH_NOOP`],
    /// a new-segment count, or [`REFRESH_REBUILT`]).
    ViewRefresh {
        /// View name.
        name: String,
    },
    /// Delete a view (answered with OK carrying 1 if one existed).
    ViewDrop {
        /// View name.
        name: String,
    },
    /// List every view with its freshness (answered with a TEXT frame,
    /// one `name\tfreshness\tstatement` line per view).
    ViewList,
}

/// OK value of a VIEW_REFRESH that found the view already fresh.
pub const REFRESH_NOOP: u64 = 0;
/// OK value of a VIEW_REFRESH that rebuilt the view from scratch
/// (distinguished from incremental folds, which carry the new-segment
/// count — always small and never near this sentinel).
pub const REFRESH_REBUILT: u64 = u64::MAX;

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One statement's result table.
    Result {
        /// Completion-status byte (`STATUS_*`).
        status: u8,
        /// Records read by the batch.
        rows_read: u64,
        /// The result table (bit-identical to the in-process answer).
        table: Table,
    },
    /// Text payload (EXPLAIN tree, STATS rendering).
    Text(String),
    /// Typed error: stable code + display text.
    Error {
        /// [`DniError::code`], or [`PROTOCOL_ERROR`].
        code: u16,
        /// Display rendering (parsed back by [`DniError::from_wire`]).
        message: String,
    },
    /// Acknowledgement carrying a count (APPEND records, SHUTDOWN 0).
    Done(u64),
    /// A batch's per-query results plus plan counters.
    Batch {
        /// Completion-status byte (`STATUS_*`), merged across passes.
        status: u8,
        /// Records read by the batch.
        rows_read: u64,
        /// Plan-pipeline counters.
        plan: WirePlanStats,
        /// Per statement: the table, or `(code, message)` of its error.
        results: Vec<Result<Table, (u16, String)>>,
    },
}

// ---------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str16(buf: &mut Vec<u8>, s: &str) {
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

fn put_str32(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked big-endian cursor over a frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                WireError(format!(
                    "truncated frame: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn str_n(&mut self, n: usize) -> Result<String, WireError> {
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError("invalid UTF-8".into()))
    }

    fn str16(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        self.str_n(n)
    }

    fn str32(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        self.str_n(n)
    }

    fn rest(&mut self) -> Result<String, WireError> {
        self.str_n(self.buf.len() - self.pos)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing bytes after frame",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

fn frame_len(hdr: [u8; 4], max_bytes: u32) -> io::Result<usize> {
    let len = u32::from_be_bytes(hdr);
    if len > max_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes}-byte cap"),
        ));
    }
    Ok(len as usize)
}

/// Reads one full frame, blocking until it arrives. `UnexpectedEof`
/// means the peer closed the connection.
pub fn read_frame(r: &mut impl Read, max_bytes: u32) -> io::Result<Vec<u8>> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let mut payload = vec![0u8; frame_len(hdr, max_bytes)?];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Mid-frame read timeouts tolerated before a stalled peer is dropped
/// (each waits one socket read-timeout tick).
const MID_FRAME_STALL_TICKS: u32 = 200;

/// Reads one frame from a socket with a read timeout installed.
///
/// * `Ok(Some(payload))` — a full frame arrived.
/// * `Ok(None)` — the timeout fired before *any* byte of a frame: an
///   idle tick. The caller polls its shutdown flag / idle budget and
///   calls again; the stream is positioned exactly at a frame boundary.
/// * `Err(_)` — the peer disconnected (`UnexpectedEof`), stalled
///   mid-frame past the tolerance, or a real IO error occurred.
///
/// Once the first byte of a frame is seen, timeouts no longer yield
/// `Ok(None)` — returning early mid-frame would desynchronize the
/// stream — the read keeps retrying up to [`MID_FRAME_STALL_TICKS`].
pub fn read_frame_polled(r: &mut impl Read, max_bytes: u32) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    if read_full(r, &mut hdr, true)?.is_none() {
        return Ok(None);
    }
    let mut payload = vec![0u8; frame_len(hdr, max_bytes)?];
    read_full(r, &mut payload, false)?;
    Ok(Some(payload))
}

fn read_full(r: &mut impl Read, buf: &mut [u8], idle_ok_at_start: bool) -> io::Result<Option<()>> {
    let mut filled = 0;
    let mut stalls = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed",
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && idle_ok_at_start {
                    return Ok(None);
                }
                stalls += 1;
                if stalls > MID_FRAME_STALL_TICKS {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(()))
}

// ---------------------------------------------------------------------
// Table codec
// ---------------------------------------------------------------------

fn encode_table(buf: &mut Vec<u8>, table: &Table) {
    let schema = table.schema();
    put_u16(buf, schema.arity() as u16);
    for (i, name) in schema.names().iter().enumerate() {
        buf.push(match schema.col_type(i) {
            ColType::Int => 0,
            ColType::Float => 1,
            ColType::Str => 2,
        });
        put_str16(buf, name);
    }
    put_u32(buf, table.len() as u32);
    for row in 0..table.len() {
        for col in 0..schema.arity() {
            match table.column_at(col).value(row) {
                Value::Int(i) => buf.extend_from_slice(&i.to_be_bytes()),
                // Raw bit pattern: bit-identical round trip, NaNs and all.
                Value::Float(f) => put_u32(buf, f.to_bits()),
                Value::Str(s) => put_str32(buf, &s),
            }
        }
    }
}

fn decode_table(cur: &mut Cur) -> Result<Table, WireError> {
    let ncols = cur.u16()? as usize;
    let mut cols: Vec<(String, ColType)> = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let ty = match cur.u8()? {
            0 => ColType::Int,
            1 => ColType::Float,
            2 => ColType::Str,
            t => return Err(WireError(format!("unknown column type tag {t}"))),
        };
        let name = cur.str16()?;
        cols.push((name, ty));
    }
    let schema = Schema::new(cols.iter().map(|(n, t)| (n.as_str(), *t)).collect());
    let mut table = Table::new(schema);
    let nrows = cur.u32()?;
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for (_, ty) in &cols {
            row.push(match ty {
                ColType::Int => Value::Int(cur.i64()?),
                ColType::Float => Value::Float(f32::from_bits(cur.u32()?)),
                ColType::Str => Value::Str(cur.str32()?),
            });
        }
        table
            .push_row(row)
            .map_err(|e| WireError(format!("table decode: {e}")))?;
    }
    Ok(table)
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

fn put_budget(buf: &mut Vec<u8>, budget: &WireBudget) {
    put_u64(buf, budget.deadline_ms);
    put_u64(buf, budget.max_records);
    put_u64(buf, budget.max_blocks);
}

fn get_budget(cur: &mut Cur) -> Result<WireBudget, WireError> {
    Ok(WireBudget {
        deadline_ms: cur.u64()?,
        max_records: cur.u64()?,
        max_blocks: cur.u64()?,
    })
}

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Inspect { statement, budget } => {
            buf.push(OP_INSPECT);
            put_budget(&mut buf, budget);
            buf.extend_from_slice(statement.as_bytes());
        }
        Request::Explain { statement } => {
            buf.push(OP_EXPLAIN);
            buf.extend_from_slice(statement.as_bytes());
        }
        Request::Append { dataset, records } => {
            buf.push(OP_APPEND);
            put_str16(&mut buf, dataset);
            put_u32(&mut buf, records.len() as u32);
            for r in records {
                put_u64(&mut buf, r.id);
                put_u32(&mut buf, r.symbols.len() as u32);
                for &s in &r.symbols {
                    put_u32(&mut buf, s);
                }
                put_str32(&mut buf, &r.text);
            }
        }
        Request::Stats => buf.push(OP_STATS),
        Request::Shutdown => buf.push(OP_SHUTDOWN),
        Request::Batch { statements, budget } => {
            buf.push(OP_BATCH);
            put_budget(&mut buf, budget);
            put_u16(&mut buf, statements.len() as u16);
            for s in statements {
                put_str32(&mut buf, s);
            }
        }
        Request::ViewCreate { name, statement } => {
            buf.push(OP_VIEW_CREATE);
            put_str16(&mut buf, name);
            buf.extend_from_slice(statement.as_bytes());
        }
        Request::ViewRead { name } => {
            buf.push(OP_VIEW_READ);
            buf.extend_from_slice(name.as_bytes());
        }
        Request::ViewRefresh { name } => {
            buf.push(OP_VIEW_REFRESH);
            buf.extend_from_slice(name.as_bytes());
        }
        Request::ViewDrop { name } => {
            buf.push(OP_VIEW_DROP);
            buf.extend_from_slice(name.as_bytes());
        }
        Request::ViewList => buf.push(OP_VIEW_LIST),
    }
    buf
}

/// Decodes a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut cur = Cur::new(payload);
    let req = match cur.u8()? {
        OP_INSPECT => Request::Inspect {
            budget: get_budget(&mut cur)?,
            statement: cur.rest()?,
        },
        OP_EXPLAIN => Request::Explain {
            statement: cur.rest()?,
        },
        OP_APPEND => {
            let dataset = cur.str16()?;
            let count = cur.u32()? as usize;
            let mut records = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let id = cur.u64()?;
                let nsym = cur.u32()? as usize;
                let mut symbols = Vec::with_capacity(nsym.min(1 << 16));
                for _ in 0..nsym {
                    symbols.push(cur.u32()?);
                }
                let text = cur.str32()?;
                records.push(WireRecord { id, symbols, text });
            }
            Request::Append { dataset, records }
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_BATCH => {
            let budget = get_budget(&mut cur)?;
            let count = cur.u16()? as usize;
            let mut statements = Vec::with_capacity(count);
            for _ in 0..count {
                statements.push(cur.str32()?);
            }
            Request::Batch { statements, budget }
        }
        OP_VIEW_CREATE => Request::ViewCreate {
            name: cur.str16()?,
            statement: cur.rest()?,
        },
        OP_VIEW_READ => Request::ViewRead { name: cur.rest()? },
        OP_VIEW_REFRESH => Request::ViewRefresh { name: cur.rest()? },
        OP_VIEW_DROP => Request::ViewDrop { name: cur.rest()? },
        OP_VIEW_LIST => Request::ViewList,
        op => return Err(WireError(format!("unknown request opcode {op:#04x}"))),
    };
    match &req {
        // Statement- and name-tailed requests consume the rest of the
        // frame; the fixed-shape ones must end exactly at the boundary.
        Request::Inspect { .. }
        | Request::Explain { .. }
        | Request::ViewCreate { .. }
        | Request::ViewRead { .. }
        | Request::ViewRefresh { .. }
        | Request::ViewDrop { .. } => {}
        _ => cur.done()?,
    }
    Ok(req)
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

fn put_plan_stats(buf: &mut Vec<u8>, p: &WirePlanStats) {
    for v in [
        p.plan_cache_hits,
        p.plan_cache_misses,
        p.score_cache_hits,
        p.admission_splits,
        p.admission_queued,
        p.scan_charged_columns,
        p.global_waves,
    ] {
        put_u64(buf, v);
    }
}

fn get_plan_stats(cur: &mut Cur) -> Result<WirePlanStats, WireError> {
    Ok(WirePlanStats {
        plan_cache_hits: cur.u64()?,
        plan_cache_misses: cur.u64()?,
        score_cache_hits: cur.u64()?,
        admission_splits: cur.u64()?,
        admission_queued: cur.u64()?,
        scan_charged_columns: cur.u64()?,
        global_waves: cur.u64()?,
    })
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Result {
            status,
            rows_read,
            table,
        } => {
            buf.push(OP_RESULT);
            buf.push(*status);
            put_u64(&mut buf, *rows_read);
            encode_table(&mut buf, table);
        }
        Response::Text(text) => {
            buf.push(OP_TEXT);
            buf.extend_from_slice(text.as_bytes());
        }
        Response::Error { code, message } => {
            buf.push(OP_ERROR);
            put_u16(&mut buf, *code);
            buf.extend_from_slice(message.as_bytes());
        }
        Response::Done(value) => {
            buf.push(OP_OK);
            put_u64(&mut buf, *value);
        }
        Response::Batch {
            status,
            rows_read,
            plan,
            results,
        } => {
            buf.push(OP_BATCH_RESULT);
            buf.push(*status);
            put_u64(&mut buf, *rows_read);
            put_plan_stats(&mut buf, plan);
            put_u16(&mut buf, results.len() as u16);
            for result in results {
                match result {
                    Ok(table) => {
                        buf.push(0);
                        encode_table(&mut buf, table);
                    }
                    Err((code, message)) => {
                        buf.push(1);
                        put_u16(&mut buf, *code);
                        put_str32(&mut buf, message);
                    }
                }
            }
        }
    }
    buf
}

/// Decodes a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut cur = Cur::new(payload);
    let resp = match cur.u8()? {
        OP_RESULT => {
            let status = cur.u8()?;
            let rows_read = cur.u64()?;
            let table = decode_table(&mut cur)?;
            cur.done()?;
            Response::Result {
                status,
                rows_read,
                table,
            }
        }
        OP_TEXT => Response::Text(cur.rest()?),
        OP_ERROR => {
            let code = cur.u16()?;
            let message = cur.rest()?;
            Response::Error { code, message }
        }
        OP_OK => {
            let value = cur.u64()?;
            cur.done()?;
            Response::Done(value)
        }
        OP_BATCH_RESULT => {
            let status = cur.u8()?;
            let rows_read = cur.u64()?;
            let plan = get_plan_stats(&mut cur)?;
            let count = cur.u16()? as usize;
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(match cur.u8()? {
                    0 => Ok(decode_table(&mut cur)?),
                    1 => {
                        let code = cur.u16()?;
                        let message = cur.str32()?;
                        Err((code, message))
                    }
                    t => return Err(WireError(format!("unknown batch result tag {t}"))),
                });
            }
            cur.done()?;
            Response::Batch {
                status,
                rows_read,
                plan,
                results,
            }
        }
        op => return Err(WireError(format!("unknown response opcode {op:#04x}"))),
    };
    Ok(resp)
}

/// Maps an error-frame `(code, message)` onto the caller-facing error:
/// protocol-level codes stay [`WireError`]-ish strings, engine codes
/// reconstruct the original [`DniError`] losslessly.
pub fn error_from_frame(code: u16, message: &str) -> Result<DniError, WireError> {
    if code == PROTOCOL_ERROR {
        Err(WireError(message.to_string()))
    } else {
        Ok(DniError::from_wire(code, message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NaN-free variant for `assert_eq!` round trips: `Table`'s
    /// `PartialEq` uses float `==`, so NaN payloads (whose *bits* do
    /// round-trip — see `float_cells_survive_as_raw_bits`) would fail
    /// equality even on a lossless codec.
    fn table_plain() -> Table {
        let schema = Schema::new(vec![
            ("uid", ColType::Int),
            ("score", ColType::Float),
            ("tag", ColType::Str),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![
            Value::Int(-7),
            Value::Float(-0.0),
            Value::Str("kw:\"SELECT\"\nnext".into()),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Int(i64::MAX),
            Value::Float(1.5e-12),
            Value::Str(String::new()),
        ])
        .unwrap();
        t
    }

    fn table_with_exotic_cells() -> Table {
        let schema = Schema::new(vec![
            ("uid", ColType::Int),
            ("score", ColType::Float),
            ("tag", ColType::Str),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![
            Value::Int(-7),
            Value::Float(f32::from_bits(0x7fc0_0001)), // NaN with payload
            Value::Str("kw:\"SELECT\"\nnext".into()),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Str(String::new()),
        ])
        .unwrap();
        t
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Inspect {
                statement: "SELECT S.uid INSPECT …".into(),
                budget: WireBudget {
                    deadline_ms: 250,
                    max_records: 0,
                    max_blocks: 3,
                },
            },
            Request::Explain {
                statement: "SELECT".into(),
            },
            Request::Append {
                dataset: "seq".into(),
                records: vec![
                    WireRecord {
                        id: 9,
                        symbols: vec![0, 1, 2],
                        text: "abc".into(),
                    },
                    WireRecord {
                        id: 10,
                        symbols: vec![],
                        text: String::new(),
                    },
                ],
            },
            Request::Stats,
            Request::Shutdown,
            Request::Batch {
                statements: vec!["a".into(), "b".into()],
                budget: WireBudget::default(),
            },
            Request::ViewCreate {
                name: "v".into(),
                statement: "SELECT S.uid INSPECT …".into(),
            },
            Request::ViewRead { name: "v".into() },
            Request::ViewRefresh {
                name: String::new(),
            },
            Request::ViewDrop {
                name: "long-ish name with spaces".into(),
            },
            Request::ViewList,
        ];
        for req in reqs {
            let payload = encode_request(&req);
            assert_eq!(decode_request(&payload).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip_bit_identically() {
        let resps = vec![
            Response::Result {
                status: STATUS_BUDGET,
                rows_read: 384,
                table: table_plain(),
            },
            Response::Text("PhysicalPlan: …\n".into()),
            Response::Error {
                code: 8,
                message: "internal error (worker panic): boom".into(),
            },
            Response::Done(42),
            Response::Batch {
                status: STATUS_CONVERGED,
                rows_read: 7,
                plan: WirePlanStats {
                    plan_cache_hits: 1,
                    plan_cache_misses: 2,
                    score_cache_hits: 3,
                    admission_splits: 4,
                    admission_queued: 5,
                    scan_charged_columns: 6,
                    global_waves: 7,
                },
                results: vec![Ok(table_plain()), Err((5, "query error: no".into()))],
            },
        ];
        for resp in resps {
            let payload = encode_response(&resp);
            assert_eq!(decode_response(&payload).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn float_cells_survive_as_raw_bits() {
        let table = table_with_exotic_cells();
        let mut buf = Vec::new();
        encode_table(&mut buf, &table);
        let decoded = decode_table(&mut Cur::new(&buf)).unwrap();
        let Value::Float(nan) = decoded.column_at(1).value(0) else {
            panic!("float column expected");
        };
        assert_eq!(nan.to_bits(), 0x7fc0_0001, "NaN payload must survive");
        let Value::Float(neg_zero) = decoded.column_at(1).value(1) else {
            panic!("float column expected");
        };
        assert_eq!(neg_zero.to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn malformed_frames_are_typed_errors_not_panics() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x7f]).is_err());
        // APPEND that promises more records than the frame carries.
        let mut truncated = encode_request(&Request::Append {
            dataset: "d".into(),
            records: vec![WireRecord {
                id: 1,
                symbols: vec![1, 2, 3],
                text: "x".into(),
            }],
        });
        truncated.truncate(truncated.len() - 2);
        assert!(decode_request(&truncated).is_err());
        // Trailing garbage after a fixed-size frame.
        let mut oversized = encode_request(&Request::Stats);
        oversized.push(0);
        assert!(decode_request(&oversized).is_err());
        assert!(decode_response(&[OP_RESULT]).is_err());
    }

    #[test]
    fn frame_io_round_trips_and_caps_length() {
        let payload = encode_request(&Request::Explain {
            statement: "x".repeat(100),
        });
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &payload).unwrap();
        let back = read_frame(&mut pipe.as_slice(), MAX_FRAME_BYTES).unwrap();
        assert_eq!(back, payload);
        // A length prefix over the cap is rejected before allocation.
        let bogus = u32::MAX.to_be_bytes();
        let err = read_frame(&mut bogus.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wire_budget_maps_zeros_to_unlimited() {
        let unlimited = WireBudget::default().to_run_budget(None);
        assert!(unlimited.is_unlimited());
        let bounded = WireBudget {
            deadline_ms: 100,
            max_records: 5,
            max_blocks: 0,
        }
        .to_run_budget(None);
        assert_eq!(bounded.deadline, Some(Duration::from_millis(100)));
        assert_eq!(bounded.max_records, Some(5));
        assert_eq!(bounded.max_blocks, None);
    }
}
