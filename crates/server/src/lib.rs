//! TCP inspection server: the serving frontend of the DeepBase engine.
//!
//! The core crate is a library — one process, one [`Session`], one
//! caller. This crate turns it into a service without adding a single
//! dependency: a hand-rolled acceptor over [`std::net::TcpListener`],
//! one OS thread and one logical [`Session`] per connection, and the
//! length-prefixed wire protocol of [`wire`] (the grammar is documented
//! in the core crate's "Serving" section).
//!
//! What every connection *shares* is the interesting part:
//!
//! * **One catalog.** Connections clone a master [`Catalog`] (cheap,
//!   `Arc`-shared, extractor identity preserved) guarded by a
//!   generation counter; an APPEND from any connection bumps the
//!   generation and every other session transparently rebuilds.
//! * **One behavior store.** The store is opened once at startup and
//!   the same [`BehaviorStore`] handle is passed to every session via
//!   [`SessionConfig::shared_store`]: one buffer pool, one index, one
//!   set of write-backs.
//! * **One admission budget.** A process-wide [`AdmissionScheduler`]
//!   (built from the configured [`SessionConfig::admission`]) replaces
//!   per-session admission: concurrent batches from different
//!   connections acquire FIFO permits against the *same*
//!   stream/scan-width budgets, so N connections cannot hold N× the
//!   configured width resident.
//! * **One runtime pool.** Connection handlers are plain OS threads —
//!   never runtime-pool jobs, whose blocking socket reads would starve
//!   the pool — and the engine's scoped fan-out inside each batch uses
//!   the shared global pool as always.
//!
//! Failure containment composes with serving: a hypothesis or extractor
//! panic is caught at the extraction-group boundary inside the engine
//! and routed to the offending query as [`DniError::Internal`]
//! (`code()` 8) over the wire, while sibling connections' batches keep
//! running. Shutdown (a SHUTDOWN frame, or [`ServerHandle::shutdown`])
//! is graceful: the drain [`CancelToken`] interrupts in-flight passes at
//! their next block boundary (partial frames are persisted and
//! tagged), handlers finish their current response and exit, the
//! acceptor joins them, and a final store compaction sweep removes
//! stale temporaries before the handle's `join` returns.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use deepbase::engine::CancelToken;
use deepbase::prelude::{
    freshness_label, AdmissionScheduler, BehaviorStore, Catalog, CompletionStatus, DniError,
    MaterializationPolicy, Record, SchedulerStats, Session, SessionConfig, ViewRefresh,
};

use crate::wire::{Request, Response, WirePlanStats};

pub mod demo;
pub mod wire;

/// How often blocked connection reads wake up to poll the shutdown flag
/// and idle budget.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Acceptor wake-up period while no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Server configuration: the per-connection session template plus
/// frontend knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Template every connection's [`Session`] is built from. Its
    /// `admission` budgets become the *process-wide* scheduler budget
    /// (unless `scheduler` is pre-set), and its `store` is opened once
    /// and shared by every session.
    pub session: SessionConfig,
    /// Connections idle longer than this are closed (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Per-frame payload cap for this server's connections.
    pub max_frame_bytes: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            session: SessionConfig::default(),
            idle_timeout: None,
            max_frame_bytes: wire::MAX_FRAME_BYTES,
        }
    }
}

/// Cumulative frontend counters (engine-side counters live in
/// [`SchedulerStats`] and per-batch reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames received (any opcode).
    pub requests: u64,
    /// Statements answered with a result table.
    pub queries_ok: u64,
    /// Statements answered with a typed engine error.
    pub query_errors: u64,
    /// APPEND frames applied.
    pub appends: u64,
    /// Malformed frames answered with a protocol error.
    pub protocol_errors: u64,
    /// VIEW_CREATE frames that materialized a view.
    pub view_builds: u64,
    /// VIEW_READ frames answered from a stored frame (zero extraction).
    pub view_reads: u64,
    /// VIEW_REFRESH frames that folded new segments or rebuilt.
    pub view_refreshes: u64,
}

/// The master catalog all connections serve from, with a generation
/// counter so sessions know when their clone went stale.
struct Master {
    generation: u64,
    catalog: Catalog,
}

/// Process-wide state shared by the acceptor and every connection.
struct Shared {
    master: Mutex<Master>,
    template: SessionConfig,
    scheduler: Arc<AdmissionScheduler>,
    store: Option<Arc<BehaviorStore>>,
    shutting_down: AtomicBool,
    /// Drain token attached to every request's run budget: cancelling it
    /// interrupts in-flight passes at their next block boundary.
    drain: CancelToken,
    idle_timeout: Option<Duration>,
    max_frame_bytes: u32,
    stats: Mutex<ServerStats>,
}

impl Shared {
    fn bump(&self, f: impl FnOnce(&mut ServerStats)) {
        f(&mut self.stats.lock().expect("stats lock"));
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.drain.cancel();
    }

    /// Returns this connection's session, rebuilding it from the master
    /// catalog when none exists yet or an APPEND moved the generation.
    fn ensure_session<'a>(&self, slot: &'a mut Option<(u64, Session)>) -> &'a mut Session {
        let current = self.master.lock().expect("master lock").generation;
        if slot.as_ref().is_none_or(|(g, _)| *g != current) {
            let (generation, catalog) = {
                let master = self.master.lock().expect("master lock");
                (master.generation, master.catalog.clone())
            };
            *slot = Some((
                generation,
                Session::with_config(catalog, self.template.clone()),
            ));
        }
        &mut slot.as_mut().expect("session just ensured").1
    }

    fn serve(&self, req: Request, slot: &mut Option<(u64, Session)>) -> Response {
        match req {
            Request::Inspect { statement, budget } => {
                let drain = self.drain.clone();
                let session = self.ensure_session(slot);
                session.set_budget(budget.to_run_budget(Some(drain)));
                match session.run_batch(&[statement.as_str()]) {
                    Err(e) => self.error_response(e),
                    Ok(mut out) => {
                        // A lone statement's contained worker panic is its
                        // own error, not an empty table (mirrors
                        // `Session::execute`).
                        if let Some(e) = out.report.query_errors.first_mut().and_then(Option::take)
                        {
                            self.error_response(e)
                        } else {
                            self.bump(|s| s.queries_ok += 1);
                            Response::Result {
                                status: status_byte(out.report.completion.status),
                                rows_read: out.report.completion.rows_read as u64,
                                table: out.tables.swap_remove(0),
                            }
                        }
                    }
                }
            }
            Request::Batch { statements, budget } => {
                let drain = self.drain.clone();
                let session = self.ensure_session(slot);
                session.set_budget(budget.to_run_budget(Some(drain)));
                let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
                match session.run_batch(&refs) {
                    Err(e) => self.error_response(e),
                    Ok(out) => {
                        let results: Vec<Result<_, _>> = out
                            .tables
                            .into_iter()
                            .zip(out.report.query_errors)
                            .map(|(table, err)| match err {
                                Some(e) => {
                                    self.bump(|s| s.query_errors += 1);
                                    Err((e.code(), e.to_string()))
                                }
                                None => {
                                    self.bump(|s| s.queries_ok += 1);
                                    Ok(table)
                                }
                            })
                            .collect();
                        Response::Batch {
                            status: status_byte(out.report.completion.status),
                            rows_read: out.report.completion.rows_read as u64,
                            plan: wire_plan_stats(&out.report.plan),
                            results,
                        }
                    }
                }
            }
            Request::Explain { statement } => {
                let session = self.ensure_session(slot);
                match session.explain(&statement) {
                    Ok(text) => Response::Text(text),
                    Err(e) => self.error_response(e),
                }
            }
            Request::Append { dataset, records } => {
                let records: Vec<Record> = records
                    .into_iter()
                    .map(|r| Record::standalone(r.id as usize, r.symbols, r.text))
                    .collect();
                let count = records.len() as u64;
                let mut master = self.master.lock().expect("master lock");
                match master.catalog.append_to_dataset(&dataset, records) {
                    Ok(()) => {
                        master.generation += 1;
                        drop(master);
                        self.bump(|s| s.appends += 1);
                        Response::Done(count)
                    }
                    Err(e) => {
                        drop(master);
                        self.error_response(e)
                    }
                }
            }
            Request::Stats => Response::Text(self.render_stats()),
            Request::Shutdown => {
                self.begin_shutdown();
                Response::Done(0)
            }
            Request::ViewCreate { name, statement } => {
                let session = self.ensure_session(slot);
                match session.create_view(&name, &statement) {
                    Ok(()) => {
                        self.bump(|s| s.view_builds += 1);
                        Response::Done(0)
                    }
                    Err(e) => self.error_response(e),
                }
            }
            Request::ViewRead { name } => {
                let session = self.ensure_session(slot);
                match session.read_view(&name) {
                    Ok(table) => {
                        self.bump(|s| {
                            s.view_reads += 1;
                            s.queries_ok += 1;
                        });
                        Response::Result {
                            status: wire::STATUS_CONVERGED,
                            rows_read: 0,
                            table,
                        }
                    }
                    Err(e) => self.error_response(e),
                }
            }
            Request::ViewRefresh { name } => {
                let session = self.ensure_session(slot);
                match session.refresh_view(&name) {
                    Ok(ViewRefresh::Noop) => Response::Done(wire::REFRESH_NOOP),
                    Ok(ViewRefresh::Incremental { new_segments }) => {
                        self.bump(|s| s.view_refreshes += 1);
                        Response::Done(new_segments as u64)
                    }
                    Ok(ViewRefresh::Rebuilt) => {
                        self.bump(|s| s.view_refreshes += 1);
                        Response::Done(wire::REFRESH_REBUILT)
                    }
                    Err(e) => self.error_response(e),
                }
            }
            Request::ViewDrop { name } => {
                let session = self.ensure_session(slot);
                match session.drop_view(&name) {
                    Ok(existed) => Response::Done(existed as u64),
                    Err(e) => self.error_response(e),
                }
            }
            Request::ViewList => {
                let session = self.ensure_session(slot);
                match session.list_views() {
                    Ok(views) => Response::Text(
                        views
                            .iter()
                            .map(|v| {
                                format!(
                                    "{}\t{}\t{}\n",
                                    v.name,
                                    freshness_label(&v.freshness),
                                    v.statement
                                )
                            })
                            .collect(),
                    ),
                    Err(e) => self.error_response(e),
                }
            }
        }
    }

    fn error_response(&self, e: DniError) -> Response {
        self.bump(|s| s.query_errors += 1);
        Response::Error {
            code: e.code(),
            message: e.to_string(),
        }
    }

    fn render_stats(&self) -> String {
        let s = *self.stats.lock().expect("stats lock");
        let g: SchedulerStats = self.scheduler.stats();
        format!(
            "server: connections={} requests={} queries_ok={} query_errors={} \
             appends={} protocol_errors={}\n\
             views: builds={} reads={} refreshes={}\n\
             scheduler: waves_admitted={} waves_waited={} peak_stream_width={} \
             peak_scan_width={} max_queue_depth={}\n\
             store: {}\n",
            s.connections,
            s.requests,
            s.queries_ok,
            s.query_errors,
            s.appends,
            s.protocol_errors,
            s.view_builds,
            s.view_reads,
            s.view_refreshes,
            g.waves_admitted,
            g.waves_waited,
            g.peak_stream_width,
            g.peak_scan_width,
            g.max_queue_depth,
            if self.store.is_some() {
                "open (shared handle)"
            } else {
                "disabled"
            },
        )
    }
}

/// Maps the engine completion status onto its wire byte; statuses this
/// protocol revision does not know (the enum is `#[non_exhaustive]`)
/// degrade to [`wire::STATUS_UNKNOWN`] rather than breaking clients.
fn status_byte(status: CompletionStatus) -> u8 {
    match status {
        CompletionStatus::Converged => wire::STATUS_CONVERGED,
        CompletionStatus::DeadlineExceeded => wire::STATUS_DEADLINE,
        CompletionStatus::Cancelled => wire::STATUS_CANCELLED,
        CompletionStatus::BudgetExhausted => wire::STATUS_BUDGET,
        _ => wire::STATUS_UNKNOWN,
    }
}

fn wire_plan_stats(p: &deepbase::plan::PlanStats) -> WirePlanStats {
    WirePlanStats {
        plan_cache_hits: p.plan_cache_hits as u64,
        plan_cache_misses: p.plan_cache_misses as u64,
        score_cache_hits: p.score_cache_hits as u64,
        admission_splits: p.admission_splits as u64,
        admission_queued: p.admission_queued as u64,
        scan_charged_columns: p.scan_charged_columns as u64,
        global_waves: p.global_waves as u64,
    }
}

/// The inspection server. [`InspectionServer::start`] binds, spawns the
/// acceptor, and returns a [`ServerHandle`]; the server runs until a
/// SHUTDOWN frame arrives or the handle shuts it down.
pub struct InspectionServer;

impl InspectionServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `catalog` under `config`. The behavior store, if
    /// configured, is opened here — once — and shared by every
    /// connection; an open failure disables persistence (the store is
    /// an accelerator, never a correctness dependency) and the server
    /// still starts.
    pub fn start(
        addr: impl ToSocketAddrs,
        catalog: Catalog,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let mut template = config.session;
        let scheduler = template
            .scheduler
            .take()
            .unwrap_or_else(|| AdmissionScheduler::new(template.admission));
        template.scheduler = Some(Arc::clone(&scheduler));
        let store = match &template.store {
            Some(cfg) if cfg.policy != MaterializationPolicy::Off => {
                if let Some(shared) = &template.shared_store {
                    Some(Arc::clone(shared))
                } else {
                    match BehaviorStore::open(cfg) {
                        Ok(store) => Some(store),
                        Err(e) => {
                            eprintln!(
                                "deepbase-server: store at {:?} could not be opened, \
                                 persistence disabled: {e}",
                                cfg.path
                            );
                            template.store = None;
                            None
                        }
                    }
                }
            }
            _ => None,
        };
        template.shared_store = store.clone();

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            master: Mutex::new(Master {
                generation: 0,
                catalog,
            }),
            template,
            scheduler,
            store,
            shutting_down: AtomicBool::new(false),
            drain: CancelToken::new(),
            idle_timeout: config.idle_timeout,
            max_frame_bytes: config.max_frame_bytes,
            stats: Mutex::new(ServerStats::default()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("deepbase-acceptor".into())
                .spawn(move || accept_loop(&shared, listener))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut workers = Vec::new();
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.bump(|s| s.connections += 1);
                let shared = Arc::clone(shared);
                let worker = thread::Builder::new()
                    .name("deepbase-conn".into())
                    .spawn(move || handle_connection(&shared, stream));
                match worker {
                    Ok(handle) => workers.push(handle),
                    Err(e) => eprintln!("deepbase-server: could not spawn handler: {e}"),
                }
            }
            // Nonblocking accept: nothing pending, poll the flag again
            // shortly. Transient accept errors get the same backoff.
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }
    // Drain: the drain token has cancelled in-flight passes, handlers
    // send their final (partial, status-tagged) responses and exit at
    // the next poll tick. A handler that panicked outside the engine's
    // containment only loses its own connection.
    for worker in workers {
        let _ = worker.join();
    }
    // Flushes are per-batch; what remains is removing stale temporaries
    // and superseded partials so the tree is clean on disk.
    if let (Some(store), Some(cfg)) = (&shared.store, &shared.template.store) {
        if cfg.policy == MaterializationPolicy::ReadWrite {
            store.compact(cfg.quarantine_retention_bytes);
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let mut session: Option<(u64, Session)> = None;
    let mut last_activity = Instant::now();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let payload = match wire::read_frame_polled(&mut stream, shared.max_frame_bytes) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                if shared
                    .idle_timeout
                    .is_some_and(|idle| last_activity.elapsed() >= idle)
                {
                    return;
                }
                continue;
            }
            // Disconnect, mid-frame stall, or hard IO error.
            Err(_) => return,
        };
        last_activity = Instant::now();
        shared.bump(|s| s.requests += 1);
        let response = match wire::decode_request(&payload) {
            Ok(request) => {
                let quit = matches!(request, Request::Shutdown);
                let response = shared.serve(request, &mut session);
                if send(&mut stream, &response).is_err() || quit {
                    return;
                }
                continue;
            }
            Err(e) => {
                shared.bump(|s| s.protocol_errors += 1);
                Response::Error {
                    code: wire::PROTOCOL_ERROR,
                    message: e.0,
                }
            }
        };
        if send(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn send(stream: &mut impl Write, response: &Response) -> io::Result<()> {
    wire::write_frame(stream, &wire::encode_response(response))
}

/// Handle to a running server: address, shared counters, and shutdown.
/// Dropping the handle shuts the server down and joins the acceptor.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-wide admission scheduler (its [`SchedulerStats`]
    /// `peak_*` fields are the observable proof that concurrent
    /// connections shared one budget).
    pub fn scheduler(&self) -> &Arc<AdmissionScheduler> {
        &self.shared.scheduler
    }

    /// The shared behavior store, when one is open.
    pub fn store(&self) -> Option<&Arc<BehaviorStore>> {
        self.shared.store.as_ref()
    }

    /// Frontend counters.
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock().expect("stats lock")
    }

    /// True once a SHUTDOWN frame (or [`ServerHandle::shutdown`]) has
    /// begun the drain.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Begins the drain (cancels in-flight passes, stops accepting) and
    /// blocks until every connection handler has exited and the final
    /// store compaction ran. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Blocks until the server shuts down (e.g. by a SHUTDOWN frame
    /// from a client), then completes the drain.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
