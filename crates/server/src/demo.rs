//! Shared demo workload: a char-LSTM catalog with a forward-pass
//! counter, used by the server binary, the integration tests and the
//! `fig_server` bench so all three serve exactly the same catalog.
//!
//! Mirrors the `fig_store` bench workload (PR 4): 4-symbol sequences,
//! one LSTM probe model, character-class and position hypotheses — an
//! extraction-bound batch where a warm behavior store pays.

use deepbase::prelude::*;
use deepbase::query::UnitMeta;
use deepbase_nn::{CharLstmModel, OutputMode};
use deepbase_tensor::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default record count.
pub const ND: usize = 384;
/// Default symbols per record.
pub const NS: usize = 16;
/// Default hidden units of the probe model.
pub const UNITS: usize = 96;

/// Owned char-LSTM extractor with forward-pass counting and a weight
/// fingerprint (the durable store key). The counter is how tests and
/// benches *prove* a warm store serves queries without touching the
/// model — including over TCP.
pub struct CountingLstmExtractor {
    model: CharLstmModel,
    forward_passes: Arc<AtomicUsize>,
}

impl Extractor for CountingLstmExtractor {
    fn n_units(&self) -> usize {
        self.model.hidden()
    }

    fn extract(&self, records: &[&Record], unit_ids: &[usize]) -> Matrix {
        self.forward_passes.fetch_add(1, Ordering::SeqCst);
        if records.is_empty() {
            return Matrix::zeros(0, unit_ids.len());
        }
        let inputs: Vec<Vec<u32>> = records.iter().map(|r| r.symbols.clone()).collect();
        let full = self.model.extract_activations(&inputs);
        let mut out = Matrix::zeros(full.rows(), unit_ids.len());
        for r in 0..full.rows() {
            let src = full.row(r);
            let dst = out.row_mut(r);
            for (c, &u) in unit_ids.iter().enumerate() {
                dst[c] = src[u];
            }
        }
        out
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(char_model_fingerprint(&self.model))
    }
}

/// The deterministic demo records: `nd` sequences of `ns` symbols over
/// the alphabet a–d.
pub fn records(nd: usize, ns: usize) -> Vec<Record> {
    (0..nd)
        .map(|i| {
            let chars: Vec<char> = (0..ns)
                .map(|t| match (i * 11 + t * 5) % 7 {
                    0 | 4 => 'a',
                    1 | 5 => 'b',
                    2 => 'c',
                    _ => 'd',
                })
                .collect();
            let symbols: Vec<u32> = chars.iter().map(|&c| c as u32 - 'a' as u32).collect();
            Record::standalone(i, symbols, chars.into_iter().collect())
        })
        .collect()
}

/// Builds the demo catalog at an explicit size: model `probe` with
/// `units` hidden units (layer = uid % 2), hypothesis sets `chars` and
/// `position`, dataset `seq` with `nd` records of `ns` symbols.
pub fn catalog_sized(nd: usize, ns: usize, units: usize, passes: &Arc<AtomicUsize>) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add_model_with_units(
        "probe",
        5,
        Arc::new(CountingLstmExtractor {
            model: CharLstmModel::new(4, units, OutputMode::LastStep, 42),
            forward_passes: Arc::clone(passes),
        }),
        (0..units)
            .map(|uid| UnitMeta {
                uid,
                layer: (uid % 2) as i64,
            })
            .collect(),
    );
    catalog.add_hypotheses(
        "chars",
        vec![
            Arc::new(FnHypothesis::char_class("is_a", |c| c == 'a')),
            Arc::new(FnHypothesis::char_class("is_b", |c| c == 'b')),
            Arc::new(FnHypothesis::char_class("is_c", |c| c == 'c')),
        ],
    );
    catalog.add_hypotheses("position", vec![Arc::new(FnHypothesis::position_counter())]);
    catalog.add_dataset(
        "seq",
        Arc::new(Dataset::new("seq", ns, records(nd, ns)).unwrap()),
    );
    catalog
}

/// Builds the demo catalog at the default [`ND`]/[`NS`]/[`UNITS`] size.
pub fn catalog(passes: &Arc<AtomicUsize>) -> Catalog {
    catalog_sized(ND, NS, UNITS, passes)
}

/// The demo inspection batch: overlapping unit filters and GROUP BY over
/// correlation. A tiny epsilon keeps every pass streaming the full
/// dataset, so a cold run materializes complete store columns.
pub const QUERIES: [&str; 5] = [
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D HAVING S.unit_score > 0.5",
    "SELECT S.group_id, S.uid INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE H.name = 'chars' GROUP BY U.layer",
    "SELECT S.uid, S.hyp_id, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D WHERE H.name = 'position'",
    "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
     FROM models M, units U, hypotheses H, inputs D \
     WHERE U.layer = 0 HAVING S.unit_score > 0.3",
    "SELECT S.uid, S.unit_score, S.group_score INSPECT U.uid AND H.h USING corr \
     OVER D.seq AS S FROM models M, units U, hypotheses H, inputs D \
     WHERE U.uid < 24 AND H.name = 'chars'",
];

/// The inspection config the demo workload runs under (block size 64,
/// epsilon small enough that every pass streams the full dataset).
pub fn inspection() -> InspectionConfig {
    InspectionConfig {
        block_records: 64,
        epsilon: Some(1e-12),
        ..Default::default()
    }
}
