//! `deepbase-server` binary: serves the demo char-LSTM catalog over TCP.
//!
//! ```text
//! deepbase-server [ADDR] [--store DIR] [--stream-width N]
//!                 [--scan-width N] [--idle-ms N]
//! ```
//!
//! * `ADDR` — listen address, default `127.0.0.1:4517` (port 0 picks an
//!   ephemeral port, printed on stdout).
//! * `--store DIR` — open (or create) a read-write behavior store at
//!   `DIR`, shared by every connection.
//! * `--stream-width N` / `--scan-width N` — process-wide admission
//!   budgets enforced by the global scheduler across all connections.
//! * `--idle-ms N` — close connections idle longer than N milliseconds.
//!
//! The process exits after a client sends a SHUTDOWN frame (e.g.
//! `deepbase-cli <addr> shutdown`): in-flight passes drain, sessions
//! flush, the store compacts, and the acceptor joins every handler.

use deepbase::prelude::{AdmissionConfig, SessionConfig, StoreConfig};
use deepbase_server::{demo, InspectionServer, ServerConfig};
use std::process::exit;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: deepbase-server [ADDR] [--store DIR] [--stream-width N] \
         [--scan-width N] [--idle-ms N]"
    );
    exit(2)
}

fn parse_num(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("deepbase-server: {flag} needs a numeric argument");
            usage()
        }
    }
}

fn main() {
    let mut addr = String::from("127.0.0.1:4517");
    let mut store_dir: Option<String> = None;
    let mut stream_width: Option<usize> = None;
    let mut scan_width: Option<usize> = None;
    let mut idle_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => store_dir = Some(parse_str("--store", args.next())),
            "--stream-width" => {
                stream_width = Some(parse_num("--stream-width", args.next()) as usize)
            }
            "--scan-width" => scan_width = Some(parse_num("--scan-width", args.next()) as usize),
            "--idle-ms" => idle_ms = Some(parse_num("--idle-ms", args.next())),
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => {
                eprintln!("deepbase-server: unknown flag {flag}");
                usage()
            }
            positional => addr = positional.to_string(),
        }
    }

    let passes = Arc::new(AtomicUsize::new(0));
    let catalog = demo::catalog(&passes);
    let config = ServerConfig {
        session: SessionConfig {
            inspection: demo::inspection(),
            admission: AdmissionConfig {
                max_stream_width: stream_width,
                max_scan_width: scan_width,
            },
            store: store_dir.map(|dir| StoreConfig {
                block_records: 64,
                ..StoreConfig::at(dir)
            }),
            ..SessionConfig::default()
        },
        idle_timeout: idle_ms.map(Duration::from_millis),
        ..ServerConfig::default()
    };

    let handle = match InspectionServer::start(&addr, catalog, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("deepbase-server: could not bind {addr}: {e}");
            exit(1)
        }
    };
    println!("deepbase-server listening on {}", handle.addr());
    handle.join();
    println!("deepbase-server: drained and shut down");
}

fn parse_str(flag: &str, value: Option<String>) -> String {
    match value {
        Some(v) => v,
        None => {
            eprintln!("deepbase-server: {flag} needs an argument");
            usage()
        }
    }
}
