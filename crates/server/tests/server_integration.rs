//! End-to-end tests of the inspection server over real TCP sockets:
//! bit-identical warm serving, per-connection panic isolation, global
//! admission sharing, shutdown drain, and cross-connection appends.
//!
//! Every test binds `127.0.0.1:0` (an ephemeral port) so they run in
//! parallel without colliding.

use deepbase::prelude::*;
use deepbase_client::{Client, ClientError};
use deepbase_server::{demo, wire, InspectionServer, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Small demo sizing: fast enough for tests, big enough that the
/// workload still streams multiple blocks (block size 64).
const ND: usize = 96;
const NS: usize = 12;
const UNITS: usize = 32;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "deepbase-server-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_config(dir: &PathBuf) -> StoreConfig {
    StoreConfig {
        block_records: 64,
        ..StoreConfig::at(dir)
    }
}

fn session_config(store: Option<StoreConfig>) -> SessionConfig {
    SessionConfig {
        inspection: demo::inspection(),
        store,
        ..SessionConfig::default()
    }
}

fn start_server(catalog: Catalog, session: SessionConfig) -> ServerHandle {
    InspectionServer::start(
        "127.0.0.1:0",
        catalog,
        ServerConfig {
            session,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// Reference answers from a plain in-process library session (no store,
/// live extraction) — the ground truth every serving path must match
/// bit for bit.
fn reference_tables() -> Vec<deepbase_relational::Table> {
    let passes = Arc::new(AtomicUsize::new(0));
    let mut session = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    session
        .run_batch(&demo::QUERIES)
        .expect("reference batch")
        .tables
}

#[test]
fn concurrent_warm_queries_are_bit_identical_with_zero_forward_passes() {
    let reference = reference_tables();

    // Populate the store once with a throwaway library session.
    let dir = temp_dir("warm");
    let populate_passes = Arc::new(AtomicUsize::new(0));
    let mut populate = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &populate_passes),
        session_config(Some(store_config(&dir))),
    );
    populate.run_batch(&demo::QUERIES).expect("populate store");
    drop(populate);
    assert!(populate_passes.load(Ordering::SeqCst) > 0);

    // Serve the same catalog (same weights, same fingerprints) from the
    // warm store; the server's own extractor must never run.
    let serve_passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &serve_passes),
        session_config(Some(store_config(&dir))),
    );
    let addr = handle.addr();

    thread::scope(|scope| {
        for _ in 0..3 {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (statement, expected) in demo::QUERIES.iter().zip(reference) {
                    let result = client.inspect(statement).expect("inspect over TCP");
                    assert_eq!(result.status, wire::STATUS_CONVERGED);
                    assert_eq!(
                        &result.table, expected,
                        "TCP answer must be bit-identical to the library run"
                    );
                }
            });
        }
    });

    assert_eq!(
        serve_passes.load(Ordering::SeqCst),
        0,
        "warm serving must run zero extractor forward passes"
    );
    let stats = handle.stats();
    assert_eq!(stats.connections, 3);
    assert_eq!(stats.queries_ok, 3 * demo::QUERIES.len() as u64);
    assert_eq!(stats.query_errors, 0);
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_connection_does_not_disturb_siblings() {
    let reference = reference_tables();
    let passes = Arc::new(AtomicUsize::new(0));
    let mut catalog = demo::catalog_sized(ND, NS, UNITS, &passes);
    catalog.add_hypotheses(
        "poison",
        vec![Arc::new(FnHypothesis::new("boom", |_| {
            panic!("poison hypothesis")
        }))],
    );
    let handle = start_server(catalog, session_config(None));
    let addr = handle.addr();

    const POISON: &str = "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr \
                          OVER D.seq AS S FROM models M, units U, hypotheses H, inputs D \
                          WHERE H.name = 'poison'";
    // Statements that name their hypothesis set explicitly — an
    // unfiltered `H.h` would bind the poison set too and panic
    // legitimately. These three never touch it.
    let safe: Vec<usize> = vec![1, 2, 4];
    thread::scope(|scope| {
        // One connection repeatedly triggers a worker panic...
        scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect poison");
            for _ in 0..3 {
                match client.inspect(POISON) {
                    Err(ClientError::Server(e)) => {
                        assert!(
                            matches!(e, DniError::Internal(_)),
                            "contained panic must surface as DniError::Internal, got {e:?}"
                        );
                        assert_eq!(e.code(), 8);
                    }
                    other => panic!("poison query must fail with a server error, got {other:?}"),
                }
            }
            // The connection itself survives its own panics.
            let ok = client.inspect(demo::QUERIES[1]).expect("post-panic query");
            assert_eq!(&ok.table, &reference[1]);
        });
        // ...while sibling connections keep getting exact answers.
        for _ in 0..2 {
            let reference = &reference;
            let safe = &safe;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect sibling");
                for round in 0..3 {
                    for &qi in safe {
                        let result = client.inspect(demo::QUERIES[qi]).expect("sibling inspect");
                        assert_eq!(&result.table, &reference[qi], "round {round} query {qi}");
                    }
                }
            });
        }
    });

    let stats = handle.stats();
    assert_eq!(stats.query_errors, 3);
    assert_eq!(
        stats.queries_ok,
        1 + 2 * 3 * safe.len() as u64,
        "sibling queries (and the post-panic one) all succeed"
    );
}

#[test]
fn concurrent_batches_share_the_global_admission_budget() {
    // Budget of 12 stream columns against 32-unit queries: every batch
    // must split into waves, and *all* waves — across both connections —
    // acquire permits from one scheduler.
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        SessionConfig {
            admission: AdmissionConfig {
                max_stream_width: Some(12),
                max_scan_width: None,
            },
            ..session_config(None)
        },
    );
    let addr = handle.addr();

    let mut explain_client = Client::connect(addr).expect("connect explain");
    let explain = explain_client.explain(demo::QUERIES[0]).expect("explain");
    assert!(
        explain.contains("global scheduler"),
        "explain must show the process-wide admission line:\n{explain}"
    );

    let plans: Vec<wire::WirePlanStats> = thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect batch");
                    let batch = client
                        .batch(&demo::QUERIES, wire::WireBudget::default())
                        .expect("over-wide batch");
                    for result in &batch.results {
                        assert!(result.is_ok());
                    }
                    batch.plan
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let mut total_waves = 0;
    for plan in &plans {
        assert!(
            plan.admission_splits > 0,
            "a 32-wide group under budget 12 must split: {plan:?}"
        );
        assert!(plan.global_waves >= 2, "{plan:?}");
        total_waves += plan.global_waves;
    }
    let sched = handle.scheduler().stats();
    assert_eq!(
        sched.waves_admitted, total_waves,
        "every wave reported by PlanStats acquired a global permit"
    );
    assert!(
        sched.peak_stream_width <= 12,
        "summed in-flight width across connections stayed under the one budget \
         (peak {})",
        sched.peak_stream_width
    );
    assert!(sched.max_queue_depth >= 1);
}

#[test]
fn shutdown_drains_flushes_and_leaves_no_temporaries() {
    let dir = temp_dir("shutdown");
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(Some(store_config(&dir))),
    );
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    let batch = client
        .batch(&demo::QUERIES, wire::WireBudget::default())
        .expect("populating batch");
    assert!(batch.results.iter().all(Result::is_ok));
    client.shutdown().expect("shutdown acknowledged");
    // Blocks until every handler exited and the final compaction ran.
    handle.join();

    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("store dir readable") {
            let entry = entry.expect("dir entry");
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = entry.file_name().to_string_lossy().into_owned();
                assert!(
                    !name.contains(".tmp"),
                    "shutdown must not leave temporaries: {name}"
                );
            }
        }
    }

    // The write-backs that batch produced are durable: a fresh library
    // session over the same store serves the workload with zero passes.
    let warm_passes = Arc::new(AtomicUsize::new(0));
    let mut warm = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &warm_passes),
        session_config(Some(store_config(&dir))),
    );
    warm.run_batch(&demo::QUERIES).expect("warm re-read");
    assert_eq!(
        warm_passes.load(Ordering::SeqCst),
        0,
        "columns flushed before shutdown must serve a fresh session warm"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn appends_are_visible_to_every_connection() {
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    let addr = handle.addr();

    let mut writer = Client::connect(addr).expect("connect writer");
    let mut reader = Client::connect(addr).expect("connect reader");

    let before = reader.inspect(demo::QUERIES[0]).expect("cold inspect");
    assert_eq!(before.rows_read, ND as u64);

    // Grow the dataset over the wire: 16 fresh records in the demo
    // pattern, appended as one sealed segment.
    let grown = demo::records(ND + 16, NS).split_off(ND);
    let wire_records: Vec<wire::WireRecord> = grown
        .iter()
        .map(|r| wire::WireRecord {
            id: r.id as u64,
            symbols: r.symbols.clone(),
            text: r.text.clone(),
        })
        .collect();
    assert_eq!(writer.append("seq", wire_records).expect("append"), 16);

    // Both the writer's and the reader's next queries see the growth
    // (the reader's session silently rebuilds from the bumped master).
    for client in [&mut writer, &mut reader] {
        let after = client.inspect(demo::QUERIES[0]).expect("warm inspect");
        assert_eq!(after.rows_read, (ND + 16) as u64);
    }
    // And the answer matches an in-process session over the same grown
    // dataset, bit for bit.
    let check_passes = Arc::new(AtomicUsize::new(0));
    let mut check = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &check_passes),
        session_config(None),
    );
    check
        .append_records("seq", demo::records(ND + 16, NS).split_off(ND))
        .expect("library append");
    let expected = check.run(demo::QUERIES[0]).expect("library run");
    let over_wire = reader.inspect(demo::QUERIES[0]).expect("post-append");
    assert_eq!(over_wire.table, expected);

    assert_eq!(handle.stats().appends, 1);
}

#[test]
fn malformed_frames_get_protocol_errors_and_the_connection_survives() {
    use std::io::Write;
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );

    let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect raw");
    // A well-framed payload with a bogus opcode.
    let garbage = [0x7fu8, 1, 2, 3];
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    let payload = wire::read_frame(&mut raw, wire::MAX_FRAME_BYTES).expect("error frame");
    match wire::decode_response(&payload).expect("decodable response") {
        wire::Response::Error { code, .. } => assert_eq!(code, wire::PROTOCOL_ERROR),
        other => panic!("expected a protocol error frame, got {other:?}"),
    }

    // The stream is still at a frame boundary: a real request works.
    let req = wire::encode_request(&wire::Request::Stats);
    raw.write_all(&(req.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(&req).unwrap();
    let payload = wire::read_frame(&mut raw, wire::MAX_FRAME_BYTES).expect("stats frame");
    assert!(matches!(
        wire::decode_response(&payload),
        Ok(wire::Response::Text(_))
    ));
    assert_eq!(handle.stats().protocol_errors, 1);
}

#[test]
fn per_request_budgets_tag_interrupted_answers() {
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    let mut client = Client::connect(handle.addr()).expect("connect");

    // One block of 64 records out of 96: the run budget stops the pass
    // early and the status byte says so.
    let capped = client
        .inspect_with_budget(
            demo::QUERIES[0],
            wire::WireBudget {
                deadline_ms: 0,
                max_records: 0,
                max_blocks: 1,
            },
        )
        .expect("budgeted inspect");
    assert_eq!(capped.status, wire::STATUS_BUDGET);
    assert!(capped.rows_read < ND as u64);

    // The same statement unbudgeted converges on the same connection:
    // interrupted frames never poison the score cache.
    let full = client.inspect(demo::QUERIES[0]).expect("full inspect");
    assert_eq!(full.status, wire::STATUS_CONVERGED);
    assert_eq!(full.rows_read, ND as u64);
    assert_eq!(full.table, reference_tables()[0]);
}

/// 16 fresh demo records extending the `ND`-record dataset by one
/// sealed segment, as wire records (offset by `extra` prior appends).
fn wire_segment(extra: usize) -> Vec<wire::WireRecord> {
    demo::records(ND + (extra + 1) * 16, NS)
        .split_off(ND + extra * 16)
        .iter()
        .map(|r| wire::WireRecord {
            id: r.id as u64,
            symbols: r.symbols.clone(),
            text: r.text.clone(),
        })
        .collect()
}

/// In-process reference table for `QUERIES[0]` after `appends` 16-record
/// segments landed on the demo dataset.
fn reference_after_appends(appends: usize) -> deepbase_relational::Table {
    let passes = Arc::new(AtomicUsize::new(0));
    let mut session = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    for extra in 0..appends {
        session
            .append_records(
                "seq",
                demo::records(ND + (extra + 1) * 16, NS).split_off(ND + extra * 16),
            )
            .expect("library append");
    }
    session.run(demo::QUERIES[0]).expect("library reference")
}

#[test]
fn view_read_over_tcp_replays_bit_identically_with_zero_passes_and_zero_scans() {
    let dir = temp_dir("views");
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(Some(store_config(&dir))),
    );
    let addr = handle.addr();
    let store = Arc::clone(handle.store().expect("store open"));

    // Grow to two segments so the optimizer's replay rule applies, then
    // take the cold answer as the bit-exactness yardstick.
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.append("seq", wire_segment(0)).expect("append"), 16);
    let cold = client.inspect(demo::QUERIES[0]).expect("cold inspect");
    assert_eq!(cold.table, reference_after_appends(1));
    client.create_view("v", demo::QUERIES[0]).expect("create");

    // VIEW_READ replays the stored frame: zero extractor forward passes
    // AND zero store block reads (the buffer pool is never consulted).
    let passes_before = passes.load(Ordering::SeqCst);
    let pool_before = store.pool().stats();
    let replay = client.read_view("v").expect("read view");
    assert_eq!(
        replay, cold.table,
        "VIEW_READ must be bit-identical to the cold INSPECT"
    );
    assert_eq!(
        passes.load(Ordering::SeqCst),
        passes_before,
        "replay must run zero forward passes"
    );
    let pool_after = store.pool().stats();
    assert_eq!(
        (pool_after.hits, pool_after.misses),
        (pool_before.hits, pool_before.misses),
        "replay must read zero store blocks"
    );

    // Views are shared across connections, and a *plain INSPECT* from a
    // fresh connection short-circuits to the same replay.
    let mut sibling = Client::connect(addr).expect("connect sibling");
    let listed = sibling.list_views().expect("list");
    assert_eq!(listed.len(), 1);
    assert_eq!((listed[0].0.as_str(), listed[0].1.as_str()), ("v", "fresh"));
    let explain = sibling.explain(demo::QUERIES[0]).expect("explain");
    assert!(
        explain.contains("view: v, fresh"),
        "explain must show the replay:\n{explain}"
    );
    let optimized = sibling.inspect(demo::QUERIES[0]).expect("replayed inspect");
    assert_eq!(optimized.table, cold.table);
    assert_eq!(
        passes.load(Ordering::SeqCst),
        passes_before,
        "the optimizer replay must run zero forward passes"
    );
    let pool_final = store.pool().stats();
    assert_eq!(
        (pool_final.hits, pool_final.misses),
        (pool_before.hits, pool_before.misses),
        "the optimizer replay must read zero store blocks"
    );

    let stats_text = client.stats().expect("stats");
    assert!(
        stats_text.contains("views: builds=1 reads=1 refreshes=0"),
        "STATS must report view counters:\n{stats_text}"
    );
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_views_refuse_reads_and_refresh_folds_new_segments() {
    let dir = temp_dir("view-refresh");
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(Some(store_config(&dir))),
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.append("seq", wire_segment(0)).expect("append"), 16);
    client.create_view("v", demo::QUERIES[0]).expect("create");
    assert_eq!(
        client.refresh_view("v").expect("noop refresh"),
        deepbase_client::ViewRefreshOutcome::Noop
    );

    // A second append leaves the view stale: reads refuse with the typed
    // error, refresh folds exactly the one new segment in.
    assert_eq!(client.append("seq", wire_segment(1)).expect("append"), 16);
    match client.read_view("v") {
        Err(ClientError::Server(DniError::ViewStale { view, reason })) => {
            assert_eq!(view, "v");
            assert!(reason.contains("1 new segments"), "{reason}");
        }
        other => panic!("stale read must raise ViewStale, got {other:?}"),
    }
    assert_eq!(
        client.refresh_view("v").expect("incremental refresh"),
        deepbase_client::ViewRefreshOutcome::Incremental { new_segments: 1 }
    );
    assert_eq!(
        client.read_view("v").expect("refreshed read"),
        reference_after_appends(2),
        "the folded frame must be bit-identical to a cold rebuild"
    );

    assert!(client.drop_view("v").expect("drop"));
    assert!(!client.drop_view("v").expect("second drop"));
    match client.read_view("v") {
        Err(ClientError::Server(DniError::UnknownView(name))) => assert_eq!(name, "v"),
        other => panic!("dropped view must be unknown, got {other:?}"),
    }
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two connections read the view in a loop while a third appends and
/// refreshes: every successful read is bit-identical to the old frame or
/// the new one — never torn — and stale windows surface only as the
/// typed `ViewStale` error.
#[test]
fn concurrent_view_readers_see_old_or_new_frames_never_torn() {
    let dir = temp_dir("view-concurrent");
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(Some(store_config(&dir))),
    );
    let addr = handle.addr();

    let mut writer = Client::connect(addr).expect("connect writer");
    assert_eq!(writer.append("seq", wire_segment(0)).expect("append"), 16);
    writer.create_view("v", demo::QUERIES[0]).expect("create");
    let old_frame = writer.read_view("v").expect("old frame");
    assert_eq!(old_frame, reference_after_appends(1));
    let new_frame = reference_after_appends(2);

    let stop = AtomicUsize::new(0);
    thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (stop, old_frame, new_frame) = (&stop, &old_frame, &new_frame);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect reader");
                    let (mut saw_old, mut saw_new) = (0usize, 0usize);
                    while stop.load(Ordering::SeqCst) == 0 {
                        match client.read_view("v") {
                            Ok(table) if table == *old_frame => saw_old += 1,
                            Ok(table) if table == *new_frame => saw_new += 1,
                            Ok(_) => panic!("torn frame: matches neither old nor new"),
                            Err(ClientError::Server(DniError::ViewStale { .. })) => {}
                            Err(e) => panic!("reader failed: {e}"),
                        }
                    }
                    (saw_old, saw_new)
                })
            })
            .collect();

        // Let the readers hammer the old frame, then append + refresh.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(writer.append("seq", wire_segment(1)).expect("append"), 16);
        assert_eq!(
            writer.refresh_view("v").expect("refresh"),
            deepbase_client::ViewRefreshOutcome::Incremental { new_segments: 1 }
        );
        // Both readers must observe the refreshed frame before stopping.
        thread::sleep(Duration::from_millis(50));
        stop.store(1, Ordering::SeqCst);
        for reader in readers {
            let (saw_old, saw_new) = reader.join().expect("reader thread");
            assert!(saw_old > 0, "reader never saw the pre-append frame");
            assert!(saw_new > 0, "reader never saw the refreshed frame");
        }
    });
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// 500 deterministic fuzz cases against the frame decoder: random
/// payloads and truncated real requests. The server must answer every
/// delivered frame with a decodable response (protocol errors carry
/// code 0) or close the connection cleanly — never hang, never panic.
#[test]
fn fuzzed_frames_never_panic_the_decoder() {
    use std::io::Write;
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    let addr = handle.addr();

    // xorshift64: deterministic, dependency-free.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let templates = [
        wire::encode_request(&wire::Request::Append {
            dataset: "seq".into(),
            records: vec![wire::WireRecord {
                id: 1,
                symbols: vec![1, 2, 3],
                text: "abc".into(),
            }],
        }),
        wire::encode_request(&wire::Request::Batch {
            statements: vec!["a".into(), "b".into()],
            budget: wire::WireBudget::default(),
        }),
        wire::encode_request(&wire::Request::ViewCreate {
            name: "v".into(),
            statement: "SELECT".into(),
        }),
        wire::encode_request(&wire::Request::ViewRead { name: "v".into() }),
    ];

    let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
    for case in 0..500 {
        let payload: Vec<u8> = if case % 3 == 0 {
            // A real request truncated mid-structure.
            let template = &templates[(rng() % templates.len() as u64) as usize];
            let cut = 1 + (rng() as usize) % template.len();
            template[..cut].to_vec()
        } else {
            let len = (rng() % 64) as usize;
            (0..len).map(|_| (rng() & 0xff) as u8).collect()
        };
        // A random frame that happens to spell SHUTDOWN would drain the
        // server out from under the remaining cases.
        if matches!(wire::decode_request(&payload), Ok(wire::Request::Shutdown)) {
            continue;
        }
        let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(&payload);
        if raw.write_all(&framed).is_err() {
            raw = std::net::TcpStream::connect(addr).expect("reconnect after close");
            continue;
        }
        match wire::read_frame(&mut raw, wire::MAX_FRAME_BYTES) {
            Ok(frame) => {
                // Whatever came back must decode; malformed requests
                // specifically carry the reserved protocol-error code.
                let response = wire::decode_response(&frame)
                    .unwrap_or_else(|e| panic!("case {case}: undecodable response: {e}"));
                if let wire::Response::Error { code, .. } = response {
                    assert!(
                        code == wire::PROTOCOL_ERROR || code > 0,
                        "case {case}: error frame with invalid code"
                    );
                }
            }
            // Clean close is a legal answer; reconnect and continue.
            Err(_) => raw = std::net::TcpStream::connect(addr).expect("reconnect"),
        }
    }

    // The server survived all 500 cases and still answers real requests.
    let mut client = Client::connect(addr).expect("connect after fuzz");
    assert!(client
        .stats()
        .expect("stats after fuzz")
        .contains("server:"));
    assert!(!handle.is_shutting_down());
}

#[test]
fn idle_connections_are_closed_after_the_timeout() {
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = InspectionServer::start(
        "127.0.0.1:0",
        demo::catalog_sized(ND, NS, UNITS, &passes),
        ServerConfig {
            session: session_config(None),
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.stats().expect("first request on a live connection");
    thread::sleep(Duration::from_millis(400));
    // The server closed the idle connection; the next call fails with an
    // IO error rather than hanging.
    match client.stats() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a closed connection, got {other:?}"),
    }
}
