//! End-to-end tests of the inspection server over real TCP sockets:
//! bit-identical warm serving, per-connection panic isolation, global
//! admission sharing, shutdown drain, and cross-connection appends.
//!
//! Every test binds `127.0.0.1:0` (an ephemeral port) so they run in
//! parallel without colliding.

use deepbase::prelude::*;
use deepbase_client::{Client, ClientError};
use deepbase_server::{demo, wire, InspectionServer, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Small demo sizing: fast enough for tests, big enough that the
/// workload still streams multiple blocks (block size 64).
const ND: usize = 96;
const NS: usize = 12;
const UNITS: usize = 32;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "deepbase-server-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_config(dir: &PathBuf) -> StoreConfig {
    StoreConfig {
        block_records: 64,
        ..StoreConfig::at(dir)
    }
}

fn session_config(store: Option<StoreConfig>) -> SessionConfig {
    SessionConfig {
        inspection: demo::inspection(),
        store,
        ..SessionConfig::default()
    }
}

fn start_server(catalog: Catalog, session: SessionConfig) -> ServerHandle {
    InspectionServer::start(
        "127.0.0.1:0",
        catalog,
        ServerConfig {
            session,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// Reference answers from a plain in-process library session (no store,
/// live extraction) — the ground truth every serving path must match
/// bit for bit.
fn reference_tables() -> Vec<deepbase_relational::Table> {
    let passes = Arc::new(AtomicUsize::new(0));
    let mut session = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    session
        .run_batch(&demo::QUERIES)
        .expect("reference batch")
        .tables
}

#[test]
fn concurrent_warm_queries_are_bit_identical_with_zero_forward_passes() {
    let reference = reference_tables();

    // Populate the store once with a throwaway library session.
    let dir = temp_dir("warm");
    let populate_passes = Arc::new(AtomicUsize::new(0));
    let mut populate = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &populate_passes),
        session_config(Some(store_config(&dir))),
    );
    populate.run_batch(&demo::QUERIES).expect("populate store");
    drop(populate);
    assert!(populate_passes.load(Ordering::SeqCst) > 0);

    // Serve the same catalog (same weights, same fingerprints) from the
    // warm store; the server's own extractor must never run.
    let serve_passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &serve_passes),
        session_config(Some(store_config(&dir))),
    );
    let addr = handle.addr();

    thread::scope(|scope| {
        for _ in 0..3 {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (statement, expected) in demo::QUERIES.iter().zip(reference) {
                    let result = client.inspect(statement).expect("inspect over TCP");
                    assert_eq!(result.status, wire::STATUS_CONVERGED);
                    assert_eq!(
                        &result.table, expected,
                        "TCP answer must be bit-identical to the library run"
                    );
                }
            });
        }
    });

    assert_eq!(
        serve_passes.load(Ordering::SeqCst),
        0,
        "warm serving must run zero extractor forward passes"
    );
    let stats = handle.stats();
    assert_eq!(stats.connections, 3);
    assert_eq!(stats.queries_ok, 3 * demo::QUERIES.len() as u64);
    assert_eq!(stats.query_errors, 0);
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_connection_does_not_disturb_siblings() {
    let reference = reference_tables();
    let passes = Arc::new(AtomicUsize::new(0));
    let mut catalog = demo::catalog_sized(ND, NS, UNITS, &passes);
    catalog.add_hypotheses(
        "poison",
        vec![Arc::new(FnHypothesis::new("boom", |_| {
            panic!("poison hypothesis")
        }))],
    );
    let handle = start_server(catalog, session_config(None));
    let addr = handle.addr();

    const POISON: &str = "SELECT S.uid, S.unit_score INSPECT U.uid AND H.h USING corr \
                          OVER D.seq AS S FROM models M, units U, hypotheses H, inputs D \
                          WHERE H.name = 'poison'";
    // Statements that name their hypothesis set explicitly — an
    // unfiltered `H.h` would bind the poison set too and panic
    // legitimately. These three never touch it.
    let safe: Vec<usize> = vec![1, 2, 4];
    thread::scope(|scope| {
        // One connection repeatedly triggers a worker panic...
        scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect poison");
            for _ in 0..3 {
                match client.inspect(POISON) {
                    Err(ClientError::Server(e)) => {
                        assert!(
                            matches!(e, DniError::Internal(_)),
                            "contained panic must surface as DniError::Internal, got {e:?}"
                        );
                        assert_eq!(e.code(), 8);
                    }
                    other => panic!("poison query must fail with a server error, got {other:?}"),
                }
            }
            // The connection itself survives its own panics.
            let ok = client.inspect(demo::QUERIES[1]).expect("post-panic query");
            assert_eq!(&ok.table, &reference[1]);
        });
        // ...while sibling connections keep getting exact answers.
        for _ in 0..2 {
            let reference = &reference;
            let safe = &safe;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect sibling");
                for round in 0..3 {
                    for &qi in safe {
                        let result = client.inspect(demo::QUERIES[qi]).expect("sibling inspect");
                        assert_eq!(&result.table, &reference[qi], "round {round} query {qi}");
                    }
                }
            });
        }
    });

    let stats = handle.stats();
    assert_eq!(stats.query_errors, 3);
    assert_eq!(
        stats.queries_ok,
        1 + 2 * 3 * safe.len() as u64,
        "sibling queries (and the post-panic one) all succeed"
    );
}

#[test]
fn concurrent_batches_share_the_global_admission_budget() {
    // Budget of 12 stream columns against 32-unit queries: every batch
    // must split into waves, and *all* waves — across both connections —
    // acquire permits from one scheduler.
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        SessionConfig {
            admission: AdmissionConfig {
                max_stream_width: Some(12),
                max_scan_width: None,
            },
            ..session_config(None)
        },
    );
    let addr = handle.addr();

    let mut explain_client = Client::connect(addr).expect("connect explain");
    let explain = explain_client.explain(demo::QUERIES[0]).expect("explain");
    assert!(
        explain.contains("global scheduler"),
        "explain must show the process-wide admission line:\n{explain}"
    );

    let plans: Vec<wire::WirePlanStats> = thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect batch");
                    let batch = client
                        .batch(&demo::QUERIES, wire::WireBudget::default())
                        .expect("over-wide batch");
                    for result in &batch.results {
                        assert!(result.is_ok());
                    }
                    batch.plan
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let mut total_waves = 0;
    for plan in &plans {
        assert!(
            plan.admission_splits > 0,
            "a 32-wide group under budget 12 must split: {plan:?}"
        );
        assert!(plan.global_waves >= 2, "{plan:?}");
        total_waves += plan.global_waves;
    }
    let sched = handle.scheduler().stats();
    assert_eq!(
        sched.waves_admitted, total_waves,
        "every wave reported by PlanStats acquired a global permit"
    );
    assert!(
        sched.peak_stream_width <= 12,
        "summed in-flight width across connections stayed under the one budget \
         (peak {})",
        sched.peak_stream_width
    );
    assert!(sched.max_queue_depth >= 1);
}

#[test]
fn shutdown_drains_flushes_and_leaves_no_temporaries() {
    let dir = temp_dir("shutdown");
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(Some(store_config(&dir))),
    );
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    let batch = client
        .batch(&demo::QUERIES, wire::WireBudget::default())
        .expect("populating batch");
    assert!(batch.results.iter().all(Result::is_ok));
    client.shutdown().expect("shutdown acknowledged");
    // Blocks until every handler exited and the final compaction ran.
    handle.join();

    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("store dir readable") {
            let entry = entry.expect("dir entry");
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = entry.file_name().to_string_lossy().into_owned();
                assert!(
                    !name.contains(".tmp"),
                    "shutdown must not leave temporaries: {name}"
                );
            }
        }
    }

    // The write-backs that batch produced are durable: a fresh library
    // session over the same store serves the workload with zero passes.
    let warm_passes = Arc::new(AtomicUsize::new(0));
    let mut warm = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &warm_passes),
        session_config(Some(store_config(&dir))),
    );
    warm.run_batch(&demo::QUERIES).expect("warm re-read");
    assert_eq!(
        warm_passes.load(Ordering::SeqCst),
        0,
        "columns flushed before shutdown must serve a fresh session warm"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn appends_are_visible_to_every_connection() {
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    let addr = handle.addr();

    let mut writer = Client::connect(addr).expect("connect writer");
    let mut reader = Client::connect(addr).expect("connect reader");

    let before = reader.inspect(demo::QUERIES[0]).expect("cold inspect");
    assert_eq!(before.rows_read, ND as u64);

    // Grow the dataset over the wire: 16 fresh records in the demo
    // pattern, appended as one sealed segment.
    let grown = demo::records(ND + 16, NS).split_off(ND);
    let wire_records: Vec<wire::WireRecord> = grown
        .iter()
        .map(|r| wire::WireRecord {
            id: r.id as u64,
            symbols: r.symbols.clone(),
            text: r.text.clone(),
        })
        .collect();
    assert_eq!(writer.append("seq", wire_records).expect("append"), 16);

    // Both the writer's and the reader's next queries see the growth
    // (the reader's session silently rebuilds from the bumped master).
    for client in [&mut writer, &mut reader] {
        let after = client.inspect(demo::QUERIES[0]).expect("warm inspect");
        assert_eq!(after.rows_read, (ND + 16) as u64);
    }
    // And the answer matches an in-process session over the same grown
    // dataset, bit for bit.
    let check_passes = Arc::new(AtomicUsize::new(0));
    let mut check = Session::with_config(
        demo::catalog_sized(ND, NS, UNITS, &check_passes),
        session_config(None),
    );
    check
        .append_records("seq", demo::records(ND + 16, NS).split_off(ND))
        .expect("library append");
    let expected = check.run(demo::QUERIES[0]).expect("library run");
    let over_wire = reader.inspect(demo::QUERIES[0]).expect("post-append");
    assert_eq!(over_wire.table, expected);

    assert_eq!(handle.stats().appends, 1);
}

#[test]
fn malformed_frames_get_protocol_errors_and_the_connection_survives() {
    use std::io::Write;
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );

    let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect raw");
    // A well-framed payload with a bogus opcode.
    let garbage = [0x7fu8, 1, 2, 3];
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    let payload = wire::read_frame(&mut raw, wire::MAX_FRAME_BYTES).expect("error frame");
    match wire::decode_response(&payload).expect("decodable response") {
        wire::Response::Error { code, .. } => assert_eq!(code, wire::PROTOCOL_ERROR),
        other => panic!("expected a protocol error frame, got {other:?}"),
    }

    // The stream is still at a frame boundary: a real request works.
    let req = wire::encode_request(&wire::Request::Stats);
    raw.write_all(&(req.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(&req).unwrap();
    let payload = wire::read_frame(&mut raw, wire::MAX_FRAME_BYTES).expect("stats frame");
    assert!(matches!(
        wire::decode_response(&payload),
        Ok(wire::Response::Text(_))
    ));
    assert_eq!(handle.stats().protocol_errors, 1);
}

#[test]
fn per_request_budgets_tag_interrupted_answers() {
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = start_server(
        demo::catalog_sized(ND, NS, UNITS, &passes),
        session_config(None),
    );
    let mut client = Client::connect(handle.addr()).expect("connect");

    // One block of 64 records out of 96: the run budget stops the pass
    // early and the status byte says so.
    let capped = client
        .inspect_with_budget(
            demo::QUERIES[0],
            wire::WireBudget {
                deadline_ms: 0,
                max_records: 0,
                max_blocks: 1,
            },
        )
        .expect("budgeted inspect");
    assert_eq!(capped.status, wire::STATUS_BUDGET);
    assert!(capped.rows_read < ND as u64);

    // The same statement unbudgeted converges on the same connection:
    // interrupted frames never poison the score cache.
    let full = client.inspect(demo::QUERIES[0]).expect("full inspect");
    assert_eq!(full.status, wire::STATUS_CONVERGED);
    assert_eq!(full.rows_read, ND as u64);
    assert_eq!(full.table, reference_tables()[0]);
}

#[test]
fn idle_connections_are_closed_after_the_timeout() {
    let passes = Arc::new(AtomicUsize::new(0));
    let handle = InspectionServer::start(
        "127.0.0.1:0",
        demo::catalog_sized(ND, NS, UNITS, &passes),
        ServerConfig {
            session: session_config(None),
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.stats().expect("first request on a live connection");
    thread::sleep(Duration::from_millis(400));
    // The server closed the idle connection; the next call fails with an
    // IO error rather than hanging.
    match client.stats() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a closed connection, got {other:?}"),
    }
}
