//! Logistic regression probes.
//!
//! DeepBase's default *joint* measure (paper §4.3) trains a logistic
//! regression classifier that predicts a hypothesis behavior from the
//! activations of a unit group; the classifier's F1 is the group score and
//! the coefficient magnitudes are the per-unit scores.
//!
//! The key systems idea reproduced here is **model merging** (§5.2.1): a
//! multi-output model trains all |H| hypothesis probes as one weight matrix
//! with a shared input pass. Because the per-column losses and parameters
//! are independent, merged training is *exactly* equivalent to training the
//! columns separately (verified by tests), while amortizing the input
//! matrix products — the source of the paper's +MM speedup.

use deepbase_tensor::{init, ops, Matrix};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters. The defaults mirror the paper's setup:
/// Adam with Keras' default learning rate, L1 regularization, SGD
/// mini-batches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogRegConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L1 penalty weight (sparsity; the paper's §6.3.2 layer analysis).
    pub l1: f32,
    /// L2 penalty weight.
    pub l2: f32,
    /// Number of passes over the data in [`MultiLogReg::fit`].
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed (training is fully deterministic given the seed).
    pub seed: u64,
    /// Worker threads for the input matrix products; >1 engages the
    /// reproduction's parallel "GPU" device.
    pub threads: usize,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            learning_rate: 0.01,
            l1: 0.0,
            l2: 0.0,
            epochs: 20,
            batch_size: 64,
            seed: 0,
            threads: 1,
        }
    }
}

/// Adam optimizer state for one parameter matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u64,
}

impl AdamState {
    fn new(rows: usize, cols: usize) -> Self {
        AdamState {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
        }
    }

    /// One Adam update with the standard β₁=0.9, β₂=0.999. Operates on raw
    /// slices so weight matrices and bias vectors share one allocation-free
    /// path.
    fn update(&mut self, weights: &mut [f32], grad: &[f32], lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        self.t += 1;
        let t = self.t as f32;
        let (ms, vs) = (self.m.as_mut_slice(), self.v.as_mut_slice());
        assert_eq!(weights.len(), grad.len(), "adam slice mismatch");
        assert_eq!(ms.len(), grad.len(), "adam state mismatch");
        let bias1 = 1.0 - B1.powf(t);
        let bias2 = 1.0 - B2.powf(t);
        for i in 0..grad.len() {
            ms[i] = B1 * ms[i] + (1.0 - B1) * grad[i];
            vs[i] = B2 * vs[i] + (1.0 - B2) * grad[i] * grad[i];
            let m_hat = ms[i] / bias1;
            let v_hat = vs[i] / bias2;
            weights[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

/// Reusable buffers for [`MultiLogReg::sgd_step`] /
/// [`SoftmaxReg::sgd_step`]: the probability/error matrix, the weight
/// gradient, and the bias gradient are each written in place and survive
/// across blocks, so steady-state training steps allocate nothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StepScratch {
    err: Matrix,
    grad_w: Matrix,
    grad_b: Vec<f32>,
}

impl Default for StepScratch {
    fn default() -> Self {
        StepScratch {
            err: Matrix::zeros(0, 0),
            grad_w: Matrix::zeros(0, 0),
            grad_b: Vec::new(),
        }
    }
}

impl StepScratch {
    /// Ensures buffer shapes for a batch of `rows` with the given model
    /// dimensions, reallocating only when a shape changes (the streaming
    /// engines feed constant-size blocks, so this is a no-op in steady
    /// state).
    fn ensure(&mut self, rows: usize, n_features: usize, n_outputs: usize) {
        if self.err.shape() != (rows, n_outputs) {
            self.err = Matrix::zeros(rows, n_outputs);
        }
        if self.grad_w.shape() != (n_features, n_outputs) {
            self.grad_w = Matrix::zeros(n_features, n_outputs);
        }
        if self.grad_b.len() != n_outputs {
            self.grad_b = vec![0.0; n_outputs];
        }
    }
}

/// Multi-output binary logistic regression: one sigmoid output per
/// hypothesis, sharing the input pass. A single-output probe is the
/// special case `n_outputs == 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLogReg {
    /// `n_features x n_outputs` weight matrix.
    weights: Matrix,
    /// Per-output bias.
    bias: Vec<f32>,
    /// Per-output positive-class loss weight (1.0 = unweighted). Class
    /// weighting keeps rare-event probes (e.g. one period per sentence)
    /// from collapsing to the all-negative predictor.
    pos_weights: Vec<f32>,
    adam_w: AdamState,
    adam_b: AdamState,
    config: LogRegConfig,
    /// Reused per-step buffers; not part of the model state.
    #[serde(skip)]
    scratch: StepScratch,
}

impl MultiLogReg {
    /// Creates a zero-initialized model (the convex objective does not need
    /// random init, and zero init keeps merged == separate exactly).
    pub fn new(n_features: usize, n_outputs: usize, config: LogRegConfig) -> Self {
        MultiLogReg {
            weights: Matrix::zeros(n_features, n_outputs),
            bias: vec![0.0; n_outputs],
            pos_weights: vec![1.0; n_outputs],
            adam_w: AdamState::new(n_features, n_outputs),
            adam_b: AdamState::new(1, n_outputs),
            config,
            scratch: StepScratch::default(),
        }
    }

    /// Sets per-output positive-class weights (length must match outputs).
    pub fn set_pos_weights(&mut self, weights: Vec<f32>) {
        assert_eq!(weights.len(), self.n_outputs(), "pos_weights length");
        self.pos_weights = weights;
    }

    /// Number of input features (units).
    pub fn n_features(&self) -> usize {
        self.weights.rows()
    }

    /// Number of outputs (hypotheses).
    pub fn n_outputs(&self) -> usize {
        self.weights.cols()
    }

    /// Borrow the weight matrix (features x outputs).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Predicted probabilities, shape `n x n_outputs`.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut logits = if self.config.threads > 1 {
            x.matmul_parallel(&self.weights, self.config.threads)
        } else {
            x.matmul(&self.weights)
        };
        logits.add_row_broadcast(&self.bias);
        logits.map(ops::sigmoid)
    }

    /// One gradient step on a mini-batch: mean BCE gradient + L2 + L1
    /// subgradient, applied with Adam.
    ///
    /// Fully fused hot path: the forward pass, error, weight gradient and
    /// bias gradient are all written into reusable scratch buffers
    /// ([`StepScratch`]), so a steady-state training step performs zero
    /// heap allocations.
    pub fn sgd_step(&mut self, x: &Matrix, y: &Matrix) {
        assert_eq!(x.rows(), y.rows(), "batch row mismatch");
        assert_eq!(y.cols(), self.n_outputs(), "target output mismatch");
        assert_eq!(x.cols(), self.n_features(), "feature mismatch");
        let n = x.rows().max(1) as f32;
        let n_outputs = self.n_outputs();
        self.scratch.ensure(x.rows(), self.n_features(), n_outputs);

        // Forward pass into the error buffer: err = sigmoid(xW + b).
        let err = &mut self.scratch.err;
        if self.config.threads > 1 {
            x.matmul_parallel_into(&self.weights, self.config.threads, err);
        } else {
            x.matmul_into(&self.weights, err);
        }
        err.add_row_broadcast(&self.bias);
        err.map_inplace(ops::sigmoid);

        // err = (probs - y), with the positive-class weight fused in.
        let weighted = self.pos_weights.iter().any(|&w| w != 1.0);
        for (err_row, y_row) in err.as_mut_slice().chunks_mut(n_outputs).zip(y.rows_iter()) {
            for ((e, &t), &w) in err_row.iter_mut().zip(y_row).zip(&self.pos_weights) {
                *e -= t;
                if weighted && t > 0.5 {
                    *e *= w;
                }
            }
        }

        // grad_w = x^T err / n (+ regularization, not applied to bias,
        // matching scikit-learn/Keras), written in place.
        let grad_w = &mut self.scratch.grad_w;
        x.t_matmul_into(err, grad_w);
        grad_w.scale_inplace(1.0 / n);
        if self.config.l2 > 0.0 {
            grad_w.add_scaled(&self.weights, self.config.l2);
        }
        if self.config.l1 > 0.0 {
            let l1 = self.config.l1;
            for (g, &w) in grad_w
                .as_mut_slice()
                .iter_mut()
                .zip(self.weights.as_slice())
            {
                *g += l1
                    * if w > 0.0 {
                        1.0
                    } else if w < 0.0 {
                        -1.0
                    } else {
                        0.0
                    };
            }
        }

        // grad_b = column means of err, in place.
        let grad_b = &mut self.scratch.grad_b;
        grad_b.fill(0.0);
        for err_row in err.as_slice().chunks(n_outputs.max(1)) {
            for (b, &e) in grad_b.iter_mut().zip(err_row) {
                *b += e;
            }
        }
        for b in grad_b.iter_mut() {
            *b /= n;
        }

        let lr = self.config.learning_rate;
        self.adam_w
            .update(self.weights.as_mut_slice(), grad_w.as_slice(), lr);
        self.adam_b.update(&mut self.bias, grad_b, lr);
    }

    /// Full training run: `epochs` passes of seeded-shuffled mini-batches.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) {
        assert_eq!(x.rows(), y.rows(), "dataset row mismatch");
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = init::seeded_rng(self.config.seed);
        let bs = self.config.batch_size.max(1);
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(bs) {
                let xb = gather_rows(x, chunk);
                let yb = gather_rows(y, chunk);
                self.sgd_step(&xb, &yb);
            }
        }
    }

    /// Incremental training on one block (a single pass of mini-batches, in
    /// order): the `process_block` API of paper §5.2.2.
    pub fn partial_fit(&mut self, x: &Matrix, y: &Matrix) {
        let bs = self.config.batch_size.max(1);
        let n = x.rows();
        let mut start = 0;
        while start < n {
            let end = (start + bs).min(n);
            let xb = x.slice_rows(start, end);
            let yb = y.slice_rows(start, end);
            self.sgd_step(&xb, &yb);
            start = end;
        }
    }

    /// Per-output binary F1 on a labelled set.
    pub fn f1_per_output(&self, x: &Matrix, y: &Matrix) -> Vec<f32> {
        let probs = self.predict_proba(x);
        (0..self.n_outputs())
            .map(|h| {
                let pred = probs.col(h);
                let targ = y.col(h);
                crate::classify::f1_score(&pred, &targ)
            })
            .collect()
    }

    /// Absolute coefficient of each (feature, output) pair — DeepBase's
    /// per-unit scores for joint measures.
    pub fn unit_scores(&self, output: usize) -> Vec<f32> {
        (0..self.n_features())
            .map(|f| self.weights.get(f, output).abs())
            .collect()
    }

    /// Number of coefficients with |w| above `threshold` for an output —
    /// the "unit group size" statistic of paper §6.3.2 (L1 selection).
    pub fn selected_units(&self, output: usize, threshold: f32) -> usize {
        (0..self.n_features())
            .filter(|&f| self.weights.get(f, output).abs() > threshold)
            .count()
    }

    /// Extracts a single-output probe equivalent to column `h` of the
    /// merged model (used by tests to verify merging exactness).
    pub fn extract_column(&self, h: usize) -> MultiLogReg {
        let mut single = MultiLogReg::new(self.n_features(), 1, self.config.clone());
        for f in 0..self.n_features() {
            single.weights.set(f, 0, self.weights.get(f, h));
        }
        single.bias[0] = self.bias[h];
        single
    }
}

/// Multiclass softmax regression (used for POS-tag probes where the
/// hypothesis returns one of `k` tags per symbol, §6.3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftmaxReg {
    weights: Matrix,
    bias: Vec<f32>,
    adam_w: AdamState,
    adam_b: AdamState,
    config: LogRegConfig,
    n_classes: usize,
}

impl SoftmaxReg {
    /// Creates a zero-initialized `k`-class probe.
    pub fn new(n_features: usize, n_classes: usize, config: LogRegConfig) -> Self {
        SoftmaxReg {
            weights: Matrix::zeros(n_features, n_classes),
            bias: vec![0.0; n_classes],
            adam_w: AdamState::new(n_features, n_classes),
            adam_b: AdamState::new(1, n_classes),
            config,
            n_classes,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class probabilities, shape `n x k`.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut logits = if self.config.threads > 1 {
            x.matmul_parallel(&self.weights, self.config.threads)
        } else {
            x.matmul(&self.weights)
        };
        logits.add_row_broadcast(&self.bias);
        ops::softmax_rows(&logits)
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }

    /// One gradient step on a mini-batch with integer targets.
    pub fn sgd_step(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "batch target mismatch");
        let n = x.rows().max(1) as f32;
        let mut err = self.predict_proba(x);
        for (r, &t) in y.iter().enumerate() {
            let v = err.get(r, t);
            err.set(r, t, v - 1.0);
        }
        let mut grad_w = x.t_matmul(&err);
        grad_w.scale_inplace(1.0 / n);
        if self.config.l2 > 0.0 {
            grad_w.add_scaled(&self.weights, self.config.l2);
        }
        let grad_b: Vec<f32> = err.col_sums().iter().map(|s| s / n).collect();
        let lr = self.config.learning_rate;
        self.adam_w
            .update(self.weights.as_mut_slice(), grad_w.as_slice(), lr);
        self.adam_b.update(&mut self.bias, &grad_b, lr);
    }

    /// Full training run with seeded shuffling.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) {
        assert_eq!(x.rows(), y.len(), "dataset target mismatch");
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = init::seeded_rng(self.config.seed);
        let bs = self.config.batch_size.max(1);
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(bs) {
                let xb = gather_rows(x, chunk);
                let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                self.sgd_step(&xb, &yb);
            }
        }
    }

    /// Accuracy on a labelled set.
    pub fn accuracy(&self, x: &Matrix, y: &[usize]) -> f32 {
        crate::classify::accuracy_multiclass(&self.predict(x), y)
    }
}

/// Copies the given rows of `m` into a new matrix (mini-batch gather).
pub fn gather_rows(m: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(indices.len(), m.cols());
    for (dst, &src) in indices.iter().enumerate() {
        out.row_mut(dst).copy_from_slice(m.row(src));
    }
    out
}

/// Tracks a validation-score history and reports the early-stopping error
/// from paper §5.2.2: the absolute difference between the latest score and
/// the mean over the trailing window.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    window: usize,
    history: Vec<f32>,
}

impl ConvergenceTracker {
    /// Window of trailing scores to average (paper default: enough batches
    /// to cover 2,048 tuples).
    pub fn new(window: usize) -> Self {
        ConvergenceTracker {
            window: window.max(1),
            history: Vec::new(),
        }
    }

    /// Records `score`, returning the current error estimate
    /// (infinity until the window has filled).
    pub fn push(&mut self, score: f32) -> f32 {
        self.history.push(score);
        if self.history.len() <= self.window {
            return f32::INFINITY;
        }
        let tail = &self.history[self.history.len() - 1 - self.window..self.history.len() - 1];
        let avg = tail.iter().sum::<f32>() / tail.len() as f32;
        (score - avg).abs()
    }

    /// Latest score, if any.
    pub fn latest(&self) -> Option<f32> {
        self.history.last().copied()
    }

    /// Number of recorded scores.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when no scores have been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

/// `folds`-fold cross-validated F1 of a single-output logreg probe;
/// the paper's default reporting protocol (§4.3: "F1 on 5-fold CV").
pub fn kfold_f1(x: &Matrix, y: &[f32], folds: usize, config: &LogRegConfig) -> f32 {
    assert_eq!(x.rows(), y.len(), "kfold target mismatch");
    let n = x.rows();
    let folds = folds.clamp(2, n.max(2));
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = init::seeded_rng(config.seed.wrapping_add(0x5EED));
    order.shuffle(&mut rng);

    let mut scores = Vec::with_capacity(folds);
    for f in 0..folds {
        let test_idx: Vec<usize> = order.iter().copied().skip(f).step_by(folds).collect();
        let train_idx: Vec<usize> = order
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % folds != f)
            .map(|(_, v)| v)
            .collect();
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        let xt = gather_rows(x, &train_idx);
        let yt = Matrix::from_vec(
            train_idx.len(),
            1,
            train_idx.iter().map(|&i| y[i]).collect(),
        )
        .unwrap();
        let xv = gather_rows(x, &test_idx);
        let yv: Vec<f32> = test_idx.iter().map(|&i| y[i]).collect();
        let mut model = MultiLogReg::new(x.cols(), 1, config.clone());
        model.fit(&xt, &yt);
        let pred = model.predict_proba(&xv).col(0);
        scores.push(crate::classify::f1_score(&pred, &yv));
    }
    if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f32>() / scores.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy set: y = 1 iff x0 + x1 > 1.
    fn toy_dataset(n: usize) -> (Matrix, Matrix) {
        let x = Matrix::from_fn(n, 2, |r, c| ((r * 37 + c * 17) % 100) as f32 / 100.0);
        let y = Matrix::from_fn(n, 1, |r, _| {
            if x.get(r, 0) + x.get(r, 1) > 1.0 {
                1.0
            } else {
                0.0
            }
        });
        (x, y)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (x, y) = toy_dataset(200);
        let mut model = MultiLogReg::new(
            2,
            1,
            LogRegConfig {
                epochs: 100,
                learning_rate: 0.1,
                ..Default::default()
            },
        );
        model.fit(&x, &y);
        let f1 = model.f1_per_output(&x, &y)[0];
        assert!(f1 > 0.95, "F1 {f1}");
    }

    #[test]
    fn merged_training_equals_separate_training() {
        // The central model-merging exactness claim (§5.2.1).
        let (x, y0) = toy_dataset(120);
        let y1 = Matrix::from_fn(120, 1, |r, _| if x.get(r, 0) > 0.5 { 1.0 } else { 0.0 });
        let y = y0.hstack(&y1).unwrap();

        let config = LogRegConfig {
            epochs: 30,
            learning_rate: 0.05,
            ..Default::default()
        };
        let mut merged = MultiLogReg::new(2, 2, config.clone());
        merged.fit(&x, &y);

        let mut sep0 = MultiLogReg::new(2, 1, config.clone());
        sep0.fit(&x, &y0);
        let mut sep1 = MultiLogReg::new(2, 1, config);
        sep1.fit(&x, &y1);

        for f in 0..2 {
            assert!(
                (merged.weights().get(f, 0) - sep0.weights().get(f, 0)).abs() < 1e-4,
                "output 0 weight {f} diverged"
            );
            assert!(
                (merged.weights().get(f, 1) - sep1.weights().get(f, 0)).abs() < 1e-4,
                "output 1 weight {f} diverged"
            );
        }
    }

    #[test]
    fn merged_training_equals_separate_with_regularization() {
        let (x, y0) = toy_dataset(80);
        let y1 = Matrix::from_fn(80, 1, |r, _| if x.get(r, 1) > 0.6 { 1.0 } else { 0.0 });
        let y = y0.hstack(&y1).unwrap();
        let config = LogRegConfig {
            epochs: 15,
            learning_rate: 0.05,
            l1: 0.01,
            l2: 0.01,
            ..Default::default()
        };
        let mut merged = MultiLogReg::new(2, 2, config.clone());
        merged.fit(&x, &y);
        let mut sep = MultiLogReg::new(2, 1, config);
        sep.fit(&x, &y0);
        for f in 0..2 {
            assert!((merged.weights().get(f, 0) - sep.weights().get(f, 0)).abs() < 1e-4);
        }
    }

    #[test]
    fn parallel_device_matches_single_core() {
        let (x, y) = toy_dataset(150);
        let mut cpu = MultiLogReg::new(
            2,
            1,
            LogRegConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        let mut gpu = MultiLogReg::new(
            2,
            1,
            LogRegConfig {
                epochs: 10,
                threads: 4,
                ..Default::default()
            },
        );
        cpu.fit(&x, &y);
        gpu.fit(&x, &y);
        for f in 0..2 {
            assert!((cpu.weights().get(f, 0) - gpu.weights().get(f, 0)).abs() < 1e-3);
        }
    }

    #[test]
    fn l1_regularization_sparsifies() {
        // 6 features, only feature 0 is informative.
        let n = 300;
        let x = Matrix::from_fn(n, 6, |r, c| {
            if c == 0 {
                (r % 2) as f32
            } else {
                ((r * (c + 7) * 31) % 100) as f32 / 100.0
            }
        });
        let y = Matrix::from_fn(n, 1, |r, _| (r % 2) as f32);
        let dense_cfg = LogRegConfig {
            epochs: 60,
            learning_rate: 0.05,
            ..Default::default()
        };
        let sparse_cfg = LogRegConfig {
            l1: 0.05,
            ..dense_cfg.clone()
        };
        let mut dense = MultiLogReg::new(6, 1, dense_cfg);
        let mut sparse = MultiLogReg::new(6, 1, sparse_cfg);
        dense.fit(&x, &y);
        sparse.fit(&x, &y);
        assert!(sparse.selected_units(0, 0.1) <= dense.selected_units(0, 0.1));
        assert!(sparse.unit_scores(0)[0] > 0.3, "informative unit kept");
    }

    #[test]
    fn partial_fit_progresses_toward_fit() {
        let (x, y) = toy_dataset(256);
        let mut model = MultiLogReg::new(
            2,
            1,
            LogRegConfig {
                learning_rate: 0.1,
                ..Default::default()
            },
        );
        for _ in 0..50 {
            model.partial_fit(&x, &y);
        }
        assert!(model.f1_per_output(&x, &y)[0] > 0.9);
    }

    #[test]
    fn extract_column_predicts_identically() {
        let (x, y0) = toy_dataset(100);
        let y1 = y0.map(|v| 1.0 - v);
        let y = y0.hstack(&y1).unwrap();
        let mut merged = MultiLogReg::new(
            2,
            2,
            LogRegConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        merged.fit(&x, &y);
        let col1 = merged.extract_column(1);
        let merged_prob = merged.predict_proba(&x).col(1);
        let single_prob = col1.predict_proba(&x).col(0);
        for (a, b) in merged_prob.iter().zip(single_prob.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_probe_learns_three_classes() {
        let n = 300;
        let x = Matrix::from_fn(n, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
        let y: Vec<usize> = (0..n).map(|r| r % 3).collect();
        let mut probe = SoftmaxReg::new(
            3,
            3,
            LogRegConfig {
                epochs: 40,
                learning_rate: 0.1,
                ..Default::default()
            },
        );
        probe.fit(&x, &y);
        assert!(probe.accuracy(&x, &y) > 0.99);
    }

    #[test]
    fn softmax_probabilities_are_distributions() {
        let probe = SoftmaxReg::new(2, 4, LogRegConfig::default());
        let x = Matrix::from_fn(5, 2, |r, c| (r + c) as f32);
        let p = probe.predict_proba(&x);
        for r in 0..5 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn convergence_tracker_err_drops_when_stable() {
        let mut tracker = ConvergenceTracker::new(4);
        assert_eq!(tracker.push(0.1), f32::INFINITY);
        for s in [0.4, 0.6, 0.7, 0.72] {
            tracker.push(s);
        }
        let err_moving = tracker.push(0.9);
        for _ in 0..6 {
            tracker.push(0.9);
        }
        let err_stable = tracker.push(0.9);
        assert!(err_stable < err_moving);
        assert!(err_stable < 1e-6);
    }

    #[test]
    fn kfold_f1_high_for_separable_low_for_noise() {
        let (x, y_mat) = toy_dataset(160);
        let y: Vec<f32> = y_mat.col(0);
        let cfg = LogRegConfig {
            epochs: 40,
            learning_rate: 0.1,
            ..Default::default()
        };
        let good = kfold_f1(&x, &y, 4, &cfg);
        // Random labels: deterministic pseudo-random, balanced.
        let noise: Vec<f32> = (0..160).map(|i| ((i * 7919) % 2) as f32).collect();
        let bad = kfold_f1(&x, &noise, 4, &cfg);
        assert!(good > 0.9, "good {good}");
        assert!(bad < good, "bad {bad} not below good {good}");
    }

    #[test]
    fn gather_rows_selects_expected() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 10 + c) as f32);
        let g = gather_rows(&m, &[2, 0]);
        assert_eq!(g.row(0), &[20.0, 21.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
    }
}
