//! Pearson correlation: batch, streaming, and Fisher-transform confidence
//! intervals.
//!
//! Correlation is DeepBase's default *independent* affinity measure
//! (paper §4.3). The streaming accumulator is what makes the paper's early
//! stopping optimization (§5.2.2) possible: affinity is an empirical
//! estimate over a sample, and the Fisher-transform confidence interval
//! tells the engine when the estimate has converged.

/// Streaming accumulator for Pearson's r over a pair of variables.
///
/// Maintains *shifted* co-moments in a single pass: the first observation
/// (or the first block's mean) becomes a per-variable shift `k`, and all
/// sums accumulate `x − k` instead of raw `x`. Correlation is shift
/// invariant, and working near the data's own origin removes the
/// catastrophic cancellation of `Σx² − (Σx)²/n` when `mean² ≫ variance`
/// — a constant column pushed element-wise has *exactly* zero variance
/// here. The accumulator also tracks a running bound on the rounding
/// error of each variance (`err_xx`/`err_yy`); [`Self::correlation`]
/// treats any variance inside that bound as "numerically constant" and
/// scores it 0 instead of amplifying noise.
#[derive(Debug, Clone, Default)]
pub struct StreamingPearson {
    n: u64,
    /// Per-variable shifts, fixed by the first data to arrive.
    kx: f64,
    ky: f64,
    /// Shifted sums: `Σ(x−kx)`, `Σ(y−ky)`, and their co-moments.
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_yy: f64,
    sum_xy: f64,
    /// Accumulated bounds on the floating-point error of the variances.
    err_xx: f64,
    err_yy: f64,
}

impl StreamingPearson {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Adds one `(x, y)` observation.
    #[inline]
    pub fn push(&mut self, x: f32, y: f32) {
        let (x, y) = (x as f64, y as f64);
        if self.n == 0 {
            self.kx = x;
            self.ky = y;
        }
        let dx = x - self.kx;
        let dy = y - self.ky;
        self.n += 1;
        self.sum_x += dx;
        self.sum_y += dy;
        self.sum_xx += dx * dx;
        self.sum_yy += dy * dy;
        self.sum_xy += dx * dy;
        self.err_xx += f64::EPSILON * dx * dx;
        self.err_yy += f64::EPSILON * dy * dy;
    }

    /// Adds a block of paired observations.
    ///
    /// Accumulates the block's (shifted) moments in registers before
    /// folding them into the state once — the vectorizable hot path
    /// behind the correlation measure (the per-`push` path updates the
    /// struct fields per element).
    pub fn push_block(&mut self, xs: &[f32], ys: &[f32]) {
        assert_eq!(xs.len(), ys.len(), "pearson block length mismatch");
        if xs.is_empty() {
            return;
        }
        if self.n == 0 {
            self.kx = xs[0] as f64;
            self.ky = ys[0] as f64;
        }
        let (kx, ky) = (self.kx, self.ky);
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            let dx = x as f64 - kx;
            let dy = y as f64 - ky;
            sx += dx;
            sy += dy;
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
        }
        self.fold_shifted(xs.len() as u64, sx, sy, sxx, syy, sxy);
    }

    /// Adds a block where `x` is a strided column view: observation `i`
    /// pairs `xs[offset + i * stride]` with `ys[i]`.
    ///
    /// This is the columnar entry point for row-major behavior matrices
    /// (`stride` = number of units, `offset` = unit index): one pass per
    /// unit with register accumulation, instead of scattering every row
    /// across all unit accumulators.
    pub fn push_block_strided(&mut self, xs: &[f32], offset: usize, stride: usize, ys: &[f32]) {
        assert!(stride > 0, "pearson stride must be positive");
        if ys.is_empty() {
            return;
        }
        assert!(
            offset + (ys.len() - 1) * stride < xs.len(),
            "pearson strided block out of range"
        );
        if self.n == 0 {
            self.kx = xs[offset] as f64;
            self.ky = ys[0] as f64;
        }
        let (kx, ky) = (self.kx, self.ky);
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        let mut idx = offset;
        for &y in ys {
            let dx = xs[idx] as f64 - kx;
            let dy = y as f64 - ky;
            sx += dx;
            sy += dy;
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
            idx += stride;
        }
        self.fold_shifted(ys.len() as u64, sx, sy, sxx, syy, sxy);
    }

    /// Folds block moments already expressed in this accumulator's
    /// shifted frame, charging the summation-error budget at the block's
    /// own (shifted, i.e. small) magnitude.
    fn fold_shifted(&mut self, n: u64, sx: f64, sy: f64, sxx: f64, syy: f64, sxy: f64) {
        self.n += n;
        self.sum_x += sx;
        self.sum_y += sy;
        self.sum_xx += sxx;
        self.sum_yy += syy;
        self.sum_xy += sxy;
        let bn = n as f64;
        self.err_xx += f64::EPSILON * bn * sxx.abs();
        self.err_yy += f64::EPSILON * bn * syy.abs();
    }

    /// Folds pre-aggregated **raw** (unshifted) block moments into the
    /// state. Lets callers that score many units against one shared `y`
    /// column (the correlation measure) compute the `y` moments once per
    /// block. The raw sums are re-centered onto the accumulator's shift
    /// (adopted from the first block's means), and the cancellation cost
    /// of that re-centering — which scales with the *raw* magnitude, per
    /// block rather than per dataset — is added to the error bound so
    /// [`Self::correlation`] can tell surviving signal from noise.
    pub fn accumulate(
        &mut self,
        n: u64,
        sum_x: f64,
        sum_y: f64,
        sum_xx: f64,
        sum_yy: f64,
        sum_xy: f64,
    ) {
        if n == 0 {
            return;
        }
        let bn = n as f64;
        if self.n == 0 {
            self.kx = sum_x / bn;
            self.ky = sum_y / bn;
        }
        let (kx, ky) = (self.kx, self.ky);
        let sx = sum_x - bn * kx;
        let sy = sum_y - bn * ky;
        let sxx = sum_xx - 2.0 * kx * sum_x + bn * kx * kx;
        let syy = sum_yy - 2.0 * ky * sum_y + bn * ky * ky;
        let sxy = sum_xy - ky * sum_x - kx * sum_y + bn * kx * ky;
        self.n += n;
        self.sum_x += sx;
        self.sum_y += sy;
        self.sum_xx += sxx;
        self.sum_yy += syy;
        self.sum_xy += sxy;
        self.err_xx += f64::EPSILON * bn * sum_xx.abs();
        self.err_yy += f64::EPSILON * bn * sum_yy.abs();
    }

    /// Merges another accumulator into this one (used by the parallel
    /// device to combine per-thread partials). The other accumulator's
    /// moments are translated from its shift onto this one's.
    pub fn merge(&mut self, other: &StreamingPearson) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let on = other.n as f64;
        let dx = other.kx - self.kx;
        let dy = other.ky - self.ky;
        let sxx = other.sum_xx + 2.0 * dx * other.sum_x + on * dx * dx;
        let syy = other.sum_yy + 2.0 * dy * other.sum_y + on * dy * dy;
        let sxy = other.sum_xy + dy * other.sum_x + dx * other.sum_y + on * dx * dy;
        self.n += other.n;
        self.sum_x += other.sum_x + on * dx;
        self.sum_y += other.sum_y + on * dy;
        self.sum_xx += sxx;
        self.sum_yy += syy;
        self.sum_xy += sxy;
        // The translation above can cancel (e.g. when a partial's shift is
        // a far outlier from its data), so the error budget must be
        // charged at the magnitude of the *terms*, not of the possibly
        // tiny result.
        let mag_xx = other.sum_xx.abs() + 2.0 * (dx * other.sum_x).abs() + on * dx * dx;
        let mag_yy = other.sum_yy.abs() + 2.0 * (dy * other.sum_y).abs() + on * dy * dy;
        self.err_xx += other.err_xx + f64::EPSILON * on * mag_xx;
        self.err_yy += other.err_yy + f64::EPSILON * on * mag_yy;
    }

    /// Current correlation estimate.
    ///
    /// Returns 0 when either variable is (numerically) constant — the
    /// convention the DeepBase engine relies on for padding symbols and
    /// dead units, where "no signal" must not poison score tables with
    /// NaN or clamped cancellation noise. "Numerically constant" means
    /// the variance sits inside the accumulator's tracked rounding-error
    /// bound, so a genuinely varying column survives even at a large mean
    /// while a constant column of any magnitude scores 0. Non-finite
    /// observations (saturated or diverged units yield `inf`/NaN sums,
    /// and `inf − inf` variances are NaN that passes any `<=` guard)
    /// also score 0 rather than NaN.
    pub fn correlation(&self) -> f32 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let cov = self.sum_xy - self.sum_x * self.sum_y / n;
        let var_x = self.sum_xx - self.sum_x * self.sum_x / n;
        let var_y = self.sum_yy - self.sum_y * self.sum_y / n;
        // Non-finite sums (saturated units) make the variances NaN or
        // infinite; catch them before the threshold comparisons, which
        // NaN would silently pass.
        if !var_x.is_finite() || !var_y.is_finite() {
            return 0.0;
        }
        // Noise floor: the tracked per-operation error bound (with a 4x
        // safety factor), plus the final `sxx − sx²/n` subtraction's own
        // rounding at the shifted (small) magnitude, plus an absolute
        // epsilon for exactly-zero variances.
        let noise_floor = |err: f64, sum_sq: f64| {
            1e-12_f64
                .max(4.0 * err)
                .max(n * f64::EPSILON * sum_sq.abs())
        };
        if var_x <= noise_floor(self.err_xx, self.sum_xx)
            || var_y <= noise_floor(self.err_yy, self.sum_yy)
        {
            return 0.0;
        }
        let r = cov / (var_x * var_y).sqrt();
        if !r.is_finite() {
            return 0.0;
        }
        r.clamp(-1.0, 1.0) as f32
    }

    /// Half-width of the Fisher-transform confidence interval around the
    /// current estimate, for the given `z` critical value (1.96 ≈ 95%).
    ///
    /// The paper's early-stopping criterion compares this against the user
    /// threshold ε: the transform `z = atanh(r)` is approximately normal
    /// with standard error `1/sqrt(n - 3)`, and the half-width is mapped
    /// back through `tanh`.
    pub fn fisher_half_width(&self, z_crit: f64) -> f32 {
        if self.n < 4 {
            return f32::INFINITY;
        }
        let r = self.correlation() as f64;
        // Guard atanh at the boundary.
        let r = r.clamp(-0.999_999, 0.999_999);
        let fisher_z = r.atanh();
        let se = 1.0 / ((self.n as f64) - 3.0).sqrt();
        let lo = (fisher_z - z_crit * se).tanh();
        let hi = (fisher_z + z_crit * se).tanh();
        (((hi - lo) / 2.0) as f32).abs()
    }

    /// True once the CI half-width is below `epsilon`.
    pub fn converged(&self, epsilon: f32, z_crit: f64) -> bool {
        self.fisher_half_width(z_crit) <= epsilon
    }

    /// The accumulator's complete internal state as raw bits: the
    /// observation count followed by the nine `f64` fields in declaration
    /// order. [`StreamingPearson::from_state_bits`] reconstructs an
    /// accumulator that is bit-identical in every future operation —
    /// the serialization contract behind durable materialized views,
    /// where a stored state must merge exactly like the live one it
    /// snapshots.
    pub fn state_bits(&self) -> [u64; 10] {
        [
            self.n,
            self.kx.to_bits(),
            self.ky.to_bits(),
            self.sum_x.to_bits(),
            self.sum_y.to_bits(),
            self.sum_xx.to_bits(),
            self.sum_yy.to_bits(),
            self.sum_xy.to_bits(),
            self.err_xx.to_bits(),
            self.err_yy.to_bits(),
        ]
    }

    /// Rebuilds an accumulator from [`StreamingPearson::state_bits`]
    /// output, bit-exactly.
    pub fn from_state_bits(bits: [u64; 10]) -> StreamingPearson {
        StreamingPearson {
            n: bits[0],
            kx: f64::from_bits(bits[1]),
            ky: f64::from_bits(bits[2]),
            sum_x: f64::from_bits(bits[3]),
            sum_y: f64::from_bits(bits[4]),
            sum_xx: f64::from_bits(bits[5]),
            sum_yy: f64::from_bits(bits[6]),
            sum_xy: f64::from_bits(bits[7]),
            err_xx: f64::from_bits(bits[8]),
            err_yy: f64::from_bits(bits[9]),
        }
    }
}

/// Critical value for a 95% two-sided normal interval.
pub const Z_95: f64 = 1.959_963_985;

/// One-shot Pearson correlation over two slices.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    let mut acc = StreamingPearson::new();
    acc.push_block(xs, ys);
    acc.correlation()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|x| -0.5 * x).collect();
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn constant_input_yields_zero() {
        let xs = vec![3.0f32; 10];
        let ys: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert_eq!(pearson(&xs, &ys), 0.0);
        assert_eq!(pearson(&ys, &xs), 0.0);
    }

    #[test]
    fn large_magnitude_constant_column_scores_zero() {
        // A constant column whose magnitude is large enough that the
        // f64 sum formulation leaves O(1..1e4) of cancellation noise in
        // the variance. An absolute zero-variance guard misses it and the
        // score becomes noise/noise garbage (historically clamped to ±1,
        // or NaN once the HAVING comparison divides by it); the defined
        // result for a constant column is 0.
        for c in [1.6e7f32, 5.5e8, 2.7e9, 1e10] {
            let mut x_const = StreamingPearson::new();
            let mut y_const = StreamingPearson::new();
            for i in 0..1000 {
                x_const.push(c, (i as f32) * 0.37 + 0.11);
                y_const.push((i as f32) * 0.37 + 0.11, c);
            }
            assert_eq!(x_const.correlation(), 0.0, "constant x={c} must score 0");
            assert_eq!(y_const.correlation(), 0.0, "constant y={c} must score 0");
            assert!(x_const.fisher_half_width(Z_95).is_finite());
        }
    }

    #[test]
    fn large_mean_small_variance_signal_survives() {
        // A genuinely correlated column riding on a huge mean (~1e6 with
        // unit-scale variance): raw-sum accumulation cancels the variance
        // into noise and a magnitude-relative threshold would zero the
        // real signal. The shifted accumulation must recover r ≈ 1 on the
        // element-wise path, and the raw-moment `accumulate` path (the
        // engine's columnar fast path) must stay close because its
        // re-centering error is per block, not per dataset.
        let n = 4608;
        let xs: Vec<f32> = (0..n).map(|i| 1.0e6 + (i % 17) as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| (i % 17) as f32).collect();

        let mut pushed = StreamingPearson::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            pushed.push(x, y);
        }
        let r = pushed.correlation();
        assert!(r > 0.999, "push path must recover the signal, got {r}");

        let mut folded = StreamingPearson::new();
        for (xb, yb) in xs.chunks(512).zip(ys.chunks(512)) {
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
            for (&x, &y) in xb.iter().zip(yb.iter()) {
                let (x, y) = (x as f64, y as f64);
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            }
            folded.accumulate(xb.len() as u64, sx, sy, sxx, syy, sxy);
        }
        let r = folded.correlation();
        assert!(r > 0.9, "raw accumulate path must keep the signal, got {r}");
    }

    #[test]
    fn non_finite_observations_never_emit_nan() {
        // A saturated unit (inf activation) or a NaN from a diverged model
        // turns the co-moment sums non-finite; `inf - inf` style variance
        // is NaN, which sails through `<=` comparisons. The score must
        // still come back 0, never NaN, so HAVING filters and top-k sorts
        // stay well-defined.
        let mut sat = StreamingPearson::new();
        let mut nan = StreamingPearson::new();
        for i in 0..32 {
            sat.push(if i == 7 { f32::INFINITY } else { 1.0 }, i as f32);
            nan.push(if i == 7 { f32::NAN } else { i as f32 }, i as f32);
        }
        assert_eq!(sat.correlation(), 0.0);
        assert_eq!(nan.correlation(), 0.0);
        assert!(!sat.fisher_half_width(Z_95).is_nan());
        assert!(!nan.fisher_half_width(Z_95).is_nan());
    }

    #[test]
    fn symmetric_in_arguments() {
        let xs = [1.0f32, 4.0, 2.0, 8.0, 5.0];
        let ys = [2.0f32, 1.0, 7.0, 3.0, 9.0];
        assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-6);
    }

    #[test]
    fn streaming_matches_batch_under_blocking() {
        let xs: Vec<f32> = (0..100).map(|i| ((i * 37) % 19) as f32).collect();
        let ys: Vec<f32> = (0..100).map(|i| ((i * 11) % 23) as f32 - 5.0).collect();
        let batch = pearson(&xs, &ys);
        let mut acc = StreamingPearson::new();
        for chunk in 0..10 {
            acc.push_block(
                &xs[chunk * 10..(chunk + 1) * 10],
                &ys[chunk * 10..(chunk + 1) * 10],
            );
        }
        assert!((acc.correlation() - batch).abs() < 1e-6);
    }

    #[test]
    fn strided_push_matches_dense_push() {
        // 3 interleaved columns; correlate column 1 against ys.
        let stride = 3;
        let rows = 40;
        let xs: Vec<f32> = (0..rows * stride)
            .map(|i| ((i * 29) % 31) as f32 - 15.0)
            .collect();
        let ys: Vec<f32> = (0..rows).map(|i| ((i * 13) % 17) as f32).collect();
        let col1: Vec<f32> = (0..rows).map(|r| xs[1 + r * stride]).collect();

        let mut dense = StreamingPearson::new();
        for (&x, &y) in col1.iter().zip(ys.iter()) {
            dense.push(x, y);
        }
        let mut strided = StreamingPearson::new();
        strided.push_block_strided(&xs, 1, stride, &ys);
        assert_eq!(strided.count(), dense.count());
        assert!((strided.correlation() - dense.correlation()).abs() < 1e-6);
        assert!((strided.fisher_half_width(Z_95) - dense.fisher_half_width(Z_95)).abs() < 1e-6);
    }

    #[test]
    fn accumulate_equals_pushes() {
        let xs = [1.0f32, -2.0, 3.5, 0.25];
        let ys = [2.0f32, 0.5, -1.0, 4.0];
        let mut pushed = StreamingPearson::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            pushed.push(x, y);
        }
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            let (x, y) = (x as f64, y as f64);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let mut folded = StreamingPearson::new();
        folded.accumulate(4, sx, sy, sxx, syy, sxy);
        assert!((folded.correlation() - pushed.correlation()).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "strided block out of range")]
    fn strided_push_rejects_short_buffer() {
        let mut acc = StreamingPearson::new();
        acc.push_block_strided(&[1.0, 2.0, 3.0], 1, 2, &[0.0, 1.0]);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f32> = (0..60).map(|i| (i as f32).sin()).collect();
        let ys: Vec<f32> = (0..60).map(|i| (i as f32 * 0.5).cos()).collect();
        let mut whole = StreamingPearson::new();
        whole.push_block(&xs, &ys);
        let mut a = StreamingPearson::new();
        let mut b = StreamingPearson::new();
        a.push_block(&xs[..30], &ys[..30]);
        b.push_block(&xs[30..], &ys[30..]);
        a.merge(&b);
        assert!((a.correlation() - whole.correlation()).abs() < 1e-6);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_outlier_shift_stays_sane() {
        // Partial A's shift (its first element) is a far outlier from the
        // rest of the column, so translating the other partial onto it
        // cancels ~1e16-scale terms. The merged estimate must either
        // match the single-pass estimate or detect its own noise and
        // report 0 — never clamped cancellation garbage.
        let xs: Vec<f32> = std::iter::once(0.0f32)
            .chain(std::iter::repeat_n(1.0e8, 499))
            .collect();
        let ys: Vec<f32> = (0..500).map(|i| (i % 7) as f32).collect();
        let mut whole = StreamingPearson::new();
        whole.push_block(&xs, &ys);
        let mut a = StreamingPearson::new();
        let mut b = StreamingPearson::new();
        a.push_block(&xs[..250], &ys[..250]);
        b.push_block(&xs[250..], &ys[250..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        let (ra, rw) = (a.correlation(), whole.correlation());
        assert!(ra.is_finite() && (-1.0..=1.0).contains(&ra));
        assert!(
            (ra - rw).abs() < 0.05 || ra == 0.0,
            "merged {ra} vs single-pass {rw}"
        );
    }

    #[test]
    fn fisher_half_width_shrinks_with_n() {
        let mut acc = StreamingPearson::new();
        let mut widths = Vec::new();
        for i in 0..4000u32 {
            let x = (i % 17) as f32;
            let y = x * 0.7 + ((i * 7) % 13) as f32;
            acc.push(x, y);
            if i % 500 == 499 {
                widths.push(acc.fisher_half_width(Z_95));
            }
        }
        for pair in widths.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-6,
                "widths must be non-increasing: {widths:?}"
            );
        }
    }

    #[test]
    fn convergence_flag_flips() {
        let mut acc = StreamingPearson::new();
        assert!(!acc.converged(0.05, Z_95));
        for i in 0..5000u32 {
            let x = (i % 29) as f32;
            acc.push(x, 0.9 * x + ((i * 3) % 7) as f32);
        }
        assert!(acc.converged(0.05, Z_95));
    }

    #[test]
    fn state_bits_round_trip_is_bit_exact() {
        let mut acc = StreamingPearson::new();
        for i in 0..257u32 {
            acc.push(((i * 37) % 19) as f32 - 3.5, ((i * 11) % 23) as f32);
        }
        let back = StreamingPearson::from_state_bits(acc.state_bits());
        assert_eq!(back.state_bits(), acc.state_bits());
        // Future operations agree bit for bit: merge the same partial
        // into both and compare the resulting states exactly.
        let mut tail = StreamingPearson::new();
        tail.push_block(&[1.0, 2.0, 5.0], &[0.5, -1.0, 2.0]);
        let mut a = acc.clone();
        let mut b = back;
        a.merge(&tail);
        b.merge(&tail);
        assert_eq!(a.state_bits(), b.state_bits());
        assert_eq!(
            a.correlation().to_bits(),
            b.correlation().to_bits(),
            "restored accumulator must score bit-identically"
        );
    }

    #[test]
    fn correlation_clamped_to_unit_interval() {
        let xs: Vec<f32> = (0..5).map(|i| i as f32 * 1e6).collect();
        let ys = xs.clone();
        let r = pearson(&xs, &ys);
        assert!((-1.0..=1.0).contains(&r));
    }
}
