//! Pearson correlation: batch, streaming, and Fisher-transform confidence
//! intervals.
//!
//! Correlation is DeepBase's default *independent* affinity measure
//! (paper §4.3). The streaming accumulator is what makes the paper's early
//! stopping optimization (§5.2.2) possible: affinity is an empirical
//! estimate over a sample, and the Fisher-transform confidence interval
//! tells the engine when the estimate has converged.

/// Streaming accumulator for Pearson's r over a pair of variables.
///
/// Maintains co-moments in a single pass (sum formulation in f64, which is
/// stable enough for the bounded activations this pipeline produces while
/// staying allocation-free).
#[derive(Debug, Clone, Default)]
pub struct StreamingPearson {
    n: u64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_yy: f64,
    sum_xy: f64,
}

impl StreamingPearson {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Adds one `(x, y)` observation.
    #[inline]
    pub fn push(&mut self, x: f32, y: f32) {
        let (x, y) = (x as f64, y as f64);
        self.n += 1;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_yy += y * y;
        self.sum_xy += x * y;
    }

    /// Adds a block of paired observations.
    ///
    /// Accumulates the block's moments in registers before folding them
    /// into the state once — the vectorizable hot path behind the
    /// correlation measure (the per-`push` path updates six struct fields
    /// per element).
    pub fn push_block(&mut self, xs: &[f32], ys: &[f32]) {
        assert_eq!(xs.len(), ys.len(), "pearson block length mismatch");
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            let (x, y) = (x as f64, y as f64);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        self.accumulate(xs.len() as u64, sx, sy, sxx, syy, sxy);
    }

    /// Adds a block where `x` is a strided column view: observation `i`
    /// pairs `xs[offset + i * stride]` with `ys[i]`.
    ///
    /// This is the columnar entry point for row-major behavior matrices
    /// (`stride` = number of units, `offset` = unit index): one pass per
    /// unit with register accumulation, instead of scattering every row
    /// across all unit accumulators.
    pub fn push_block_strided(&mut self, xs: &[f32], offset: usize, stride: usize, ys: &[f32]) {
        assert!(stride > 0, "pearson stride must be positive");
        if !ys.is_empty() {
            assert!(
                offset + (ys.len() - 1) * stride < xs.len(),
                "pearson strided block out of range"
            );
        }
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        let mut idx = offset;
        for &y in ys {
            let x = xs[idx] as f64;
            let y = y as f64;
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
            idx += stride;
        }
        self.accumulate(ys.len() as u64, sx, sy, sxx, syy, sxy);
    }

    /// Folds pre-aggregated block moments into the state. Lets callers
    /// that score many units against one shared `y` column (the
    /// correlation measure) compute the `y` moments once per block.
    pub fn accumulate(
        &mut self,
        n: u64,
        sum_x: f64,
        sum_y: f64,
        sum_xx: f64,
        sum_yy: f64,
        sum_xy: f64,
    ) {
        self.n += n;
        self.sum_x += sum_x;
        self.sum_y += sum_y;
        self.sum_xx += sum_xx;
        self.sum_yy += sum_yy;
        self.sum_xy += sum_xy;
    }

    /// Merges another accumulator into this one (used by the parallel
    /// device to combine per-thread partials).
    pub fn merge(&mut self, other: &StreamingPearson) {
        self.n += other.n;
        self.sum_x += other.sum_x;
        self.sum_y += other.sum_y;
        self.sum_xx += other.sum_xx;
        self.sum_yy += other.sum_yy;
        self.sum_xy += other.sum_xy;
    }

    /// Current correlation estimate.
    ///
    /// Returns 0 when either variable is (numerically) constant — the
    /// convention the DeepBase engine relies on for padding symbols and
    /// dead units, where "no signal" must not poison score tables with NaN.
    pub fn correlation(&self) -> f32 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let cov = self.sum_xy - self.sum_x * self.sum_y / n;
        let var_x = self.sum_xx - self.sum_x * self.sum_x / n;
        let var_y = self.sum_yy - self.sum_y * self.sum_y / n;
        if var_x <= 1e-12 || var_y <= 1e-12 {
            return 0.0;
        }
        let r = cov / (var_x * var_y).sqrt();
        r.clamp(-1.0, 1.0) as f32
    }

    /// Half-width of the Fisher-transform confidence interval around the
    /// current estimate, for the given `z` critical value (1.96 ≈ 95%).
    ///
    /// The paper's early-stopping criterion compares this against the user
    /// threshold ε: the transform `z = atanh(r)` is approximately normal
    /// with standard error `1/sqrt(n - 3)`, and the half-width is mapped
    /// back through `tanh`.
    pub fn fisher_half_width(&self, z_crit: f64) -> f32 {
        if self.n < 4 {
            return f32::INFINITY;
        }
        let r = self.correlation() as f64;
        // Guard atanh at the boundary.
        let r = r.clamp(-0.999_999, 0.999_999);
        let fisher_z = r.atanh();
        let se = 1.0 / ((self.n as f64) - 3.0).sqrt();
        let lo = (fisher_z - z_crit * se).tanh();
        let hi = (fisher_z + z_crit * se).tanh();
        (((hi - lo) / 2.0) as f32).abs()
    }

    /// True once the CI half-width is below `epsilon`.
    pub fn converged(&self, epsilon: f32, z_crit: f64) -> bool {
        self.fisher_half_width(z_crit) <= epsilon
    }
}

/// Critical value for a 95% two-sided normal interval.
pub const Z_95: f64 = 1.959_963_985;

/// One-shot Pearson correlation over two slices.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    let mut acc = StreamingPearson::new();
    acc.push_block(xs, ys);
    acc.correlation()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|x| -0.5 * x).collect();
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn constant_input_yields_zero() {
        let xs = vec![3.0f32; 10];
        let ys: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert_eq!(pearson(&xs, &ys), 0.0);
        assert_eq!(pearson(&ys, &xs), 0.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let xs = [1.0f32, 4.0, 2.0, 8.0, 5.0];
        let ys = [2.0f32, 1.0, 7.0, 3.0, 9.0];
        assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-6);
    }

    #[test]
    fn streaming_matches_batch_under_blocking() {
        let xs: Vec<f32> = (0..100).map(|i| ((i * 37) % 19) as f32).collect();
        let ys: Vec<f32> = (0..100).map(|i| ((i * 11) % 23) as f32 - 5.0).collect();
        let batch = pearson(&xs, &ys);
        let mut acc = StreamingPearson::new();
        for chunk in 0..10 {
            acc.push_block(
                &xs[chunk * 10..(chunk + 1) * 10],
                &ys[chunk * 10..(chunk + 1) * 10],
            );
        }
        assert!((acc.correlation() - batch).abs() < 1e-6);
    }

    #[test]
    fn strided_push_matches_dense_push() {
        // 3 interleaved columns; correlate column 1 against ys.
        let stride = 3;
        let rows = 40;
        let xs: Vec<f32> = (0..rows * stride)
            .map(|i| ((i * 29) % 31) as f32 - 15.0)
            .collect();
        let ys: Vec<f32> = (0..rows).map(|i| ((i * 13) % 17) as f32).collect();
        let col1: Vec<f32> = (0..rows).map(|r| xs[1 + r * stride]).collect();

        let mut dense = StreamingPearson::new();
        for (&x, &y) in col1.iter().zip(ys.iter()) {
            dense.push(x, y);
        }
        let mut strided = StreamingPearson::new();
        strided.push_block_strided(&xs, 1, stride, &ys);
        assert_eq!(strided.count(), dense.count());
        assert!((strided.correlation() - dense.correlation()).abs() < 1e-6);
        assert!((strided.fisher_half_width(Z_95) - dense.fisher_half_width(Z_95)).abs() < 1e-6);
    }

    #[test]
    fn accumulate_equals_pushes() {
        let xs = [1.0f32, -2.0, 3.5, 0.25];
        let ys = [2.0f32, 0.5, -1.0, 4.0];
        let mut pushed = StreamingPearson::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            pushed.push(x, y);
        }
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            let (x, y) = (x as f64, y as f64);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let mut folded = StreamingPearson::new();
        folded.accumulate(4, sx, sy, sxx, syy, sxy);
        assert!((folded.correlation() - pushed.correlation()).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "strided block out of range")]
    fn strided_push_rejects_short_buffer() {
        let mut acc = StreamingPearson::new();
        acc.push_block_strided(&[1.0, 2.0, 3.0], 1, 2, &[0.0, 1.0]);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f32> = (0..60).map(|i| (i as f32).sin()).collect();
        let ys: Vec<f32> = (0..60).map(|i| (i as f32 * 0.5).cos()).collect();
        let mut whole = StreamingPearson::new();
        whole.push_block(&xs, &ys);
        let mut a = StreamingPearson::new();
        let mut b = StreamingPearson::new();
        a.push_block(&xs[..30], &ys[..30]);
        b.push_block(&xs[30..], &ys[30..]);
        a.merge(&b);
        assert!((a.correlation() - whole.correlation()).abs() < 1e-6);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn fisher_half_width_shrinks_with_n() {
        let mut acc = StreamingPearson::new();
        let mut widths = Vec::new();
        for i in 0..4000u32 {
            let x = (i % 17) as f32;
            let y = x * 0.7 + ((i * 7) % 13) as f32;
            acc.push(x, y);
            if i % 500 == 499 {
                widths.push(acc.fisher_half_width(Z_95));
            }
        }
        for pair in widths.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-6,
                "widths must be non-increasing: {widths:?}"
            );
        }
    }

    #[test]
    fn convergence_flag_flips() {
        let mut acc = StreamingPearson::new();
        assert!(!acc.converged(0.05, Z_95));
        for i in 0..5000u32 {
            let x = (i % 29) as f32;
            acc.push(x, 0.9 * x + ((i * 3) % 7) as f32);
        }
        assert!(acc.converged(0.05, Z_95));
    }

    #[test]
    fn correlation_clamped_to_unit_interval() {
        let xs: Vec<f32> = (0..5).map(|i| i as f32 * 1e6).collect();
        let ys = xs.clone();
        let r = pearson(&xs, &ys);
        assert!((-1.0..=1.0).contains(&r));
    }
}
