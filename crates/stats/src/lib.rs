//! # deepbase-stats
//!
//! Statistical affinity measures for Deep Neural Inspection.
//!
//! DeepBase (paper §4.3) quantifies the affinity between hidden-unit
//! behaviors and hypothesis behaviors using statistical measures. The
//! Python original leans on scipy/scikit-learn/Keras; this crate implements
//! the required statistics from scratch:
//!
//! * [`corr`] — Pearson correlation, streaming accumulation, and
//!   Fisher-transform confidence intervals (the early-stopping criterion).
//! * [`mi`] — binned mutual information, univariate and multivariate.
//! * [`quantile`] — exact and P² streaming quantiles, quantile binning
//!   (NetDissect-style thresholds).
//! * [`descriptive`] — difference of means, Jaccard/IoU, silhouette score
//!   (the §4.4 verification statistic).
//! * [`classify`] — precision/recall/F1/accuracy metrics.
//! * [`logreg`] — single-, multi-output (merged) and softmax logistic
//!   regression probes with Adam, L1/L2 and incremental `process_block`
//!   training.
//! * [`baselines`] — random- and majority-class baselines.
//! * [`split`] — deterministic shuffles, train/test and k-fold splits.

pub mod baselines;
pub mod classify;
pub mod corr;
pub mod descriptive;
pub mod logreg;
pub mod mi;
pub mod quantile;
pub mod split;

pub use classify::{f1_score, Confusion};
pub use corr::{pearson, StreamingPearson, Z_95};
pub use descriptive::{difference_of_means, jaccard, jaccard_at_quantile, silhouette_score};
pub use logreg::{ConvergenceTracker, LogRegConfig, MultiLogReg, SoftmaxReg};
pub use mi::{multivariate_mi, mutual_information};
pub use quantile::{quantile, quantile_bin, P2Quantile};
