//! Mutual information between behavior vectors (paper §4.3, used by
//! Morcos et al.-style analyses).
//!
//! Continuous behaviors are discretized into quantile bins before the
//! plug-in MI estimate. A multivariate variant treats a small group of
//! units as a joint variable; beyond `MAX_EXACT_JOINT_DIMS` units the joint
//! histogram would explode, so the estimator falls back to the maximum
//! pairwise MI (a standard, conservative surrogate).

use crate::quantile::quantile_bin;
use std::collections::HashMap;

/// Number of quantile bins used when discretizing continuous behaviors.
pub const DEFAULT_BINS: usize = 8;

/// Joint-histogram MI is computed exactly up to this many variables.
pub const MAX_EXACT_JOINT_DIMS: usize = 3;

/// Plug-in mutual information (in nats) between two discrete label vectors.
pub fn mutual_information_discrete(xs: &[usize], ys: &[usize]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "MI input length mismatch");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    let mut px: HashMap<usize, f64> = HashMap::new();
    let mut py: HashMap<usize, f64> = HashMap::new();
    let w = 1.0 / n as f64;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        *joint.entry((x, y)).or_default() += w;
        *px.entry(x).or_default() += w;
        *py.entry(y).or_default() += w;
    }
    let mut mi = 0.0f64;
    for (&(x, y), &pxy) in &joint {
        let denom = px[&x] * py[&y];
        if pxy > 0.0 && denom > 0.0 {
            mi += pxy * (pxy / denom).ln();
        }
    }
    mi.max(0.0) as f32
}

/// MI between two continuous behavior vectors after quantile binning.
pub fn mutual_information(xs: &[f32], ys: &[f32], bins: usize) -> f32 {
    let bx = quantile_bin(xs, bins);
    let by = quantile_bin(ys, bins);
    mutual_information_discrete(&bx, &by)
}

/// Entropy (nats) of a discrete label vector; the upper bound of any MI
/// against it, used to normalize scores.
pub fn entropy_discrete(xs: &[usize]) -> f32 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mut counts: HashMap<usize, f64> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_default() += 1.0;
    }
    let n = n as f64;
    let mut h = 0.0f64;
    for &c in counts.values() {
        let p = c / n;
        h -= p * p.ln();
    }
    h.max(0.0) as f32
}

/// Multivariate MI between a group of unit behaviors (rows of
/// `unit_behaviors`, one row per unit, columns are symbols) and a
/// hypothesis behavior.
///
/// With ≤ [`MAX_EXACT_JOINT_DIMS`] units, bins each unit and forms the
/// exact joint variable; otherwise returns the maximum pairwise MI.
pub fn multivariate_mi(unit_behaviors: &[&[f32]], hypothesis: &[f32], bins: usize) -> f32 {
    if unit_behaviors.is_empty() {
        return 0.0;
    }
    let hy = quantile_bin(hypothesis, bins);
    if unit_behaviors.len() <= MAX_EXACT_JOINT_DIMS {
        // Compose a joint discrete variable by mixed-radix packing.
        let binned: Vec<Vec<usize>> = unit_behaviors
            .iter()
            .map(|u| quantile_bin(u, bins))
            .collect();
        let n = hypothesis.len();
        let mut joint_ids = vec![0usize; n];
        for b in &binned {
            assert_eq!(b.len(), n, "unit behavior length mismatch");
            for (j, &v) in b.iter().enumerate() {
                joint_ids[j] = joint_ids[j] * bins + v;
            }
        }
        mutual_information_discrete(&joint_ids, &hy)
    } else {
        unit_behaviors
            .iter()
            .map(|u| mutual_information_discrete(&quantile_bin(u, bins), &hy))
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_variables_mi_equals_entropy() {
        let xs = vec![0usize, 1, 0, 1, 2, 2, 0, 1];
        let mi = mutual_information_discrete(&xs, &xs);
        let h = entropy_discrete(&xs);
        assert!((mi - h).abs() < 1e-5, "{mi} vs {h}");
    }

    #[test]
    fn independent_variables_mi_near_zero() {
        // x cycles with period 2, y with period 3 over 600 samples: the
        // joint distribution is exactly the product of marginals.
        let xs: Vec<usize> = (0..600).map(|i| i % 2).collect();
        let ys: Vec<usize> = (0..600).map(|i| i % 3).collect();
        assert!(mutual_information_discrete(&xs, &ys) < 1e-5);
    }

    #[test]
    fn mi_is_nonnegative_and_symmetric() {
        let xs = vec![0usize, 0, 1, 1, 2, 0, 1, 2, 2, 1];
        let ys = vec![1usize, 0, 1, 0, 2, 2, 1, 0, 2, 1];
        let a = mutual_information_discrete(&xs, &ys);
        let b = mutual_information_discrete(&ys, &xs);
        assert!(a >= 0.0);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn continuous_mi_detects_functional_dependence() {
        let xs: Vec<f32> = (0..200).map(|i| (i as f32 * 0.1).sin()).collect();
        let dependent = mutual_information(&xs, &xs.iter().map(|v| v * 3.0).collect::<Vec<_>>(), 8);
        let noise: Vec<f32> = (0..200).map(|i| ((i * 7919) % 100) as f32).collect();
        let independent = mutual_information(&xs, &noise, 8);
        assert!(dependent > independent, "{dependent} vs {independent}");
    }

    #[test]
    fn entropy_uniform_is_log_k() {
        let xs: Vec<usize> = (0..100).map(|i| i % 4).collect();
        assert!((entropy_discrete(&xs) - (4.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn entropy_constant_is_zero() {
        assert_eq!(entropy_discrete(&[7usize; 10]), 0.0);
    }

    #[test]
    fn multivariate_joint_beats_single_unit_on_xor() {
        // h = XOR(u1, u2): neither unit alone is informative, together they
        // determine h exactly — the case where joint measures matter
        // (paper: groups of units behaving collectively as a detector).
        let n = 400;
        let u1: Vec<f32> = (0..n).map(|i| (i % 2) as f32).collect();
        let u2: Vec<f32> = (0..n).map(|i| ((i / 2) % 2) as f32).collect();
        let h: Vec<f32> = u1
            .iter()
            .zip(u2.iter())
            .map(|(a, b)| (a + b) % 2.0)
            .collect();
        let single = multivariate_mi(&[&u1], &h, 2);
        let joint = multivariate_mi(&[&u1, &u2], &h, 2);
        assert!(single < 0.01, "single {single}");
        assert!(joint > 0.5, "joint {joint}");
    }

    #[test]
    fn multivariate_falls_back_beyond_exact_dims() {
        let n = 100;
        let units: Vec<Vec<f32>> = (0..5)
            .map(|u| (0..n).map(|i| ((i + u) % 3) as f32).collect())
            .collect();
        let refs: Vec<&[f32]> = units.iter().map(|v| v.as_slice()).collect();
        let h: Vec<f32> = (0..n).map(|i| (i % 3) as f32).collect();
        let score = multivariate_mi(&refs, &h, 3);
        // Must equal max pairwise MI: unit 0 matches h exactly.
        let exact = mutual_information(&units[0], &h, 3);
        assert!((score - exact).abs() < 1e-5);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(mutual_information_discrete(&[], &[]), 0.0);
        assert_eq!(multivariate_mi(&[], &[], 4), 0.0);
    }
}
