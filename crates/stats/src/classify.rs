//! Classification quality metrics: confusion counts, precision/recall/F1
//! (binary and macro-averaged multiclass), and accuracy.
//!
//! These score DeepBase's joint measures: logistic-regression probes report
//! F1 (the paper's default) or per-class precision (the Belinkov et al.
//! replication in §6.3.1).

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies binary predictions against targets (both thresholded at 0.5).
    pub fn from_predictions(predicted: &[f32], target: &[f32]) -> Self {
        assert_eq!(predicted.len(), target.len(), "prediction count mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in predicted.iter().zip(target.iter()) {
            match (p > 0.5, t > 0.5) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Precision = tp / (tp + fp); 0 when undefined.
    pub fn precision(&self) -> f32 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f32 / denom as f32
        }
    }

    /// Recall = tp / (tp + fn); 0 when undefined.
    pub fn recall(&self) -> f32 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f32 / denom as f32
        }
    }

    /// F1 = harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f32 / total as f32
        }
    }
}

/// Binary F1 of thresholded predictions.
pub fn f1_score(predicted: &[f32], target: &[f32]) -> f32 {
    Confusion::from_predictions(predicted, target).f1()
}

/// Multiclass accuracy of integer predictions.
pub fn accuracy_multiclass(predicted: &[usize], target: &[usize]) -> f32 {
    assert_eq!(predicted.len(), target.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let correct = predicted
        .iter()
        .zip(target.iter())
        .filter(|(p, t)| p == t)
        .count();
    correct as f32 / predicted.len() as f32
}

/// Per-class precision for multiclass predictions over `k` classes.
/// `result[c]` is precision of class `c` (0 when never predicted).
pub fn per_class_precision(predicted: &[usize], target: &[usize], k: usize) -> Vec<f32> {
    assert_eq!(predicted.len(), target.len());
    let mut tp = vec![0usize; k];
    let mut pred_count = vec![0usize; k];
    for (&p, &t) in predicted.iter().zip(target.iter()) {
        if p < k {
            pred_count[p] += 1;
            if p == t {
                tp[p] += 1;
            }
        }
    }
    (0..k)
        .map(|c| {
            if pred_count[c] == 0 {
                0.0
            } else {
                tp[c] as f32 / pred_count[c] as f32
            }
        })
        .collect()
}

/// Per-class recall for multiclass predictions over `k` classes.
pub fn per_class_recall(predicted: &[usize], target: &[usize], k: usize) -> Vec<f32> {
    assert_eq!(predicted.len(), target.len());
    let mut tp = vec![0usize; k];
    let mut target_count = vec![0usize; k];
    for (&p, &t) in predicted.iter().zip(target.iter()) {
        if t < k {
            target_count[t] += 1;
            if p == t {
                tp[t] += 1;
            }
        }
    }
    (0..k)
        .map(|c| {
            if target_count[c] == 0 {
                0.0
            } else {
                tp[c] as f32 / target_count[c] as f32
            }
        })
        .collect()
}

/// Macro-averaged multiclass F1 over classes that appear in the target.
pub fn macro_f1(predicted: &[usize], target: &[usize], k: usize) -> f32 {
    let prec = per_class_precision(predicted, target, k);
    let rec = per_class_recall(predicted, target, k);
    let mut total = 0.0f32;
    let mut classes = 0usize;
    for c in 0..k {
        if target.contains(&c) {
            let (p, r) = (prec[c], rec[c]);
            total += if p + r == 0.0 {
                0.0
            } else {
                2.0 * p * r / (p + r)
            };
            classes += 1;
        }
    }
    if classes == 0 {
        0.0
    } else {
        total / classes as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [1.0f32, 1.0, 0.0, 0.0, 1.0];
        let targ = [1.0f32, 0.0, 0.0, 1.0, 1.0];
        let c = Confusion::from_predictions(&pred, &targ);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
    }

    #[test]
    fn perfect_predictions_give_unit_scores() {
        let v = [1.0f32, 0.0, 1.0, 0.0];
        let c = Confusion::from_predictions(&v, &v);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn degenerate_scores_are_zero_not_nan() {
        let c = Confusion::from_predictions(&[0.0f32; 4], &[0.0f32; 4]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn f1_known_value() {
        // precision 2/3, recall 2/4 -> F1 = 2*(2/3)*(1/2)/(2/3+1/2) = 4/7.
        let pred = [1.0f32, 1.0, 1.0, 0.0, 0.0, 0.0];
        let targ = [1.0f32, 1.0, 0.0, 1.0, 1.0, 0.0];
        assert!((f1_score(&pred, &targ) - 4.0 / 7.0).abs() < 1e-5);
    }

    #[test]
    fn multiclass_accuracy() {
        assert_eq!(accuracy_multiclass(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy_multiclass(&[], &[]), 0.0);
    }

    #[test]
    fn per_class_precision_and_recall() {
        let pred = [0usize, 0, 1, 1, 2];
        let targ = [0usize, 1, 1, 1, 0];
        let prec = per_class_precision(&pred, &targ, 3);
        assert!((prec[0] - 0.5).abs() < 1e-6);
        assert!((prec[1] - 1.0).abs() < 1e-6);
        assert_eq!(prec[2], 0.0);
        let rec = per_class_recall(&pred, &targ, 3);
        assert!((rec[0] - 0.5).abs() < 1e-6);
        assert!((rec[1] - 2.0 / 3.0).abs() < 1e-5);
        assert_eq!(rec[2], 0.0); // class 2 never in target
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let pred = [0usize, 0, 1, 1];
        let targ = [0usize, 0, 1, 1];
        // Class 2 exists in k but never in target; must not dilute the mean.
        assert!((macro_f1(&pred, &targ, 3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let pred = [1.0f32, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0];
        let targ = [0.0f32, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0];
        let c = Confusion::from_predictions(&pred, &targ);
        for v in [c.precision(), c.recall(), c.f1(), c.accuracy()] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
