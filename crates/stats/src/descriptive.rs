//! Descriptive statistics, Jaccard/IoU, difference of means, and the
//! silhouette score used by DeepBase's verification procedure (§4.4).

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Unbiased sample variance (0 when fewer than two values).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f32>() / (xs.len() - 1) as f32
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Difference-of-means affinity (paper §4.3): mean behavior where the
/// binary hypothesis is active minus mean where inactive, normalized by the
/// pooled standard deviation (Cohen's d-style, so scores are comparable
/// across units with different activation scales). Returns 0 when either
/// class is empty or behaviors are constant.
pub fn difference_of_means(behavior: &[f32], hypothesis: &[f32]) -> f32 {
    assert_eq!(behavior.len(), hypothesis.len(), "length mismatch");
    let mut on = Vec::new();
    let mut off = Vec::new();
    for (&b, &h) in behavior.iter().zip(hypothesis.iter()) {
        if h > 0.5 {
            on.push(b);
        } else {
            off.push(b);
        }
    }
    if on.is_empty() || off.is_empty() {
        return 0.0;
    }
    let pooled = ((variance(&on) * (on.len() - 1).max(1) as f32
        + variance(&off) * (off.len() - 1).max(1) as f32)
        / (on.len() + off.len()).saturating_sub(2).max(1) as f32)
        .sqrt();
    if pooled <= 1e-12 {
        return 0.0;
    }
    (mean(&on) - mean(&off)) / pooled
}

/// Jaccard coefficient (intersection over union) between two binary masks
/// obtained by thresholding at > 0.5. This is NetDissect's IoU measure
/// (paper Appendix E) once activations have been binarized at a quantile
/// threshold.
pub fn jaccard(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut inter = 0usize;
    let mut union = 0usize;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let bx = x > 0.5;
        let by = y > 0.5;
        if bx && by {
            inter += 1;
        }
        if bx || by {
            union += 1;
        }
    }
    if union == 0 {
        0.0
    } else {
        inter as f32 / union as f32
    }
}

/// Jaccard between a continuous behavior thresholded at its top-`q`
/// quantile and a binary hypothesis mask — the full NetDissect scoring rule.
pub fn jaccard_at_quantile(behavior: &[f32], hypothesis_mask: &[f32], top_quantile: f32) -> f32 {
    let thresh = crate::quantile::quantile(behavior, top_quantile);
    let binarized: Vec<f32> = behavior
        .iter()
        .map(|&v| if v > thresh { 1.0 } else { 0.0 })
        .collect();
    jaccard(&binarized, hypothesis_mask)
}

/// Mean silhouette score of points under integer cluster labels, with
/// Euclidean distance (Rousseeuw 1987; the verification statistic of §4.4).
///
/// Points are rows of `points` (all the same dimension). Returns 0 when
/// there are fewer than two clusters or fewer than three points.
pub fn silhouette_score(points: &[Vec<f32>], labels: &[usize]) -> f32 {
    assert_eq!(points.len(), labels.len(), "label count mismatch");
    let n = points.len();
    if n < 3 {
        return 0.0;
    }
    let distinct: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    if distinct.len() < 2 {
        return 0.0;
    }

    let dist = |a: &[f32], b: &[f32]| -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f32>()
            .sqrt()
    };

    let mut total = 0.0f32;
    let mut counted = 0usize;
    for i in 0..n {
        // Mean intra-cluster distance a(i) and per-other-cluster means.
        let mut intra_sum = 0.0f32;
        let mut intra_count = 0usize;
        let mut inter: std::collections::BTreeMap<usize, (f32, usize)> = Default::default();
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dist(&points[i], &points[j]);
            if labels[j] == labels[i] {
                intra_sum += d;
                intra_count += 1;
            } else {
                let e = inter.entry(labels[j]).or_insert((0.0, 0));
                e.0 += d;
                e.1 += 1;
            }
        }
        if intra_count == 0 || inter.is_empty() {
            continue; // Singleton clusters contribute 0 by convention.
        }
        let a = intra_sum / intra_count as f32;
        let b = inter
            .values()
            .map(|&(s, c)| s / c as f32)
            .fold(f32::INFINITY, f32::min);
        let s = if a.max(b) > 0.0 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known_values() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-4);
    }

    #[test]
    fn variance_of_single_value_is_zero() {
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn diff_of_means_detects_separated_classes() {
        let behavior = [1.0f32, 1.1, 0.9, 5.0, 5.1, 4.9];
        let hypothesis = [0.0f32, 0.0, 0.0, 1.0, 1.0, 1.0];
        let d = difference_of_means(&behavior, &hypothesis);
        assert!(d > 5.0, "expected large effect size, got {d}");
    }

    #[test]
    fn diff_of_means_zero_when_identical_distributions() {
        let behavior = [1.0f32, 2.0, 1.0, 2.0];
        let hypothesis = [0.0f32, 0.0, 1.0, 1.0];
        assert!(difference_of_means(&behavior, &hypothesis).abs() < 1e-5);
    }

    #[test]
    fn diff_of_means_degenerate_class_is_zero() {
        let behavior = [1.0f32, 2.0, 3.0];
        assert_eq!(difference_of_means(&behavior, &[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(difference_of_means(&behavior, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn jaccard_bounds_and_known_values() {
        assert_eq!(jaccard(&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0]), 1.0);
        assert_eq!(jaccard(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]), 0.0);
        let j = jaccard(&[1.0, 1.0, 0.0, 0.0], &[1.0, 0.0, 1.0, 0.0]);
        assert!((j - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn jaccard_empty_masks_is_zero() {
        assert_eq!(jaccard(&[0.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn jaccard_at_quantile_matches_manual_threshold() {
        let behavior = [0.1f32, 0.2, 0.9, 0.95, 0.3, 0.05];
        let mask = [0.0f32, 0.0, 1.0, 1.0, 0.0, 0.0];
        // Top ~1/3 of activations are exactly the two masked positions.
        let j = jaccard_at_quantile(&behavior, &mask, 0.66);
        assert!(j > 0.99, "expected ~1.0, got {j}");
    }

    #[test]
    fn silhouette_well_separated_clusters_near_one() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + 0.01 * i as f32, 0.0]);
            labels.push(0);
            points.push(vec![10.0 + 0.01 * i as f32, 10.0]);
            labels.push(1);
        }
        assert!(silhouette_score(&points, &labels) > 0.9);
    }

    #[test]
    fn silhouette_mixed_clusters_near_zero() {
        // Interleave the two labels over the same point cloud.
        let points: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![(i % 7) as f32, (i % 5) as f32])
            .collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let s = silhouette_score(&points, &labels);
        assert!(s.abs() < 0.3, "expected near-zero separation, got {s}");
    }

    #[test]
    fn silhouette_bounds() {
        let points: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let labels: Vec<usize> = (0..20).map(|i| i / 10).collect();
        let s = silhouette_score(&points, &labels);
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn silhouette_single_cluster_is_zero() {
        let points: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32]).collect();
        assert_eq!(silhouette_score(&points, &[0; 5]), 0.0);
    }
}
