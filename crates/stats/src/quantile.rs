//! Quantiles and quantile binning.
//!
//! NetDissect-style measures (paper Appendix E) binarize activations at a
//! top-quantile threshold; mutual information discretizes behaviors into
//! quantile bins. Both a sorted-sample exact quantile and a streaming
//! estimator (for the online pipeline) are provided.

/// Exact sample quantile by sorting a copy (linear interpolation between
/// order statistics, matching NumPy's default).
pub fn quantile(values: &[f32], q: f32) -> f32 {
    assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
    if values.is_empty() {
        return f32::NAN;
    }
    let mut sorted: Vec<f32> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return f32::NAN;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q as f64 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = (pos - lo as f64) as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Streaming quantile estimator using the P² algorithm (Jain & Chlamtac,
/// 1985): five markers track the running quantile without storing the
/// sample. NetDissect uses an online quantile approximation for exactly
/// this purpose; the paper notes the approximation is one source of its
/// score nondeterminism.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Increments for desired positions.
    increments: [f64; 5],
    /// Initial observations until five samples arrive.
    initial: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(
            q > 0.0 && q < 1.0,
            "P2 quantile must be strictly inside (0,1)"
        );
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            initial: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f32) {
        let x = x as f64;
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }

        // Adjust interior markers with parabolic (or linear) interpolation.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let new_height = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < new_height && new_height < self.heights[i + 1] {
                        new_height
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, p) = (&self.heights, &self.positions);
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate.
    pub fn estimate(&self) -> f32 {
        if self.count == 0 {
            return f32::NAN;
        }
        if self.initial.len() < 5 && self.count < 5 {
            // Fall back to exact quantile over the tiny buffer.
            let vals: Vec<f32> = self.initial.iter().map(|&v| v as f32).collect();
            return quantile(&vals, self.q as f32);
        }
        self.heights[2] as f32
    }
}

/// Assigns each value to one of `bins` quantile bins (0-based). Values equal
/// to a boundary fall into the lower bin; the mapping is monotone.
pub fn quantile_bin(values: &[f32], bins: usize) -> Vec<usize> {
    assert!(bins >= 1, "need at least one bin");
    if values.is_empty() {
        return Vec::new();
    }
    let mut boundaries = Vec::with_capacity(bins - 1);
    for b in 1..bins {
        boundaries.push(quantile(values, b as f32 / bins as f32));
    }
    values
        .iter()
        .map(|&v| boundaries.iter().take_while(|&&b| v > b).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantile_median_of_odd() {
        let vals = [5.0f32, 1.0, 3.0];
        assert_eq!(quantile(&vals, 0.5), 3.0);
    }

    #[test]
    fn exact_quantile_interpolates() {
        let vals = [0.0f32, 10.0];
        assert!((quantile(&vals, 0.25) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn exact_quantile_extremes() {
        let vals = [2.0f32, 9.0, 4.0, 7.0];
        assert_eq!(quantile(&vals, 0.0), 2.0);
        assert_eq!(quantile(&vals, 1.0), 9.0);
    }

    #[test]
    fn exact_quantile_empty_is_nan() {
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn p2_tracks_median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        // Deterministic pseudo-uniform stream.
        let mut x = 123456789u64;
        let mut all = Vec::new();
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) as f32) / (u32::MAX >> 1) as f32;
            est.push(v);
            all.push(v);
        }
        let exact = quantile(&all, 0.5);
        assert!(
            (est.estimate() - exact).abs() < 0.02,
            "{} vs {}",
            est.estimate(),
            exact
        );
    }

    #[test]
    fn p2_tracks_high_quantile() {
        let mut est = P2Quantile::new(0.99);
        let mut all = Vec::new();
        for i in 0..10000 {
            let v = ((i * 7919) % 10000) as f32 / 10000.0;
            est.push(v);
            all.push(v);
        }
        let exact = quantile(&all, 0.99);
        assert!(
            (est.estimate() - exact).abs() < 0.03,
            "{} vs {}",
            est.estimate(),
            exact
        );
    }

    #[test]
    fn p2_small_sample_falls_back_to_exact() {
        let mut est = P2Quantile::new(0.5);
        est.push(10.0);
        est.push(20.0);
        assert!((est.estimate() - 15.0).abs() < 1e-5);
    }

    #[test]
    fn quantile_bins_are_balanced() {
        let vals: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let bins = quantile_bin(&vals, 4);
        let mut counts = [0usize; 4];
        for &b in &bins {
            counts[b] += 1;
        }
        for &c in &counts {
            assert!((20..=30).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn quantile_bins_monotone() {
        let vals = [5.0f32, 1.0, 9.0, 3.0, 7.0];
        let bins = quantile_bin(&vals, 3);
        // Larger value never gets a smaller bin.
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                if vals[i] < vals[j] {
                    assert!(bins[i] <= bins[j]);
                }
            }
        }
    }

    #[test]
    fn single_bin_puts_everything_in_zero() {
        let bins = quantile_bin(&[1.0, 2.0, 3.0], 1);
        assert_eq!(bins, vec![0, 0, 0]);
    }
}
