//! Naive scoring baselines (paper §4.1): DeepBase's standard library ships
//! a *random class* and a *majority class* scorer so that probe F1 scores
//! can be read against chance performance.

use rand::Rng;

/// F1 of always predicting the majority class of `target`.
pub fn majority_class_f1(target: &[f32]) -> f32 {
    if target.is_empty() {
        return 0.0;
    }
    let positives = target.iter().filter(|&&t| t > 0.5).count();
    let majority = if positives * 2 >= target.len() {
        1.0
    } else {
        0.0
    };
    let pred = vec![majority; target.len()];
    crate::classify::f1_score(&pred, target)
}

/// F1 of predicting each class uniformly at random (seeded).
pub fn random_class_f1(target: &[f32], seed: u64) -> f32 {
    if target.is_empty() {
        return 0.0;
    }
    let mut rng = deepbase_tensor::init::seeded_rng(seed);
    let pred: Vec<f32> = (0..target.len())
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
        .collect();
    crate::classify::f1_score(&pred, target)
}

/// Multiclass accuracy of always predicting the majority class.
pub fn majority_class_accuracy(target: &[usize]) -> f32 {
    if target.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for &t in target {
        *counts.entry(t).or_insert(0usize) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f32 / target.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_all_positive_is_perfect() {
        assert_eq!(majority_class_f1(&[1.0; 10]), 1.0);
    }

    #[test]
    fn majority_all_negative_scores_zero_f1() {
        // Majority predicts 0 everywhere: no true positives -> F1 = 0.
        assert_eq!(majority_class_f1(&[0.0; 10]), 0.0);
    }

    #[test]
    fn majority_balanced_set() {
        let target: Vec<f32> = (0..10).map(|i| (i % 2) as f32).collect();
        // Ties go to positive: predicting all 1s gives precision 0.5, recall 1.
        let f1 = majority_class_f1(&target);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn random_f1_is_deterministic_per_seed() {
        let target: Vec<f32> = (0..50).map(|i| ((i * 13) % 2) as f32).collect();
        assert_eq!(random_class_f1(&target, 7), random_class_f1(&target, 7));
    }

    #[test]
    fn random_f1_near_half_for_balanced_targets() {
        let target: Vec<f32> = (0..2000).map(|i| (i % 2) as f32).collect();
        let f1 = random_class_f1(&target, 1);
        assert!((f1 - 0.5).abs() < 0.05, "{f1}");
    }

    #[test]
    fn majority_multiclass_accuracy() {
        let target = [0usize, 0, 0, 1, 2];
        assert!((majority_class_accuracy(&target) - 0.6).abs() < 1e-6);
        assert_eq!(majority_class_accuracy(&[]), 0.0);
    }
}
