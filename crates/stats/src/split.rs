//! Deterministic dataset splitting helpers (shuffles, train/test splits,
//! k-fold index generation) shared by probes and the inspection engines.

use rand::seq::SliceRandom;

/// Seeded permutation of `0..n`.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = deepbase_tensor::init::seeded_rng(seed);
    idx.shuffle(&mut rng);
    idx
}

/// Splits `0..n` into `(train, test)` index sets with the given test
/// fraction, after a seeded shuffle. Guarantees at least one element per
/// side when `n >= 2`.
pub fn train_test_split(n: usize, test_fraction: f32, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "fraction out of range"
    );
    let idx = shuffled_indices(n, seed);
    let mut n_test = ((n as f32) * test_fraction).round() as usize;
    if n >= 2 {
        n_test = n_test.clamp(1, n - 1);
    }
    let (test, train) = idx.split_at(n_test.min(n));
    (train.to_vec(), test.to_vec())
}

/// Generates `folds` (train, test) index pairs covering `0..n` exactly once
/// as test data.
pub fn kfold_indices(n: usize, folds: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    let folds = folds.clamp(2, n.max(2));
    let idx = shuffled_indices(n, seed);
    (0..folds)
        .map(|f| {
            let test: Vec<usize> = idx.iter().copied().skip(f).step_by(folds).collect();
            let train: Vec<usize> = idx
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % folds != f)
                .map(|(_, v)| v)
                .collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_permutation() {
        let idx = shuffled_indices(100, 9);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_by_seed() {
        assert_eq!(shuffled_indices(50, 3), shuffled_indices(50, 3));
        assert_ne!(shuffled_indices(50, 3), shuffled_indices(50, 4));
    }

    #[test]
    fn split_partitions_everything() {
        let (train, test) = train_test_split(40, 0.25, 1);
        assert_eq!(train.len() + test.len(), 40);
        assert_eq!(test.len(), 10);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn split_never_empties_either_side() {
        let (train, test) = train_test_split(2, 0.0, 1);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = train_test_split(5, 1.0, 1);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
    }

    #[test]
    fn kfold_covers_each_index_once_as_test() {
        let folds = kfold_indices(23, 5, 2);
        assert_eq!(folds.len(), 5);
        let mut test_union: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        test_union.sort_unstable();
        assert_eq!(test_union, (0..23).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            assert!(train.iter().all(|i| !test.contains(i)));
        }
    }
}
