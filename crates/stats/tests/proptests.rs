//! Property-based tests for the statistical measures: the invariants the
//! DeepBase engine relies on must hold for arbitrary behavior vectors.

use deepbase_stats::{
    corr::{pearson, StreamingPearson, Z_95},
    descriptive::{jaccard, silhouette_score},
    mi::{entropy_discrete, mutual_information_discrete},
    quantile::{quantile, quantile_bin},
};
use proptest::prelude::*;

fn behavior_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, len)
}

proptest! {
    #[test]
    fn correlation_bounded(
        xs in behavior_vec(2..64),
        shift in -5.0f32..5.0,
    ) {
        let ys: Vec<f32> = xs.iter().map(|x| x * 0.5 + shift).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn correlation_symmetric(pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 2..64)) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        prop_assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-5);
    }

    #[test]
    fn correlation_invariant_to_affine_transform(
        pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 4..64),
        a in 0.1f32..10.0,
        b in -10.0f32..10.0,
    ) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let transformed: Vec<f32> = xs.iter().map(|x| a * x + b).collect();
        let r1 = pearson(&xs, &ys);
        let r2 = pearson(&transformed, &ys);
        prop_assert!((r1 - r2).abs() < 5e-2, "{r1} vs {r2}");
    }

    #[test]
    fn self_correlation_is_one_for_nonconstant(xs in behavior_vec(4..64)) {
        // Skip numerically constant vectors, where the convention is 0.
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let spread = xs.iter().map(|x| (x - mean).abs()).fold(0.0f32, f32::max);
        prop_assume!(spread > 1.0);
        prop_assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn streaming_equals_batch_for_any_block_split(
        pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 8..64),
        split_at in 1usize..7,
    ) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let split = split_at.min(xs.len() - 1);
        let mut acc = StreamingPearson::new();
        acc.push_block(&xs[..split], &ys[..split]);
        acc.push_block(&xs[split..], &ys[split..]);
        prop_assert!((acc.correlation() - pearson(&xs, &ys)).abs() < 1e-4);
    }

    #[test]
    fn fisher_width_nonincreasing_in_n(extra in 10u32..500) {
        let mut acc = StreamingPearson::new();
        for i in 0..50u32 {
            acc.push((i % 7) as f32, (i % 5) as f32);
        }
        let w1 = acc.fisher_half_width(Z_95);
        for i in 0..extra {
            acc.push((i % 7) as f32, (i % 5) as f32);
        }
        // Same data-generating process: more samples can't widen the CI much.
        prop_assert!(acc.fisher_half_width(Z_95) <= w1 + 0.05);
    }

    #[test]
    fn mi_nonnegative_and_bounded_by_entropy(
        labels in proptest::collection::vec((0usize..4, 0usize..4), 4..128),
    ) {
        let xs: Vec<usize> = labels.iter().map(|p| p.0).collect();
        let ys: Vec<usize> = labels.iter().map(|p| p.1).collect();
        let mi = mutual_information_discrete(&xs, &ys);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= entropy_discrete(&xs) + 1e-4);
        prop_assert!(mi <= entropy_discrete(&ys) + 1e-4);
    }

    #[test]
    fn jaccard_bounded_and_reflexive(mask in proptest::collection::vec(0u8..2, 1..64)) {
        let a: Vec<f32> = mask.iter().map(|&v| v as f32).collect();
        let j_self = jaccard(&a, &a);
        if mask.contains(&1) {
            prop_assert_eq!(j_self, 1.0);
        } else {
            prop_assert_eq!(j_self, 0.0);
        }
        let b: Vec<f32> = mask.iter().map(|&v| 1.0 - v as f32).collect();
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn quantile_within_data_range(vals in behavior_vec(1..64), q in 0.0f32..=1.0) {
        let v = quantile(&vals, q);
        let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
        let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
    }

    #[test]
    fn quantile_monotone_in_q(vals in behavior_vec(2..64)) {
        let qs = [0.1f32, 0.3, 0.5, 0.7, 0.9];
        let vs: Vec<f32> = qs.iter().map(|&q| quantile(&vals, q)).collect();
        for pair in vs.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-6);
        }
    }

    #[test]
    fn quantile_bin_ids_in_range(vals in behavior_vec(1..64), bins in 1usize..8) {
        let b = quantile_bin(&vals, bins);
        prop_assert!(b.iter().all(|&id| id < bins));
    }

    #[test]
    fn silhouette_bounded(
        points in proptest::collection::vec(
            (0.0f32..10.0, 0.0f32..10.0, 0usize..3), 3..40,
        ),
    ) {
        let coords: Vec<Vec<f32>> = points.iter().map(|p| vec![p.0, p.1]).collect();
        let labels: Vec<usize> = points.iter().map(|p| p.2).collect();
        let s = silhouette_score(&coords, &labels);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s}");
    }
}
