//! Property-based tests for the statistical measures: the invariants the
//! DeepBase engine relies on must hold for arbitrary behavior vectors.

use deepbase_stats::{
    corr::{pearson, StreamingPearson, Z_95},
    descriptive::{jaccard, silhouette_score},
    mi::{entropy_discrete, mutual_information_discrete},
    quantile::{quantile, quantile_bin},
    LogRegConfig, MultiLogReg,
};
use deepbase_tensor::Matrix;
use proptest::prelude::*;

fn behavior_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..50.0, len)
}

/// Straightforward scalar re-implementation of the fused
/// `MultiLogReg::sgd_step` (sigmoid + BCE gradient + L1/L2 + Adam),
/// serving as the parity reference for the allocation-free kernel path.
struct NaiveLogReg {
    w: Vec<Vec<f32>>, // features x outputs
    b: Vec<f32>,
    mw: Vec<Vec<f32>>,
    vw: Vec<Vec<f32>>,
    mb: Vec<f32>,
    vb: Vec<f32>,
    t: u64,
    config: LogRegConfig,
    pos_weights: Vec<f32>,
}

impl NaiveLogReg {
    fn new(features: usize, outputs: usize, config: LogRegConfig, pos_weights: Vec<f32>) -> Self {
        NaiveLogReg {
            w: vec![vec![0.0; outputs]; features],
            b: vec![0.0; outputs],
            mw: vec![vec![0.0; outputs]; features],
            vw: vec![vec![0.0; outputs]; features],
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
            t: 0,
            config,
            pos_weights,
        }
    }

    // Deliberately written with plain indexed loops: this IS the naive
    // reference the fused kernel is checked against.
    #[allow(clippy::needless_range_loop)]
    fn step(&mut self, x: &Matrix, y: &Matrix) {
        let (rows, features, outputs) = (x.rows(), self.w.len(), self.b.len());
        let n = rows.max(1) as f32;
        // Forward + error.
        let mut err = vec![vec![0.0f32; outputs]; rows];
        for r in 0..rows {
            for o in 0..outputs {
                let mut logit = self.b[o];
                for (f, w_row) in self.w.iter().enumerate() {
                    logit += x.get(r, f) * w_row[o];
                }
                let p = 1.0 / (1.0 + (-logit).exp());
                let t = y.get(r, o);
                err[r][o] = p - t;
                if t > 0.5 {
                    err[r][o] *= self.pos_weights[o];
                }
            }
        }
        // Gradients.
        let mut gw = vec![vec![0.0f32; outputs]; features];
        for r in 0..rows {
            for (f, gw_row) in gw.iter_mut().enumerate() {
                for (o, g) in gw_row.iter_mut().enumerate() {
                    *g += x.get(r, f) * err[r][o];
                }
            }
        }
        let mut gb = vec![0.0f32; outputs];
        for row in &err {
            for (o, g) in gb.iter_mut().enumerate() {
                *g += row[o];
            }
        }
        for (f, gw_row) in gw.iter_mut().enumerate() {
            for (o, g) in gw_row.iter_mut().enumerate() {
                *g /= n;
                *g += self.config.l2 * self.w[f][o];
                *g += self.config.l1 * self.w[f][o].signum() * f32::from(self.w[f][o] != 0.0);
            }
        }
        for g in gb.iter_mut() {
            *g /= n;
        }
        // Adam.
        self.t += 1;
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let bias1 = 1.0 - b1.powf(self.t as f32);
        let bias2 = 1.0 - b2.powf(self.t as f32);
        let lr = self.config.learning_rate;
        for f in 0..features {
            for o in 0..outputs {
                let g = gw[f][o];
                self.mw[f][o] = b1 * self.mw[f][o] + (1.0 - b1) * g;
                self.vw[f][o] = b2 * self.vw[f][o] + (1.0 - b2) * g * g;
                self.w[f][o] -=
                    lr * (self.mw[f][o] / bias1) / ((self.vw[f][o] / bias2).sqrt() + eps);
            }
        }
        for o in 0..outputs {
            let g = gb[o];
            self.mb[o] = b1 * self.mb[o] + (1.0 - b1) * g;
            self.vb[o] = b2 * self.vb[o] + (1.0 - b2) * g * g;
            self.b[o] -= lr * (self.mb[o] / bias1) / ((self.vb[o] / bias2).sqrt() + eps);
        }
    }
}

proptest! {
    #[test]
    fn correlation_bounded(
        xs in behavior_vec(2..64),
        shift in -5.0f32..5.0,
    ) {
        let ys: Vec<f32> = xs.iter().map(|x| x * 0.5 + shift).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn correlation_symmetric(pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 2..64)) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        prop_assert!((pearson(&xs, &ys) - pearson(&ys, &xs)).abs() < 1e-5);
    }

    #[test]
    fn correlation_invariant_to_affine_transform(
        pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 4..64),
        a in 0.1f32..10.0,
        b in -10.0f32..10.0,
    ) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let transformed: Vec<f32> = xs.iter().map(|x| a * x + b).collect();
        let r1 = pearson(&xs, &ys);
        let r2 = pearson(&transformed, &ys);
        prop_assert!((r1 - r2).abs() < 5e-2, "{r1} vs {r2}");
    }

    #[test]
    fn self_correlation_is_one_for_nonconstant(xs in behavior_vec(4..64)) {
        // Skip numerically constant vectors, where the convention is 0.
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let spread = xs.iter().map(|x| (x - mean).abs()).fold(0.0f32, f32::max);
        prop_assume!(spread > 1.0);
        prop_assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn streaming_equals_batch_for_any_block_split(
        pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 8..64),
        split_at in 1usize..7,
    ) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let split = split_at.min(xs.len() - 1);
        let mut acc = StreamingPearson::new();
        acc.push_block(&xs[..split], &ys[..split]);
        acc.push_block(&xs[split..], &ys[split..]);
        prop_assert!((acc.correlation() - pearson(&xs, &ys)).abs() < 1e-4);
    }

    #[test]
    fn fisher_width_nonincreasing_in_n(extra in 10u32..500) {
        let mut acc = StreamingPearson::new();
        for i in 0..50u32 {
            acc.push((i % 7) as f32, (i % 5) as f32);
        }
        let w1 = acc.fisher_half_width(Z_95);
        for i in 0..extra {
            acc.push((i % 7) as f32, (i % 5) as f32);
        }
        // Same data-generating process: more samples can't widen the CI much.
        prop_assert!(acc.fisher_half_width(Z_95) <= w1 + 0.05);
    }

    #[test]
    fn columnar_strided_push_matches_scalar_pushes(
        rows in proptest::collection::vec((-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0), 4..48),
        unit in 0usize..3,
        split_at in 1usize..40,
    ) {
        // Interleave 3 columns row-major (the behavior-matrix layout) and
        // a shared y; the strided block update must match per-element
        // pushes even across an arbitrary block split.
        let stride = 3;
        let flat: Vec<f32> = rows.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
        let ys: Vec<f32> = rows.iter().map(|&(a, b, _)| (a + b) * 0.25).collect();
        let split = split_at.min(rows.len() - 1);

        let mut scalar = StreamingPearson::new();
        for (r, &y) in ys.iter().enumerate() {
            scalar.push(flat[unit + r * stride], y);
        }
        let mut strided = StreamingPearson::new();
        strided.push_block_strided(&flat[..split * stride], unit, stride, &ys[..split]);
        strided.push_block_strided(&flat[split * stride..], unit, stride, &ys[split..]);
        prop_assert_eq!(strided.count(), scalar.count());
        prop_assert!(
            (strided.correlation() - scalar.correlation()).abs() < 1e-4,
            "strided {} vs scalar {}",
            strided.correlation(),
            scalar.correlation()
        );
        prop_assert!(
            (strided.fisher_half_width(Z_95) - scalar.fisher_half_width(Z_95)).abs() < 1e-4
        );
    }

    #[test]
    fn fused_sgd_step_matches_naive_reference(
        rows in proptest::collection::vec((-2.0f32..2.0, -2.0f32..2.0, 0u8..2, 0u8..2), 6..32),
        l1 in 0.0f32..0.05,
        l2 in 0.0f32..0.05,
        pos_weight in 1.0f32..4.0,
        steps in 1usize..6,
    ) {
        let n = rows.len();
        let x = Matrix::from_fn(n, 2, |r, c| if c == 0 { rows[r].0 } else { rows[r].1 });
        let y = Matrix::from_fn(n, 2, |r, c| {
            f32::from(if c == 0 { rows[r].2 } else { rows[r].3 })
        });
        let config = LogRegConfig { learning_rate: 0.05, l1, l2, ..Default::default() };

        let mut fused = MultiLogReg::new(2, 2, config.clone());
        fused.set_pos_weights(vec![pos_weight, 1.0]);
        let mut reference = NaiveLogReg::new(2, 2, config, vec![pos_weight, 1.0]);
        for _ in 0..steps {
            fused.sgd_step(&x, &y);
            reference.step(&x, &y);
        }
        for f in 0..2 {
            for o in 0..2 {
                let got = fused.weights().get(f, o);
                let want = reference.w[f][o];
                prop_assert!(
                    (got - want).abs() < 1e-3,
                    "weight ({f},{o}): fused {got} vs reference {want}"
                );
            }
        }
        // Bias agreement is observable through the probabilities.
        let probs = fused.predict_proba(&x);
        for r in 0..n {
            for o in 0..2 {
                let mut logit = reference.b[o];
                for f in 0..2 {
                    logit += x.get(r, f) * reference.w[f][o];
                }
                let want = 1.0 / (1.0 + (-logit).exp());
                prop_assert!(
                    (probs.get(r, o) - want).abs() < 1e-3,
                    "prob ({r},{o}) diverged"
                );
            }
        }
    }

    #[test]
    fn mi_nonnegative_and_bounded_by_entropy(
        labels in proptest::collection::vec((0usize..4, 0usize..4), 4..128),
    ) {
        let xs: Vec<usize> = labels.iter().map(|p| p.0).collect();
        let ys: Vec<usize> = labels.iter().map(|p| p.1).collect();
        let mi = mutual_information_discrete(&xs, &ys);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= entropy_discrete(&xs) + 1e-4);
        prop_assert!(mi <= entropy_discrete(&ys) + 1e-4);
    }

    #[test]
    fn jaccard_bounded_and_reflexive(mask in proptest::collection::vec(0u8..2, 1..64)) {
        let a: Vec<f32> = mask.iter().map(|&v| v as f32).collect();
        let j_self = jaccard(&a, &a);
        if mask.contains(&1) {
            prop_assert_eq!(j_self, 1.0);
        } else {
            prop_assert_eq!(j_self, 0.0);
        }
        let b: Vec<f32> = mask.iter().map(|&v| 1.0 - v as f32).collect();
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn quantile_within_data_range(vals in behavior_vec(1..64), q in 0.0f32..=1.0) {
        let v = quantile(&vals, q);
        let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
        let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
    }

    #[test]
    fn quantile_monotone_in_q(vals in behavior_vec(2..64)) {
        let qs = [0.1f32, 0.3, 0.5, 0.7, 0.9];
        let vs: Vec<f32> = qs.iter().map(|&q| quantile(&vals, q)).collect();
        for pair in vs.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-6);
        }
    }

    #[test]
    fn quantile_bin_ids_in_range(vals in behavior_vec(1..64), bins in 1usize..8) {
        let b = quantile_bin(&vals, bins);
        prop_assert!(b.iter().all(|&id| id < bins));
    }

    #[test]
    fn silhouette_bounded(
        points in proptest::collection::vec(
            (0.0f32..10.0, 0.0f32..10.0, 0usize..3), 3..40,
        ),
    ) {
        let coords: Vec<Vec<f32>> = points.iter().map(|p| vec![p.0, p.1]).collect();
        let labels: Vec<usize> = points.iter().map(|p| p.2).collect();
        let s = silhouette_score(&coords, &labels);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s}");
    }
}
