//! Elementwise nonlinearities and the row-wise softmax used by the NN
//! substrate, together with their derivatives (expressed in terms of the
//! forward outputs, as back-propagation consumes them).

use crate::Matrix;

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Derivative of sigmoid expressed via its output `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_deriv_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed via its output `t = tanh(x)`.
#[inline]
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU w.r.t. its input.
#[inline]
pub fn relu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Applies sigmoid to every element, returning a new matrix.
pub fn sigmoid_matrix(m: &Matrix) -> Matrix {
    m.map(sigmoid)
}

/// Applies tanh to every element, returning a new matrix.
pub fn tanh_matrix(m: &Matrix) -> Matrix {
    m.map(tanh)
}

/// Row-wise softmax with max-subtraction for numerical stability.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        softmax_slice(out.row_mut(r));
    }
    out
}

/// In-place softmax over a single slice.
pub fn softmax_slice(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Cross-entropy loss of row-wise softmax probabilities against integer
/// class targets; returns the mean negative log-likelihood.
pub fn cross_entropy_rows(probs: &Matrix, targets: &[usize]) -> f32 {
    assert_eq!(probs.rows(), targets.len(), "cross_entropy target count");
    let mut total = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        let p = probs.get(r, t).max(1e-12);
        total -= p.ln();
    }
    total / targets.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(30.0) > 0.999);
        assert!(sigmoid(-30.0) < 0.001);
        // Extreme inputs should not produce NaN.
        assert!(!sigmoid(1e10).is_nan());
        assert!(!sigmoid(-1e10).is_nan());
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let eps = 1e-3;
            let fd = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            let analytic = sigmoid_deriv_from_output(sigmoid(x));
            assert!((fd - analytic).abs() < 1e-3, "x={x}: {fd} vs {analytic}");
        }
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let eps = 1e-3;
            let fd = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            let analytic = tanh_deriv_from_output(tanh(x));
            assert!((fd - analytic).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_and_derivative() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_deriv(-1.0), 0.0);
        assert_eq!(relu_deriv(2.0), 1.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Largest logit keeps largest probability.
        assert_eq!(s.argmax_rows(), vec![2, 2]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1001.0, 1002.0]).unwrap();
        let s = softmax_rows(&m);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
        let sum: f32 = s.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_shift_invariance() {
        let a = Matrix::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let b = a.map(|x| x + 5.0);
        assert!(softmax_rows(&a).approx_eq(&softmax_rows(&b), 1e-5));
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let probs = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        assert!(cross_entropy_rows(&probs, &[0]) < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let probs = Matrix::from_vec(1, 4, vec![0.25; 4]).unwrap();
        let loss = cross_entropy_rows(&probs, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }
}
