//! Random weight initializers.
//!
//! These mirror the defaults Keras applies to the layers the paper's models
//! use: Glorot-uniform for dense/input projections and orthogonal-ish
//! scaled-normal for recurrent kernels (we use scaled normal, which is
//! sufficient for the model scales in this reproduction).

use crate::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Deterministic RNG for reproducible experiments. Every harness and test in
/// this repository seeds explicitly; nothing uses entropy from the OS.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform values in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Glorot/Xavier uniform: `U(-l, l)` with `l = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0f32 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(fan_in, fan_out, -limit, limit, rng)
}

/// Zero-mean normal values with the given standard deviation
/// (Box–Muller; avoids a distribution-crate dependency).
pub fn normal(rows: usize, cols: usize, std_dev: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std_dev * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let ma = uniform(3, 3, -1.0, 1.0, &mut a);
        let mb = uniform(3, 3, -1.0, 1.0, &mut b);
        assert_eq!(ma, mb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(1);
        let m = uniform(20, 20, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn glorot_limit_shrinks_with_fan() {
        let mut rng = seeded_rng(2);
        let small_fan = glorot_uniform(4, 4, &mut rng);
        let big_fan = glorot_uniform(400, 400, &mut rng);
        assert!(small_fan.max().abs().max(small_fan.min().abs()) > big_fan.max());
    }

    #[test]
    fn normal_sample_statistics() {
        let mut rng = seeded_rng(3);
        let m = normal(100, 100, 2.0, &mut rng);
        let mean = m.mean();
        let var =
            m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (m.len() - 1) as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_produces_finite_values() {
        let mut rng = seeded_rng(4);
        let m = normal(50, 50, 1.0, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
    }
}
