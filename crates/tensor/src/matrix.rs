//! Dense row-major `f32` matrix.
//!
//! This is the numeric substrate the rest of the reproduction is built on.
//! It deliberately covers only what the DeepBase pipeline needs — dense 2-D
//! arrays, a fast blocked mat-mul (plus transposed variants used by
//! back-propagation), elementwise kernels and reductions — rather than being
//! a general tensor library.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for shape-related failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub msg: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix of `f32` values.
///
/// Row-major layout means element `(r, c)` lives at `data[r * cols + c]`,
/// which makes per-row slices (`row`) free and keeps mat-mul inner loops
/// sequential in memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                msg: format!("data length {} != {}x{}", data.len(), rows, cols),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor. Panics when out of range (debug-friendly indexing
    /// is the common case in this codebase; use `get_checked` for fallible
    /// access).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Fallible element accessor.
    pub fn get_checked(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix containing rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Vertically stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError {
                msg: format!("vstack cols {} != {}", self.cols, other.cols),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Horizontally stacks `self` to the left of `other` (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError {
                msg: format!("hstack rows {} != {}", self.rows, other.rows),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally-shaped matrices.
    pub fn zip_map(
        &self,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError {
                msg: format!("zip_map {:?} vs {:?}", self.shape(), other.shape()),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition. Panics on shape mismatch (used on hot paths
    /// where shapes are statically known).
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
        out
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
        out
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place scaling.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `row_vec` (length == cols) to every row; used for bias terms.
    pub fn add_row_broadcast(&mut self, row_vec: &[f32]) {
        assert_eq!(row_vec.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter_mut().zip(row_vec.iter()) {
                *a += b;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (NaN-ignoring); `f32::NEG_INFINITY` when empty.
    pub fn max(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-ignoring); `f32::INFINITY` when empty.
    pub fn min(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f32::INFINITY, f32::min)
    }

    /// Column sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for row in self.rows_iter() {
            for (s, v) in sums.iter_mut().zip(row.iter()) {
                *s += v;
            }
        }
        sums
    }

    /// Index of the maximum element of each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when all corresponding elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Matrix product `self * other`, via the blocked kernel
    /// ([`kernels::matmul_into`]).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// Matrix product written into an existing, correctly-shaped output
    /// (allocation-free hot path for training loops).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul_into inner dims");
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape"
        );
        kernels::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Reference `i-k-j` scalar product, retained for parity tests and as
    /// the benchmark baseline the blocked kernel is measured against.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul_naive inner dims");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul outer dims {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        kernels::t_matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `self^T * other` into an existing `cols x other.cols` output.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul_into outer dims");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "t_matmul_into output shape"
        );
        kernels::t_matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// `self * other^T` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t inner dims {}x{} * {}x{}^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        kernels::matmul_t_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
        out
    }

    /// `self * other^T` into an existing `rows x other.rows` output.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t_into inner dims");
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_t_into output shape"
        );
        kernels::matmul_t_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
    }

    /// Parallel matrix product: output rows are split into `threads`
    /// deterministic chunks and dispatched onto the persistent
    /// `deepbase-runtime` worker pool (no per-call thread spawning).
    ///
    /// This is the kernel behind the reproduction's simulated "GPU" device:
    /// the paper offloads batched extraction and merged-model training to a
    /// K80; we offload the same matrix products to the pool. Chunking is
    /// independent of which worker runs which chunk, so results are
    /// bit-identical to [`Matrix::matmul`].
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_parallel_into(other, threads, &mut out);
        out
    }

    /// [`Matrix::matmul_parallel`] into an existing output (the
    /// allocation-free hot path used by fused training steps).
    pub fn matmul_parallel_into(&self, other: &Matrix, threads: usize, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul_parallel inner dims");
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_parallel output shape"
        );
        let threads = threads.max(1);
        if threads == 1 || self.rows < 2 * threads || out.data.is_empty() {
            return self.matmul_into(other, out);
        }
        let chunk_rows = self.rows.div_ceil(threads);
        let out_cols = other.cols;
        let lhs_cols = self.cols;
        let lhs = &self.data;
        let rhs = &other.data;
        deepbase_runtime::parallel_for_chunks(
            &mut out.data,
            chunk_rows * out_cols,
            |idx, chunk| {
                let row_start = idx * chunk_rows;
                let rows_here = chunk.len() / out_cols;
                let lhs_part = &lhs[row_start * lhs_cols..(row_start + rows_here) * lhs_cols];
                kernels::matmul_into(lhs_part, rows_here, lhs_cols, rhs, out_cols, chunk);
            },
        );
    }
}

/// Cache-blocked, register-tiled mat-mul kernels.
///
/// All three product shapes (`A*B`, `Aᵀ*B`, `A*Bᵀ`) share the same design:
///
/// * the shared dimension is processed in panels of [`KC`] so the active
///   right-hand rows stay in cache across output rows;
/// * the left operand's panel is **packed** into a contiguous stack buffer
///   (two rows at a time), so the micro-kernel reads one linear stream;
/// * the micro-kernel updates two output rows with four shared-dimension
///   steps per pass — a branch-free `2x4` register tile whose inner loop
///   is a pure mul-add stream the compiler autovectorizes;
/// * there is deliberately no per-element `a == 0.0` skip: the old
///   branch made sparse-ish inputs fast but cost a branch per element on
///   the dense inputs that dominate (activations, weights, gradients).
mod kernels {
    /// Shared-dimension panel width (f32s): 4 rows of 256 floats = 4 KiB
    /// per right-hand panel stripe, comfortably inside L1 alongside the
    /// packed left panel.
    const KC: usize = 256;

    /// `out = lhs(m x k) * rhs(k x n)`, overwriting `out`.
    pub fn matmul_into(lhs: &[f32], m: usize, k: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(lhs.len(), m * k);
        debug_assert_eq!(rhs.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let mut apack = [0.0f32; 2 * KC];
        let mut kb = 0;
        while kb < k {
            let kc = KC.min(k - kb);
            let rhs_panel = &rhs[kb * n..(kb + kc) * n];
            let mut i = 0;
            while i + 1 < m {
                apack[..kc].copy_from_slice(&lhs[i * k + kb..i * k + kb + kc]);
                apack[KC..KC + kc].copy_from_slice(&lhs[(i + 1) * k + kb..(i + 1) * k + kb + kc]);
                let (head, tail) = out.split_at_mut((i + 1) * n);
                let out0 = &mut head[i * n..];
                let out1 = &mut tail[..n];
                accumulate_two_rows(&apack, kc, rhs_panel, n, out0, out1);
                i += 2;
            }
            if i < m {
                apack[..kc].copy_from_slice(&lhs[i * k + kb..i * k + kb + kc]);
                accumulate_one_row(&apack[..kc], rhs_panel, n, &mut out[i * n..(i + 1) * n]);
            }
            kb += kc;
        }
    }

    /// `out = lhs(m x k)^T * rhs(m x n)`, overwriting `out` (`k x n`).
    ///
    /// Identical panel structure with the roles swapped: the shared
    /// dimension is `m` (rows of both inputs), and the packed "left" panel
    /// holds a *column pair* of `lhs` gathered across the row panel.
    pub fn t_matmul_into(lhs: &[f32], m: usize, k: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(lhs.len(), m * k);
        debug_assert_eq!(rhs.len(), m * n);
        debug_assert_eq!(out.len(), k * n);
        out.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let mut apack = [0.0f32; 2 * KC];
        let mut rb = 0;
        while rb < m {
            let rc = KC.min(m - rb);
            let rhs_panel = &rhs[rb * n..(rb + rc) * n];
            let mut c = 0;
            while c + 1 < k {
                for (p, r) in (rb..rb + rc).enumerate() {
                    apack[p] = lhs[r * k + c];
                    apack[KC + p] = lhs[r * k + c + 1];
                }
                let (head, tail) = out.split_at_mut((c + 1) * n);
                let out0 = &mut head[c * n..];
                let out1 = &mut tail[..n];
                accumulate_two_rows(&apack, rc, rhs_panel, n, out0, out1);
                c += 2;
            }
            if c < k {
                for (p, r) in (rb..rb + rc).enumerate() {
                    apack[p] = lhs[r * k + c];
                }
                accumulate_one_row(&apack[..rc], rhs_panel, n, &mut out[c * n..(c + 1) * n]);
            }
            rb += rc;
        }
    }

    /// `out = lhs(m x k) * rhs(n x k)^T`, overwriting `out` (`m x n`).
    ///
    /// Both operands are traversed along contiguous rows; each output
    /// element is a dot product. Four dots are computed per pass so the
    /// `lhs` row is loaded once per four `rhs` rows.
    pub fn matmul_t_into(lhs: &[f32], m: usize, k: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(lhs.len(), m * k);
        debug_assert_eq!(rhs.len(), n * k);
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            let a_row = &lhs[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 3 < n {
                let b0 = &rhs[j * k..(j + 1) * k];
                let b1 = &rhs[(j + 1) * k..(j + 2) * k];
                let b2 = &rhs[(j + 2) * k..(j + 3) * k];
                let b3 = &rhs[(j + 3) * k..(j + 4) * k];
                let (mut d0, mut d1, mut d2, mut d3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for ((((&a, &x0), &x1), &x2), &x3) in a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                    d0 += a * x0;
                    d1 += a * x1;
                    d2 += a * x2;
                    d3 += a * x3;
                }
                out_row[j] = d0;
                out_row[j + 1] = d1;
                out_row[j + 2] = d2;
                out_row[j + 3] = d3;
                j += 4;
            }
            while j < n {
                let b_row = &rhs[j * k..(j + 1) * k];
                out_row[j] = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
                j += 1;
            }
        }
    }

    /// `2x4` register tile: accumulates four shared-dimension steps into
    /// two output rows per pass. `a` packs the two left rows at offsets
    /// `0` and [`KC`]; `rhs_panel` holds `kc` contiguous right rows.
    fn accumulate_two_rows(
        a: &[f32; 2 * KC],
        kc: usize,
        rhs_panel: &[f32],
        n: usize,
        out0: &mut [f32],
        out1: &mut [f32],
    ) {
        let mut kk = 0;
        while kk + 3 < kc {
            let (a00, a01, a02, a03) = (a[kk], a[kk + 1], a[kk + 2], a[kk + 3]);
            let (a10, a11, a12, a13) = (a[KC + kk], a[KC + kk + 1], a[KC + kk + 2], a[KC + kk + 3]);
            let b0 = &rhs_panel[kk * n..(kk + 1) * n];
            let b1 = &rhs_panel[(kk + 1) * n..(kk + 2) * n];
            let b2 = &rhs_panel[(kk + 2) * n..(kk + 3) * n];
            let b3 = &rhs_panel[(kk + 3) * n..(kk + 4) * n];
            for (((((o0, o1), &x0), &x1), &x2), &x3) in out0
                .iter_mut()
                .zip(out1.iter_mut())
                .zip(b0)
                .zip(b1)
                .zip(b2)
                .zip(b3)
            {
                *o0 += a00 * x0 + a01 * x1 + a02 * x2 + a03 * x3;
                *o1 += a10 * x0 + a11 * x1 + a12 * x2 + a13 * x3;
            }
            kk += 4;
        }
        while kk < kc {
            let (a0, a1) = (a[kk], a[KC + kk]);
            let b_row = &rhs_panel[kk * n..(kk + 1) * n];
            for ((o0, o1), &b) in out0.iter_mut().zip(out1.iter_mut()).zip(b_row) {
                *o0 += a0 * b;
                *o1 += a1 * b;
            }
            kk += 1;
        }
    }

    /// Single-row tail of the tile: same four-step unrolling, one output.
    fn accumulate_one_row(a: &[f32], rhs_panel: &[f32], n: usize, out: &mut [f32]) {
        let kc = a.len();
        let mut kk = 0;
        while kk + 3 < kc {
            let (a0, a1, a2, a3) = (a[kk], a[kk + 1], a[kk + 2], a[kk + 3]);
            let b0 = &rhs_panel[kk * n..(kk + 1) * n];
            let b1 = &rhs_panel[(kk + 1) * n..(kk + 2) * n];
            let b2 = &rhs_panel[(kk + 2) * n..(kk + 3) * n];
            let b3 = &rhs_panel[(kk + 3) * n..(kk + 4) * n];
            for ((((o, &x0), &x1), &x2), &x3) in out.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *o += a0 * x0 + a1 * x1 + a2 * x2 + a3 * x3;
            }
            kk += 4;
        }
        while kk < kc {
            let a0 = a[kk];
            let b_row = &rhs_panel[kk * n..(kk + 1) * n];
            for (o, &b) in out.iter_mut().zip(b_row) {
                *o += a0 * b;
            }
            kk += 1;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:8.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec()).unwrap()
    }

    #[test]
    fn zeros_has_correct_shape_and_values() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_fn_row_major_order() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = Matrix::zeros(2, 2);
        a.set(1, 0, 7.5);
        assert_eq!(a.get(1, 0), 7.5);
        assert_eq!(a.get_checked(5, 0), None);
    }

    #[test]
    fn row_and_col_access() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_known_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert!(a.matmul(&Matrix::identity(2)).approx_eq(&a, 1e-6));
        assert!(Matrix::identity(2).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert!(a.t_matmul(&b).approx_eq(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert!(a.matmul_t(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let a = Matrix::from_fn(17, 13, |r, c| ((r * 31 + c * 7) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(13, 9, |r, c| ((r * 13 + c * 3) % 7) as f32 - 3.0);
        let serial = a.matmul(&b);
        for threads in [1, 2, 4, 8] {
            assert!(a.matmul_parallel(&b, threads).approx_eq(&serial, 1e-4));
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_across_shapes() {
        // Shapes straddling the tile boundaries: odd rows, k remainders,
        // k larger than one panel, and tiny edges.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 2),
            (5, 7, 3),
            (8, 256, 4),
            (7, 300, 5),
            (3, 513, 9),
            (33, 17, 31),
        ] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 11 + c * 5) % 9) as f32 - 4.0);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert!(
                blocked.approx_eq(&naive, 1e-3),
                "blocked != naive at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn into_variants_overwrite_stale_output() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::full(2, 2, 99.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));

        let mut t_out = Matrix::full(3, 2, 99.0);
        a.t_matmul_into(&m(2, 2, &[1.0, 0.0, 0.0, 1.0]), &mut t_out);
        assert!(t_out.approx_eq(&a.transpose(), 1e-6));

        let mut mt_out = Matrix::full(2, 2, 99.0);
        a.matmul_t_into(&a, &mut mt_out);
        assert!(mt_out.approx_eq(&a.matmul(&a.transpose()), 1e-4));
    }

    #[test]
    fn kernels_handle_zero_heavy_inputs() {
        // The old kernel special-cased a == 0.0; the blocked one must stay
        // correct (not fast-pathed) on sparse data.
        let a = Matrix::from_fn(9, 20, |r, c| if (r + c) % 5 == 0 { 2.5 } else { 0.0 });
        let b = Matrix::from_fn(20, 6, |r, c| if r % 3 == 0 { c as f32 } else { 0.0 });
        assert!(a.matmul(&b).approx_eq(&a.matmul_naive(&b), 1e-4));
        assert!(a
            .t_matmul(&Matrix::identity(9).matmul(&a))
            .approx_eq(&a.transpose().matmul(&a), 1e-3));
    }

    #[test]
    fn add_sub_hadamard() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        a.add_scaled(&m(1, 2, &[2.0, 4.0]), 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn broadcast_adds_row_to_each_row() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.col_sums(), vec![4.0, 2.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = m(2, 3, &[0.1, 0.9, 0.5, 0.3, 0.2, 0.8]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn slice_rows_copies_range() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.slice_rows(1, 3);
        assert_eq!(s, m(2, 2, &[3.0, 4.0, 5.0, 6.0]));
    }

    #[test]
    fn stack_operations() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(1, 2, &[3.0, 4.0]);
        assert_eq!(a.vstack(&b).unwrap(), m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(a.hstack(&b).unwrap(), m(1, 4, &[1.0, 2.0, 3.0, 4.0]));
        assert!(a.vstack(&m(1, 3, &[0.0; 3])).is_err());
        assert!(a.hstack(&m(2, 2, &[0.0; 4])).is_err());
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_bounded_for_large_matrices() {
        let a = Matrix::zeros(100, 100);
        let s = format!("{a}");
        assert!(s.lines().count() < 12);
    }
}
