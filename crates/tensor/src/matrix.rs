//! Dense row-major `f32` matrix.
//!
//! This is the numeric substrate the rest of the reproduction is built on.
//! It deliberately covers only what the DeepBase pipeline needs — dense 2-D
//! arrays, a fast blocked mat-mul (plus transposed variants used by
//! back-propagation), elementwise kernels and reductions — rather than being
//! a general tensor library.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for shape-related failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub msg: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix of `f32` values.
///
/// Row-major layout means element `(r, c)` lives at `data[r * cols + c]`,
/// which makes per-row slices (`row`) free and keeps mat-mul inner loops
/// sequential in memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                msg: format!("data length {} != {}x{}", data.len(), rows, cols),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor. Panics when out of range (debug-friendly indexing
    /// is the common case in this codebase; use `get_checked` for fallible
    /// access).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Fallible element accessor.
    pub fn get_checked(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix containing rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Vertically stacks `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError {
                msg: format!("vstack cols {} != {}", self.cols, other.cols),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix { rows: self.rows + other.rows, cols: self.cols, data })
    }

    /// Horizontally stacks `self` to the left of `other` (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError {
                msg: format!("hstack rows {} != {}", self.rows, other.rows),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix { rows: self.rows, cols, data })
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally-shaped matrices.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError {
                msg: format!("zip_map {:?} vs {:?}", self.shape(), other.shape()),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition. Panics on shape mismatch (used on hot paths
    /// where shapes are statically known).
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
        out
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
        out
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place scaling.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `row_vec` (length == cols) to every row; used for bias terms.
    pub fn add_row_broadcast(&mut self, row_vec: &[f32]) {
        assert_eq!(row_vec.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter_mut().zip(row_vec.iter()) {
                *a += b;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (NaN-ignoring); `f32::NEG_INFINITY` when empty.
    pub fn max(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-ignoring); `f32::INFINITY` when empty.
    pub fn min(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f32::INFINITY, f32::min)
    }

    /// Column sums as a vector of length `cols`.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for row in self.rows_iter() {
            for (s, v) in sums.iter_mut().zip(row.iter()) {
                *s += v;
            }
        }
        sums
    }

    /// Index of the maximum element of each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when all corresponding elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the `i-k-j` loop order so the inner loop walks both the output
    /// row and the right-hand row sequentially; this is the standard
    /// cache-friendly layout for row-major data and is what keeps LSTM
    /// training tolerable without a BLAS dependency.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_into(&self.data, self.rows, self.cols, &other.data, other.cols, &mut out.data);
        out
    }

    /// `self^T * other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul outer dims {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        // out[c][j] += self[r][c] * other[r][j]
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (c, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[c * other.cols..(c + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t inner dims {}x{} * {}x{}^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let out_row = &mut out.data[r * other.rows..(r + 1) * other.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        out
    }

    /// Parallel matrix product, splitting output rows across `threads`
    /// OS threads via crossbeam scoped threads.
    ///
    /// This is the kernel behind the reproduction's simulated "GPU" device:
    /// the paper offloads batched extraction and merged-model training to a
    /// K80; we offload the same matrix products to a thread pool.
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul_parallel inner dims");
        let threads = threads.max(1);
        if threads == 1 || self.rows < 2 * threads {
            return self.matmul(other);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let chunk_rows = self.rows.div_ceil(threads);
        let out_cols = other.cols;
        let lhs_cols = self.cols;
        {
            let lhs = &self.data;
            let rhs = &other.data;
            let chunks: Vec<&mut [f32]> = out.data.chunks_mut(chunk_rows * out_cols).collect();
            crossbeam::thread::scope(|scope| {
                for (idx, chunk) in chunks.into_iter().enumerate() {
                    let row_start = idx * chunk_rows;
                    let rows_here = chunk.len() / out_cols;
                    let lhs_part = &lhs[row_start * lhs_cols..(row_start + rows_here) * lhs_cols];
                    scope.spawn(move |_| {
                        matmul_into(lhs_part, rows_here, lhs_cols, rhs, out_cols, chunk);
                    });
                }
            })
            .expect("matmul_parallel worker panicked");
        }
        out
    }
}

/// Inner mat-mul kernel shared by the serial and parallel entry points.
fn matmul_into(lhs: &[f32], m: usize, k: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &lhs[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = &rhs[kk * n..(kk + 1) * n];
            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:8.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec()).unwrap()
    }

    #[test]
    fn zeros_has_correct_shape_and_values() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_fn_row_major_order() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = Matrix::zeros(2, 2);
        a.set(1, 0, 7.5);
        assert_eq!(a.get(1, 0), 7.5);
        assert_eq!(a.get_checked(5, 0), None);
    }

    #[test]
    fn row_and_col_access() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_known_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert!(a.matmul(&Matrix::identity(2)).approx_eq(&a, 1e-6));
        assert!(Matrix::identity(2).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert!(a.t_matmul(&b).approx_eq(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert!(a.matmul_t(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let a = Matrix::from_fn(17, 13, |r, c| ((r * 31 + c * 7) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(13, 9, |r, c| ((r * 13 + c * 3) % 7) as f32 - 3.0);
        let serial = a.matmul(&b);
        for threads in [1, 2, 4, 8] {
            assert!(a.matmul_parallel(&b, threads).approx_eq(&serial, 1e-4));
        }
    }

    #[test]
    fn add_sub_hadamard() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        a.add_scaled(&m(1, 2, &[2.0, 4.0]), 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn broadcast_adds_row_to_each_row() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.col_sums(), vec![4.0, 2.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = m(2, 3, &[0.1, 0.9, 0.5, 0.3, 0.2, 0.8]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn slice_rows_copies_range() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.slice_rows(1, 3);
        assert_eq!(s, m(2, 2, &[3.0, 4.0, 5.0, 6.0]));
    }

    #[test]
    fn stack_operations() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(1, 2, &[3.0, 4.0]);
        assert_eq!(a.vstack(&b).unwrap(), m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(a.hstack(&b).unwrap(), m(1, 4, &[1.0, 2.0, 3.0, 4.0]));
        assert!(a.vstack(&m(1, 3, &[0.0; 3])).is_err());
        assert!(a.hstack(&m(2, 2, &[0.0; 4])).is_err());
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_bounded_for_large_matrices() {
        let a = Matrix::zeros(100, 100);
        let s = format!("{a}");
        assert!(s.lines().count() < 12);
    }
}
