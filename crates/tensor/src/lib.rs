//! # deepbase-tensor
//!
//! Dense `f32` linear algebra substrate for the DeepBase reproduction.
//!
//! The DeepBase paper builds on NumPy/Keras for its numeric kernels; this
//! crate provides the equivalent foundation in pure Rust:
//!
//! * [`Matrix`] — row-major dense matrix with cache-friendly and parallel
//!   mat-mul kernels (the parallel path backs the reproduction's simulated
//!   GPU device),
//! * [`ops`] — elementwise nonlinearities, row-softmax and cross-entropy,
//! * [`init`] — deterministic, seedable weight initializers.
//!
//! Everything downstream (the `deepbase-nn` training substrate, merged
//! logistic-regression measures in `deepbase-stats`, the inspection engines
//! in `deepbase-core`) is built on these types.

pub mod init;
pub mod matrix;
pub mod ops;

pub use matrix::{Matrix, ShapeError};
