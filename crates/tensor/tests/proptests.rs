//! Property-based tests for the matrix substrate: algebraic identities that
//! must hold for arbitrary shapes and contents.

use deepbase_tensor::Matrix;
use proptest::prelude::*;

/// Strategy producing a matrix with dims in [1, 8] and small finite values.
fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// A pair of matrices with a shared inner dimension, for mat-mul laws.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
        let lhs = proptest::collection::vec(-10.0f32..10.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d).unwrap());
        let rhs = proptest::collection::vec(-10.0f32..10.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d).unwrap());
        (lhs, rhs)
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(a in small_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_shape(a in small_matrix()) {
        let t = a.transpose();
        prop_assert_eq!(t.shape(), (a.cols(), a.rows()));
    }

    #[test]
    fn matmul_identity_left_right(a in small_matrix()) {
        let left = Matrix::identity(a.rows()).matmul(&a);
        let right = a.matmul(&Matrix::identity(a.cols()));
        prop_assert!(left.approx_eq(&a, 1e-3));
        prop_assert!(right.approx_eq(&a, 1e-3));
    }

    #[test]
    fn matmul_transpose_law((a, b) in matmul_pair()) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn fused_transpose_kernels_match((a, b) in matmul_pair()) {
        let reference = a.matmul(&b);
        // a.matmul_t(b^T) must equal a.matmul(b).
        let bt = b.transpose();
        prop_assert!(a.matmul_t(&bt).approx_eq(&reference, 1e-2));
        // (a^T).t_matmul(b) must equal a.matmul(b).
        let at = a.transpose();
        prop_assert!(at.t_matmul(&b).approx_eq(&reference, 1e-2));
    }

    #[test]
    fn parallel_matmul_matches_serial((a, b) in matmul_pair()) {
        let serial = a.matmul(&b);
        prop_assert!(a.matmul_parallel(&b, 4).approx_eq(&serial, 1e-2));
    }

    #[test]
    fn blocked_matmul_matches_naive_reference((a, b) in matmul_pair()) {
        // The cache-blocked kernel must agree with the retained scalar
        // reference for arbitrary shapes and contents.
        prop_assert!(a.matmul(&b).approx_eq(&a.matmul_naive(&b), 1e-2));
    }

    #[test]
    fn into_kernels_match_allocating_kernels((a, b) in matmul_pair()) {
        // Stale output contents must not leak into any _into result.
        let mut out = Matrix::full(a.rows(), b.cols(), f32::NAN);
        a.matmul_into(&b, &mut out);
        prop_assert!(out.approx_eq(&a.matmul(&b), 1e-3));

        let at = a.transpose();
        let mut t_out = Matrix::full(a.rows(), b.cols(), f32::NAN);
        at.t_matmul_into(&b, &mut t_out);
        prop_assert!(t_out.approx_eq(&a.matmul(&b), 1e-2));

        let bt = b.transpose();
        let mut mt_out = Matrix::full(a.rows(), b.cols(), f32::NAN);
        a.matmul_t_into(&bt, &mut mt_out);
        prop_assert!(mt_out.approx_eq(&a.matmul(&b), 1e-2));
    }

    #[test]
    fn wide_shared_dimension_crosses_panel_boundary(
        m in 1usize..4,
        n in 1usize..4,
        k in 250usize..260,
    ) {
        // k straddles the kernel's KC=256 panel width.
        let a = Matrix::from_fn(m, k, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 13) % 7) as f32 - 3.0);
        prop_assert!(a.matmul(&b).approx_eq(&a.matmul_naive(&b), 1e-1));
    }

    #[test]
    fn add_commutes(a in small_matrix()) {
        let b = a.map(|x| x * 0.5 - 1.0);
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-4));
    }

    #[test]
    fn scale_distributes_over_add(a in small_matrix()) {
        let b = a.map(|x| -x + 2.0);
        let lhs = a.add(&b).scale(3.0);
        let rhs = a.scale(3.0).add(&b.scale(3.0));
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn softmax_rows_are_distributions(a in small_matrix()) {
        let s = deepbase_tensor::ops::softmax_rows(&a);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn vstack_then_slice_roundtrips(a in small_matrix()) {
        let stacked = a.vstack(&a).unwrap();
        prop_assert_eq!(stacked.slice_rows(0, a.rows()), a.clone());
        prop_assert_eq!(stacked.slice_rows(a.rows(), 2 * a.rows()), a);
    }
}
