//! Systematic fault injection over the column file format (ISSUE 5):
//! every single-bit flip in a written column file — header, schema
//! section, zone table (including v3 codec tags and non-finite flags),
//! coverage bitmap, encoded data payloads, or any checksum byte — must
//! be **detected** (a `StoreError::Corrupt` / `Io` from validation) or
//! **provably harmless** (every subsequent read returns bytes
//! bit-identical to the pristine file; a flipped access stamp only
//! perturbs eviction order, never data). A flip that silently changes
//! served values is the one unacceptable outcome. The store scan runs
//! with pruning enabled, so zone-driven block reconstruction is under
//! the same sweep as the decode paths.
//!
//! The generator is a deterministic proptest (the offline stub seeds its
//! RNG from the test name), so CI replays the exact same ≥1000
//! corruptions every run. The same generator drives the end-to-end
//! session-level suite in the core crate
//! (`crates/core/tests/store_fault_tests.rs`).

use deepbase_store::format::{self, coverage_from_filled, ColumnMeta};
use deepbase_store::{BehaviorStore, ColumnKey, StoreConfig, StoreError, StoreStats};
use proptest::prelude::*;
use std::fs::File;
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp-store-tests")
        .join(format!("fault-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic column values, deliberately low-cardinality (five bit
/// patterns plus a NaN sprinkle) so the v3 writer picks every codec —
/// Constant on single-pattern blocks, Dict on small-alphabet blocks, Raw
/// on the rest — and the flip sweep covers all of their payloads.
fn column_data(nd: usize, ns: usize) -> Vec<f32> {
    (0..nd * ns)
        .map(|i| {
            if i % 13 == 0 {
                f32::NAN
            } else {
                ((i * 37 + 11) % 5) as f32 * 0.75 - 1.5
            }
        })
        .collect()
}

/// A deterministic `k`-element fill mask (an LCG permutation prefix, so
/// watermarked sets are scattered like a real shuffled stream prefix).
fn fill_mask(nd: usize, k: usize, salt: usize) -> Vec<bool> {
    let mut order: Vec<usize> = (0..nd).collect();
    let mut state = salt as u64 | 1;
    for i in (1..nd).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    let mut filled = vec![false; nd];
    for &p in order.iter().take(k) {
        filled[p] = true;
    }
    filled
}

/// Everything a consumer could read from a column file: the validated
/// meta, the coverage bitmap, and every (decoded) data block. The access
/// stamp is deliberately excluded: it is outside every checksum, and a
/// flipped stamp only reorders disk-budget eviction.
type FileContents = (ColumnMeta, Option<Vec<u8>>, Vec<Vec<u32>>);

/// Reads a whole column file; `Err` means some validation step refused
/// it (detection). Block values come back as f32 bit patterns so the
/// harmlessness comparison is bit-exact (NaN == NaN at the bit level).
fn read_everything(path: &PathBuf) -> Result<FileContents, StoreError> {
    let mut f = File::open(path)?;
    let col = format::read_meta(&mut f)?;
    let mut blocks = Vec::with_capacity(col.meta.n_blocks());
    for b in 0..col.meta.n_blocks() {
        let page = format::read_block(&mut f, &col, b)?;
        blocks.push(page.iter().map(|v| v.to_bits()).collect());
    }
    Ok((col.meta, col.covered, blocks))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]
    #[test]
    fn every_single_bit_flip_is_detected_or_harmless(
        nd in 1usize..24,
        ns in 1usize..4,
        block_records in 1usize..6,
        watermark_sel in 0usize..1000,
        flip_sel in 0usize..1_000_000,
    ) {
        // Degenerate watermarks (0 and nd) are exercised often, the rest
        // of the range uniformly.
        let k = match watermark_sel % 4 {
            0 => nd,
            1 => 0,
            _ => watermark_sel / 4 % (nd + 1),
        };
        let filled = fill_mask(nd, k, watermark_sel);
        let full = column_data(nd, ns);
        // Partial columns store only the valid rows, densely packed.
        let data = if k < nd {
            format::pack_rows(&full, &filled, ns)
        } else {
            full.clone()
        };
        let meta = ColumnMeta {
            model_fp: 0x5EED,
            dataset_fp: 0xF00D,
            unit: 1,
            nd: nd as u64,
            ns: ns as u64,
            block_records: block_records as u64,
            completed_records: if k < nd { k as u64 } else { nd as u64 },
        };
        let bitmap = (k < nd).then(|| coverage_from_filled(&filled));
        let dir = test_dir("flip");
        let path = dir.join("u1.col");
        format::write_column_file(&path, &dir.join("u1.tmp"), &meta, &data, bitmap.as_deref(), 7)
            .unwrap();
        let pristine_bytes = std::fs::read(&path).unwrap();
        let pristine = read_everything(&path).expect("pristine file validates");

        // Flip exactly one bit somewhere in the file.
        let bit = flip_sel % (pristine_bytes.len() * 8);
        let mut corrupted = pristine_bytes.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(&corrupted, &pristine_bytes);
        std::fs::write(&path, &corrupted).unwrap();

        match read_everything(&path) {
            Err(_) => {} // detected — the acceptable common outcome
            Ok((meta, covered, blocks)) => {
                // Validation let the flip through: it must be provably
                // harmless — everything served is bit-identical.
                prop_assert_eq!(meta, pristine.0, "silent schema change");
                prop_assert_eq!(covered, pristine.1.clone(), "silent coverage change");
                prop_assert_eq!(blocks, pristine.2.clone(), "silent data change");
            }
        }

        // The same file through the full store scan path: either an
        // error or bit-identical values, never a silent wrong read.
        let store = BehaviorStore::open(&StoreConfig {
            block_records,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        let key = ColumnKey { model_fp: 0x5EED, dataset_fp: 0xF00D, unit: 1 };
        let positions: Vec<usize> = (0..nd).filter(|&p| filled[p] || k == nd).collect();
        if !positions.is_empty() {
            let mut out = vec![f32::NAN; positions.len() * ns];
            let mut stats = StoreStats::default();
            match store.scan_into(&key, nd, ns, &positions, &mut out, 1, 0, true, &mut stats) {
                Err(_) => {} // detected
                Ok(()) => {
                    for (i, &pos) in positions.iter().enumerate() {
                        for t in 0..ns {
                            let got = out[i * ns + t];
                            let want = column_data(nd, ns)[pos * ns + t];
                            prop_assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "silent wrong value at position {} (flip bit {})",
                                pos,
                                bit
                            );
                        }
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
