//! The buffer pool: decoded block pages cached in memory under a byte
//! budget, with **pinned pages** and **CLOCK** (second-chance) eviction.
//!
//! Scans fetch pages through [`BufferPool::get`], which returns a
//! [`PinnedPage`] guard: while the guard lives, the frame cannot be
//! evicted (readers copy rows out of a page that is guaranteed resident).
//! Eviction runs at insert time when the budget is exceeded: the clock
//! hand sweeps the frame table, skipping pinned frames, granting each
//! referenced frame a second chance (clearing its bit) and evicting the
//! first unreferenced, unpinned frame it meets. If every frame is pinned
//! the pool temporarily exceeds its budget rather than deadlock — pins
//! are short-lived (one block copy).

use crate::StoreError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of one cached page: a data block of one stored column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Model content fingerprint.
    pub model_fp: u64,
    /// Dataset content fingerprint.
    pub dataset_fp: u64,
    /// Hidden-unit index.
    pub unit: u64,
    /// Block index within the column.
    pub block: u32,
}

/// Pool-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from memory.
    pub hits: usize,
    /// Lookups that had to load the page.
    pub misses: usize,
    /// Frames evicted by the CLOCK sweep.
    pub evictions: usize,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// Pages currently resident.
    pub resident_pages: usize,
}

struct Frame {
    key: PageKey,
    data: Arc<Vec<f32>>,
    referenced: bool,
    pins: u32,
    /// Purged while pinned: the frame is out of the map (no new hits)
    /// but its bytes stay charged until the last pin drops, when the
    /// slot is freed. Guarantees a purge never yanks a slot out from
    /// under a live [`PinnedPage`] (whose unpin would otherwise hit a
    /// recycled slot and corrupt another frame's pin count).
    doomed: bool,
}

impl Frame {
    fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

struct PoolInner {
    /// Frame table; `None` slots are free (CLOCK needs stable indices).
    slots: Vec<Option<Frame>>,
    free: Vec<usize>,
    map: HashMap<PageKey, usize>,
    hand: usize,
    bytes: usize,
    hits: usize,
    misses: usize,
    evictions: usize,
}

impl PoolInner {
    /// Evicts until `bytes <= budget` or nothing evictable remains.
    /// Returns how many frames were evicted.
    fn enforce_budget(&mut self, budget: usize) -> usize {
        let mut evicted = 0;
        let mut scanned_since_progress = 0;
        while self.bytes > budget && !self.slots.is_empty() {
            // Two full sweeps with no progress means everything left is
            // pinned: give up and run over budget until pins drop.
            if scanned_since_progress > 2 * self.slots.len() {
                break;
            }
            let idx = self.hand % self.slots.len();
            self.hand = (self.hand + 1) % self.slots.len();
            scanned_since_progress += 1;
            let Some(frame) = &mut self.slots[idx] else {
                continue;
            };
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false; // second chance
                continue;
            }
            let frame = self.slots[idx].take().expect("checked above");
            self.bytes -= frame.bytes();
            self.map.remove(&frame.key);
            self.free.push(idx);
            self.evictions += 1;
            evicted += 1;
            scanned_since_progress = 0;
        }
        evicted
    }

    fn install(&mut self, key: PageKey, data: Arc<Vec<f32>>, pins: u32) -> usize {
        let frame = Frame {
            key,
            data,
            referenced: true,
            pins,
            doomed: false,
        };
        self.bytes += frame.bytes();
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(frame);
                idx
            }
            None => {
                self.slots.push(Some(frame));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        idx
    }
}

/// A byte-budgeted page cache shared by every scan of a
/// [`crate::BehaviorStore`].
pub struct BufferPool {
    budget_bytes: usize,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool with the given byte budget.
    pub fn new(budget_bytes: usize) -> BufferPool {
        BufferPool {
            budget_bytes,
            inner: Mutex::new(PoolInner {
                slots: Vec::new(),
                free: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Fetches a page, running `load` on a miss (outside the pool lock).
    /// The returned guard pins the page until dropped; `hit`/`evictions`
    /// report what this particular fetch did.
    pub fn get(
        &self,
        key: PageKey,
        load: impl FnOnce() -> Result<Vec<f32>, StoreError>,
    ) -> Result<PinnedPage<'_>, StoreError> {
        {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.map.get(&key) {
                inner.hits += 1;
                let frame = inner.slots[idx].as_mut().expect("mapped frame exists");
                frame.referenced = true;
                frame.pins += 1;
                let data = Arc::clone(&frame.data);
                return Ok(PinnedPage {
                    pool: self,
                    slot: idx,
                    data,
                    hit: true,
                    evictions: 0,
                });
            }
            inner.misses += 1;
        }
        let data = Arc::new(load()?);
        let mut inner = self.inner.lock();
        // Another thread may have loaded the same page concurrently;
        // reuse its frame so bytes are charged once.
        if let Some(&idx) = inner.map.get(&key) {
            let frame = inner.slots[idx].as_mut().expect("mapped frame exists");
            frame.referenced = true;
            frame.pins += 1;
            let data = Arc::clone(&frame.data);
            return Ok(PinnedPage {
                pool: self,
                slot: idx,
                data,
                hit: false,
                evictions: 0,
            });
        }
        let idx = inner.install(key, Arc::clone(&data), 1);
        let evictions = inner.enforce_budget(self.budget_bytes);
        Ok(PinnedPage {
            pool: self,
            slot: idx,
            data,
            hit: false,
            evictions,
        })
    }

    /// Inserts (or refreshes) a page without pinning it — the write-back
    /// path pushes freshly persisted blocks through the pool so the next
    /// scan hits memory. Returns the evictions the insert caused.
    pub fn insert(&self, key: PageKey, data: Vec<f32>) -> usize {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&key) {
            let frame = inner.slots[idx].as_mut().expect("mapped frame exists");
            let old = frame.bytes();
            frame.data = Arc::new(data);
            frame.referenced = true;
            inner.bytes = inner.bytes - old + inner.slots[idx].as_ref().unwrap().bytes();
        } else {
            inner.install(key, Arc::new(data), 0);
        }
        inner.enforce_budget(self.budget_bytes)
    }

    /// Drops every resident page of one column (quarantine, overwrite
    /// and disk-eviction support). Pages a concurrent scan holds pinned
    /// are **doomed** instead of dropped: unmapped immediately (no new
    /// lookups find them) but kept resident — and byte-charged — until
    /// the last pin releases, so the pinned reader finishes against a
    /// valid frame.
    pub fn purge_column(&self, model_fp: u64, dataset_fp: u64, unit: u64) {
        let mut inner = self.inner.lock();
        let victims: Vec<PageKey> = inner
            .map
            .keys()
            .filter(|k| k.model_fp == model_fp && k.dataset_fp == dataset_fp && k.unit == unit)
            .copied()
            .collect();
        for key in victims {
            if let Some(idx) = inner.map.remove(&key) {
                match &mut inner.slots[idx] {
                    Some(frame) if frame.pins > 0 => frame.doomed = true,
                    slot => {
                        if let Some(frame) = slot.take() {
                            inner.bytes -= frame.bytes();
                            inner.free.push(idx);
                        }
                    }
                }
            }
        }
    }

    /// True when any resident page of the column is currently pinned by
    /// a scan. The disk-budget eviction path refuses to delete a column
    /// file while this holds.
    pub fn column_pinned(&self, model_fp: u64, dataset_fp: u64, unit: u64) -> bool {
        self.inner.lock().slots.iter().flatten().any(|f| {
            f.pins > 0
                && f.key.model_fp == model_fp
                && f.key.dataset_fp == dataset_fp
                && f.key.unit == unit
        })
    }

    /// Cross-checks the pool's running byte/page counters against the
    /// frame table. `resident_bytes` must equal the sum of every resident
    /// frame's **decoded** size (what actually occupies memory — pages
    /// are decompressed before they enter the pool, so on-disk compressed
    /// sizes never leak into the budget), and the map must name exactly
    /// the non-doomed frames. Returns a description of the first
    /// inconsistency found.
    pub fn verify_accounting(&self) -> Result<(), String> {
        let inner = self.inner.lock();
        let frame_bytes: usize = inner.slots.iter().flatten().map(|f| f.bytes()).sum();
        if frame_bytes != inner.bytes {
            return Err(format!(
                "resident_bytes {} != sum of frame bytes {frame_bytes}",
                inner.bytes
            ));
        }
        let live = inner.slots.iter().flatten().filter(|f| !f.doomed).count();
        if live != inner.map.len() {
            return Err(format!(
                "map holds {} entries but {live} live frames exist",
                inner.map.len()
            ));
        }
        for (key, &idx) in &inner.map {
            match inner.slots.get(idx).and_then(|s| s.as_ref()) {
                Some(frame) if frame.key == *key && !frame.doomed => {}
                _ => return Err(format!("map entry for {key:?} points at a wrong frame")),
            }
        }
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.bytes,
            resident_pages: inner.map.len(),
        }
    }

    fn unpin(&self, slot: usize) {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.slots.get_mut(slot).and_then(|s| s.as_mut()) {
            frame.pins = frame.pins.saturating_sub(1);
            // A frame purged while pinned leaves once its last pin drops
            // (it is already out of the map).
            if frame.doomed && frame.pins == 0 {
                let frame = inner.slots[slot].take().expect("checked above");
                inner.bytes -= frame.bytes();
                inner.free.push(slot);
            }
        }
        // A scan may pin a working set larger than the budget (pinned
        // frames are unevictable); re-enforce as the pins drop so the
        // pool returns under budget without waiting for the next insert.
        if inner.bytes > self.budget_bytes {
            inner.enforce_budget(self.budget_bytes);
        }
    }
}

/// A pinned page: dereferences to the block's values; the frame cannot be
/// evicted while the guard lives.
pub struct PinnedPage<'p> {
    pool: &'p BufferPool,
    slot: usize,
    data: Arc<Vec<f32>>,
    /// Whether this fetch was served from memory.
    pub hit: bool,
    /// Frames evicted to make room for this fetch.
    pub evictions: usize,
}

impl std::fmt::Debug for PinnedPage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedPage")
            .field("slot", &self.slot)
            .field("len", &self.data.len())
            .field("hit", &self.hit)
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl std::ops::Deref for PinnedPage<'_> {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(unit: u64, block: u32) -> PageKey {
        PageKey {
            model_fp: 1,
            dataset_fp: 2,
            unit,
            block,
        }
    }

    fn page(v: f32, len: usize) -> Vec<f32> {
        vec![v; len]
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let pool = BufferPool::new(1 << 20);
        let p = pool.get(key(0, 0), || Ok(page(1.0, 8))).unwrap();
        assert!(!p.hit);
        assert_eq!(&p[..2], &[1.0, 1.0]);
        drop(p);
        let p = pool
            .get(key(0, 0), || -> Result<Vec<f32>, StoreError> {
                unreachable!("must hit")
            })
            .unwrap();
        assert!(p.hit);
        drop(p);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident_pages, 1);
        assert_eq!(s.resident_bytes, 8 * 4);
    }

    #[test]
    fn clock_evicts_past_pins_with_second_chances() {
        // Budget: 2 pages of 8 floats (32 bytes each).
        let pool = BufferPool::new(64);
        let pinned = pool.get(key(0, 0), || Ok(page(0.0, 8))).unwrap();
        drop(pool.get(key(1, 0), || Ok(page(1.0, 8))).unwrap());
        // Inserting a third page sweeps: page 0 is pinned (skipped), page
        // 1 gets its reference bit cleared (second chance), the new page
        // is pinned, and the wrap-around takes page 1.
        let third = pool.get(key(2, 0), || Ok(page(2.0, 8))).unwrap();
        assert_eq!(third.evictions, 1);
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_pages, 2);
        assert!(s.resident_bytes <= 64);
        drop(third);
        // Page 0 survived (pinned); page 1 was the victim.
        assert_eq!(&pinned[..1], &[0.0]);
        drop(pinned);
        let mut reloaded = false;
        drop(
            pool.get(key(1, 0), || {
                reloaded = true;
                Ok(page(1.0, 8))
            })
            .unwrap(),
        );
        assert!(reloaded, "page 1 must have been the victim");
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pool = BufferPool::new(32); // one 8-float page
        let pinned = pool.get(key(0, 0), || Ok(page(0.0, 8))).unwrap();
        // Inserting more while the only evictable candidate is pinned
        // runs the pool over budget instead of evicting it.
        let second = pool.get(key(1, 0), || Ok(page(1.0, 8))).unwrap();
        let s = pool.stats();
        assert_eq!(s.resident_pages, 2, "both pages stay resident");
        assert!(s.resident_bytes > 32, "over budget while pinned");
        assert_eq!(&pinned[..1], &[0.0], "pinned data still valid");
        drop(pinned);
        drop(second);
        // With pins released, the next insert can evict.
        drop(pool.get(key(2, 0), || Ok(page(2.0, 8))).unwrap());
        assert!(pool.stats().evictions >= 1);
        assert!(pool.stats().resident_bytes <= 32);
    }

    #[test]
    fn insert_populates_without_pinning() {
        let pool = BufferPool::new(1 << 20);
        pool.insert(key(0, 0), page(7.0, 4));
        let p = pool
            .get(key(0, 0), || -> Result<Vec<f32>, StoreError> {
                unreachable!("insert must have populated")
            })
            .unwrap();
        assert!(p.hit);
        assert_eq!(&p[..1], &[7.0]);
        // Refresh replaces bytes accounting, not duplicates it.
        drop(p);
        pool.insert(key(0, 0), page(8.0, 16));
        assert_eq!(pool.stats().resident_bytes, 16 * 4);
    }

    #[test]
    fn purge_column_drops_only_that_column() {
        let pool = BufferPool::new(1 << 20);
        pool.insert(key(0, 0), page(0.0, 4));
        pool.insert(key(0, 1), page(0.0, 4));
        pool.insert(key(1, 0), page(1.0, 4));
        pool.purge_column(1, 2, 0);
        let s = pool.stats();
        assert_eq!(s.resident_pages, 1);
        assert_eq!(s.resident_bytes, 4 * 4);
        let p = pool
            .get(key(1, 0), || -> Result<Vec<f32>, StoreError> {
                unreachable!("other column survives")
            })
            .unwrap();
        assert!(p.hit);
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let pool = BufferPool::new(1 << 20);
        let err = pool
            .get(key(0, 0), || Err(StoreError::Corrupt("boom".into())))
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        assert_eq!(pool.stats().resident_pages, 0);
        let mut loaded = false;
        drop(
            pool.get(key(0, 0), || {
                loaded = true;
                Ok(page(1.0, 4))
            })
            .unwrap(),
        );
        assert!(loaded, "error was not cached");
    }

    #[test]
    fn concurrent_same_key_misses_settle_on_one_frame() {
        let pool = Arc::new(BufferPool::new(1 << 20));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let p = pool
                        .get(key(0, 0), || {
                            barrier.wait();
                            Ok(page(3.0, 64))
                        })
                        .unwrap();
                    assert_eq!(p[0], 3.0);
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.resident_pages, 1);
        assert_eq!(s.resident_bytes, 64 * 4, "bytes charged once");
        assert_eq!(s.misses, 2, "both lookups missed");
        // The running counters agree with the frame table: bytes are the
        // decoded frame sizes, charged exactly once per resident frame.
        pool.verify_accounting().unwrap();
    }

    #[test]
    fn purge_while_pinned_dooms_the_frame_instead_of_recycling_its_slot() {
        let pool = BufferPool::new(1 << 20);
        let pinned = pool.get(key(0, 0), || Ok(page(5.0, 8))).unwrap();
        // Purging the column under a live pin: the frame leaves the map
        // (no new hits) but stays resident and byte-charged.
        pool.purge_column(1, 2, 0);
        assert!(pool.column_pinned(1, 2, 0));
        let s = pool.stats();
        assert_eq!(s.resident_pages, 0, "doomed frame is unmapped");
        assert_eq!(s.resident_bytes, 8 * 4, "…but still charged");
        pool.verify_accounting().unwrap();
        // A fresh lookup misses and loads a new frame; the doomed frame's
        // slot is NOT recycled while the pin lives, so the guard's later
        // unpin cannot touch the new frame.
        let fresh = pool.get(key(0, 0), || Ok(page(6.0, 8))).unwrap();
        assert!(!fresh.hit);
        assert_eq!(&pinned[..1], &[5.0], "old guard still reads old bytes");
        assert_eq!(&fresh[..1], &[6.0]);
        drop(pinned); // last pin drops: doomed frame leaves, bytes fall
        let s = pool.stats();
        assert_eq!(s.resident_pages, 1);
        assert_eq!(s.resident_bytes, 8 * 4);
        assert!(pool.column_pinned(1, 2, 0), "fresh frame still pinned");
        drop(fresh);
        assert!(!pool.column_pinned(1, 2, 0));
        pool.verify_accounting().unwrap();
    }
}
