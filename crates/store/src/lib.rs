//! # deepbase-store
//!
//! Durable materialization for DeepBase: an embedded, on-disk columnar
//! **behavior store** that persists extracted unit-behavior columns so
//! repeated inspection never re-runs a model (the paper's headline
//! optimization, extended across process lifetimes).
//!
//! The store is deliberately database-shaped:
//!
//! * [`format`] — the self-describing column file format (v3): a
//!   checksummed header, a schema section naming the column's key and
//!   shape plus a persisted **access stamp** for disk-budget LRU, a
//!   per-block **zone map** (NaN-safe min/max, row count, codec tag,
//!   non-finite flag, encoded size) with a CRC32 checksum per encoded
//!   data block, then the per-block encoded payloads (raw f32, constant,
//!   or bit-packed dictionary). Files are written with `std::fs` only —
//!   no external dependencies — via a temp-file + rename so a crashed
//!   writer never leaves a half-written column behind. v2 files (raw
//!   data, NaN-blind zones) read back transparently and never prune.
//! * [`pool`] — a [`BufferPool`] of decoded block pages with **pinned
//!   pages** and **CLOCK** (second-chance) eviction under a configurable
//!   byte budget. Scans pin the page they are copying out of; eviction
//!   skips pinned frames.
//! * [`store`] — the [`BehaviorStore`]: columns keyed by
//!   `(model fingerprint, dataset fingerprint, unit id)`, an in-memory
//!   index of available columns, checksum-verified block reads through
//!   the pool, and quarantine of corrupted files (renamed aside so the
//!   next read-write pass re-materializes them).
//!
//! Keys are **content fingerprints** ([`FpHasher`], FNV-1a 64): a model
//! that changes its weights or a dataset that changes its records hashes
//! to a different key, so stale columns are never read — invalidation is
//! free and implicit. The engine layers in `deepbase` (the core crate)
//! decide *when* to scan vs extract; this crate only stores bytes
//! faithfully and says no loudly (a typed [`StoreError`]) when a checksum
//! disagrees.

pub mod format;
pub mod pool;
pub mod store;
pub mod views;

pub use pool::{BufferPool, PageKey, PinnedPage, PoolStats};
pub use store::{
    BehaviorStore, ColumnKey, CompactionReport, Coverage, MaterializationPolicy, StoreConfig,
    WriteReport,
};
pub use views::{ViewCatalog, ViewDoc, ViewFreshness, ViewRow, ViewSlotState};

use std::fmt;

/// Errors surfaced by store operations. `Corrupt` means the bytes on disk
/// failed validation (magic, version, shape or checksum); `Io` wraps a
/// permanent filesystem error; `TransientIo` wraps a filesystem error
/// whose [`std::io::ErrorKind`] signals a retryable condition (interrupted
/// syscall, would-block, timeout) — the store's read paths retry those
/// with bounded backoff before surfacing them; `Evicted` means the
/// disk-budget eviction deleted the (healthy) column between index lookup
/// and read, so the caller should re-extract. All are recoverable:
/// callers fall back to live extraction and surface the message in
/// [`StoreStats::errors`], but only `Corrupt` may quarantine a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Permanent filesystem-level failure.
    Io(String),
    /// On-disk bytes failed a validation check.
    Corrupt(String),
    /// Retryable filesystem-level failure (see [`StoreError::is_transient`]).
    TransientIo(String),
    /// The column was deliberately deleted by the disk-budget eviction in
    /// [`BehaviorStore::compact`]. The file is gone on purpose — the bytes
    /// were healthy — so this never quarantines anything; callers
    /// re-extract (a read-write pass re-materializes the column).
    Evicted(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store io error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
            StoreError::TransientIo(msg) => write!(f, "transient store io error: {msg}"),
            StoreError::Evicted(msg) => write!(f, "store column evicted: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// True when retrying the same operation could succeed without any
    /// change to the file (the error came from a retryable
    /// [`std::io::ErrorKind`], not from the bytes themselves). Corruption
    /// is never transient: the bytes are wrong and will stay wrong.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::TransientIo(_))
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                StoreError::TransientIo(e.to_string())
            }
            _ => StoreError::Io(e.to_string()),
        }
    }
}

/// Most recent error messages a [`StoreStats`] retains. The total is
/// tracked separately in [`StoreStats::error_count`], so a long-lived
/// session accumulating errors across thousands of batches keeps a
/// bounded ring of recent messages instead of growing without limit.
pub const ERROR_RING_CAP: usize = 32;

/// Accounting for store-backed passes, carried per shared pass and
/// aggregated per batch / per session by the core crate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Unit columns served (fully or partially) from the store.
    pub columns_scanned: usize,
    /// Subset of `columns_scanned` that were partial columns (scanned up
    /// to their watermark, extracted live past it).
    pub partial_columns_scanned: usize,
    /// Block pages fetched through the buffer pool (hits + misses).
    pub blocks_read: usize,
    /// Blocks the scan never fetched because their zone map proved the
    /// contents (a finite constant block is reconstructed from the zone
    /// entry alone — no read, no checksum). Counted once per distinct
    /// block per scan call.
    pub blocks_pruned: usize,
    /// Pool lookups served from memory.
    pub pool_hits: usize,
    /// Pool lookups that had to read and verify a block from disk.
    pub pool_misses: usize,
    /// Pages evicted by the CLOCK policy during this window.
    pub pool_evictions: usize,
    /// Complete unit columns newly persisted by write-back.
    pub columns_written: usize,
    /// Partial unit columns persisted by an early-stopped pass (the
    /// completed prefix, resumable at the watermark).
    pub partial_columns_written: usize,
    /// Data blocks written to disk by write-back.
    pub blocks_written: usize,
    /// Uncompressed (raw f32) size of the data written by write-back.
    pub raw_bytes_written: u64,
    /// Encoded size actually stored on disk for that data (`<=` raw when
    /// the per-block codecs compress; equal when every block stays raw).
    pub stored_bytes_written: u64,
    /// Extractor forward passes avoided: streamed engine blocks whose
    /// unit behaviors were served entirely from the store.
    pub forward_passes_avoided: usize,
    /// Segment streams executed by segmented passes (one per dataset
    /// segment actually streamed; 0 on unsegmented passes). On segmented
    /// passes the column key's dataset fingerprint is the *segment*
    /// fingerprint, so warm re-inspection after an append scans old
    /// segments and extracts only the new ones.
    pub segment_passes: usize,
    /// Files deleted by compaction (expired quarantined files, stale
    /// temporaries, partial columns superseded by completed versions).
    pub files_reclaimed: usize,
    /// Bytes those deletions returned to the filesystem.
    pub bytes_reclaimed: u64,
    /// Complete columns deleted by the disk-budget (LRU by access stamp)
    /// eviction in compaction. Distinct from `files_reclaimed`, which
    /// counts garbage; evicted columns were healthy but cold.
    pub columns_evicted: usize,
    /// Bytes those evictions returned to the filesystem.
    pub evicted_bytes: u64,
    /// Transient IO errors that were retried (successfully or not) by the
    /// store's bounded-backoff read path. A retry that ultimately succeeds
    /// bumps this without touching `error_count`.
    pub io_retries: usize,
    /// Materialized-view reads answered by replaying a stored frame —
    /// zero extraction, zero store block reads.
    pub view_hits: usize,
    /// Materialized views refreshed incrementally (new segments only,
    /// folded into the stored measure states).
    pub view_refreshes: usize,
    /// Materialized views built (created, or fully rebuilt because an
    /// input other than dataset growth changed).
    pub view_builds: usize,
    /// Bytes written to view files (create + refresh + rebuild).
    pub view_bytes_written: u64,
    /// Total errors survived by falling back to live extraction
    /// (corrupted or unreadable blocks, failed write-backs). Never fatal.
    pub error_count: usize,
    /// The most recent `error_count` messages, capped at
    /// [`ERROR_RING_CAP`] (oldest dropped first).
    pub errors: Vec<String>,
}

impl StoreStats {
    /// Records a survived error: bumps the total and appends the message
    /// to the bounded ring (dropping the oldest past the cap).
    pub fn record_error(&mut self, msg: String) {
        self.error_count += 1;
        if self.errors.len() >= ERROR_RING_CAP {
            self.errors.remove(0);
        }
        self.errors.push(msg);
    }

    /// Adds another window's counters (and errors) into this one. The
    /// error ring keeps the most recent messages across both windows;
    /// `error_count` stays exact.
    pub fn accumulate(&mut self, other: &StoreStats) {
        self.columns_scanned += other.columns_scanned;
        self.partial_columns_scanned += other.partial_columns_scanned;
        self.blocks_read += other.blocks_read;
        self.blocks_pruned += other.blocks_pruned;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.pool_evictions += other.pool_evictions;
        self.columns_written += other.columns_written;
        self.partial_columns_written += other.partial_columns_written;
        self.blocks_written += other.blocks_written;
        self.raw_bytes_written += other.raw_bytes_written;
        self.stored_bytes_written += other.stored_bytes_written;
        self.forward_passes_avoided += other.forward_passes_avoided;
        self.segment_passes += other.segment_passes;
        self.files_reclaimed += other.files_reclaimed;
        self.bytes_reclaimed += other.bytes_reclaimed;
        self.columns_evicted += other.columns_evicted;
        self.evicted_bytes += other.evicted_bytes;
        self.io_retries += other.io_retries;
        self.view_hits += other.view_hits;
        self.view_refreshes += other.view_refreshes;
        self.view_builds += other.view_builds;
        self.view_bytes_written += other.view_bytes_written;
        self.error_count += other.error_count;
        self.errors.extend(other.errors.iter().cloned());
        if self.errors.len() > ERROR_RING_CAP {
            self.errors.drain(..self.errors.len() - ERROR_RING_CAP);
        }
    }
}

/// Incremental FNV-1a 64-bit hasher for content fingerprints.
///
/// Deterministic across processes and platforms (unlike
/// `std::collections::hash_map::DefaultHasher`, whose seed is
/// randomized), which is what makes fingerprints usable as durable store
/// keys. Not cryptographic — the store is a cache of recomputable data,
/// so collision resistance only has to be statistical.
#[derive(Debug, Clone, Copy)]
pub struct FpHasher {
    state: u64,
}

impl Default for FpHasher {
    fn default() -> Self {
        FpHasher::new()
    }
}

impl FpHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> FpHasher {
        FpHasher {
            state: Self::OFFSET,
        }
    }

    /// Hashes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Hashes a string (length-prefixed so concatenations can't collide).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Hashes a u64 (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Hashes a u32.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Hashes an f32 by bit pattern (bit-exact, -0.0 != 0.0).
    pub fn write_f32(&mut self, v: f32) -> &mut Self {
        self.write_u32(v.to_bits())
    }

    /// Hashes a whole f32 slice (length-prefixed).
    pub fn write_f32s(&mut self, vs: &[f32]) -> &mut Self {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.write_u32(v.to_bits());
        }
        self
    }

    /// The fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_hasher_is_deterministic_and_sensitive() {
        let fp = |f: &dyn Fn(&mut FpHasher)| {
            let mut h = FpHasher::new();
            f(&mut h);
            h.finish()
        };
        let a = fp(&|h| {
            h.write_str("model").write_u64(7).write_f32s(&[1.0, 2.0]);
        });
        let b = fp(&|h| {
            h.write_str("model").write_u64(7).write_f32s(&[1.0, 2.0]);
        });
        assert_eq!(a, b, "same content, same fingerprint");
        let c = fp(&|h| {
            h.write_str("model").write_u64(7).write_f32s(&[1.0, 2.5]);
        });
        assert_ne!(a, c, "one weight changed, fingerprint changed");
        // Length prefixes keep concatenations apart.
        let d = fp(&|h| {
            h.write_str("ab").write_str("c");
        });
        let e = fp(&|h| {
            h.write_str("a").write_str("bc");
        });
        assert_ne!(d, e);
    }

    #[test]
    fn store_stats_accumulate() {
        let mut a = StoreStats {
            blocks_read: 2,
            pool_hits: 1,
            ..StoreStats::default()
        };
        a.record_error("x".into());
        let mut b = StoreStats {
            blocks_read: 3,
            pool_misses: 4,
            forward_passes_avoided: 5,
            bytes_reclaimed: 7,
            io_retries: 2,
            ..StoreStats::default()
        };
        b.record_error("y".into());
        a.accumulate(&b);
        assert_eq!(a.blocks_read, 5);
        assert_eq!(a.io_retries, 2);
        assert_eq!(a.pool_hits, 1);
        assert_eq!(a.pool_misses, 4);
        assert_eq!(a.forward_passes_avoided, 5);
        assert_eq!(a.bytes_reclaimed, 7);
        assert_eq!(a.error_count, 2);
        assert_eq!(a.errors, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn error_ring_is_bounded_but_the_count_is_exact() {
        let mut stats = StoreStats::default();
        for i in 0..(3 * ERROR_RING_CAP) {
            stats.record_error(format!("err {i}"));
        }
        assert_eq!(stats.error_count, 3 * ERROR_RING_CAP);
        assert_eq!(stats.errors.len(), ERROR_RING_CAP, "ring stays capped");
        assert_eq!(
            stats.errors.last().unwrap(),
            &format!("err {}", 3 * ERROR_RING_CAP - 1),
            "newest message retained"
        );
        assert_eq!(
            stats.errors.first().unwrap(),
            &format!("err {}", 2 * ERROR_RING_CAP),
            "oldest messages dropped first"
        );
        // Accumulating two full rings stays capped, count stays exact.
        let mut other = StoreStats::default();
        for i in 0..ERROR_RING_CAP {
            other.record_error(format!("other {i}"));
        }
        stats.accumulate(&other);
        assert_eq!(stats.error_count, 4 * ERROR_RING_CAP);
        assert_eq!(stats.errors.len(), ERROR_RING_CAP);
        assert_eq!(
            stats.errors.last().unwrap(),
            &format!("other {}", ERROR_RING_CAP - 1)
        );
    }
}
