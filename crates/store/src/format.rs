//! The self-describing column file format.
//!
//! One file persists one unit-behavior column: the behaviors of a single
//! hidden unit over every record of a dataset, `nd * ns` f32 values in
//! record-position-major order. The v3 layout (all integers
//! little-endian):
//!
//! ```text
//! header   magic "DBSBCOL\0" (8) | version u16 | flags u16 | crc32 u32
//! schema   model_fp u64 | dataset_fp u64 | unit u64 | nd u64 | ns u64
//!          | block_records u64 | completed_records u64 | crc32 u32
//!          | access_stamp u64 (NOT covered by the crc — see below)
//! zones    per data block: min f32 | max f32 | rows u32 | codec u8
//!          | flags u8 (bit0 = has_non_finite) | reserved u16 (zero)
//!          | comp_len u32 | payload crc32 u32
//!          then crc32 u32 over the zone table
//! coverage (only when completed_records < nd)
//!          ceil(nd / 8) bitmap bytes (bit p set = record position p is
//!          valid) | crc32 u32
//! data     per block: `comp_len` bytes of encoded payload, blocks
//!          back-to-back in index order (offsets are the prefix sums of
//!          the zone table's `comp_len` fields)
//! ```
//!
//! ## Per-block codecs (v3)
//!
//! Each block is stored under the smallest of three encodings, named by
//! the zone entry's codec tag:
//!
//! * [`Codec::Raw`] (0) — `rows * ns` little-endian f32, as in v2.
//! * [`Codec::Constant`] (1) — every value in the block shares one bit
//!   pattern; the payload is that single f32 (4 bytes). For a *finite*
//!   constant the zone `min`/`max` carry the exact same bits, which is
//!   what lets a scan serve the block straight from the zone map without
//!   reading the file at all (predicate pushdown).
//! * [`Codec::Dict`] (2) — at most 255 distinct bit patterns: a one-byte
//!   dictionary size, the dictionary (4 bytes per entry, first-seen
//!   order), then bit-packed indices (`ceil(log2(entries))` bits each,
//!   little-endian bit order, zero slack bits). Chosen only when
//!   strictly smaller than raw — saturated activations (±1 under tanh)
//!   pack 32x.
//!
//! The per-block CRC32 covers the **encoded payload bytes**, so bit rot
//! in compressed data is detected before decoding. Decoders additionally
//! validate exact payload lengths, dictionary index ranges, slack bits
//! and the constant/zone cross-consistency, so a flipped codec tag or
//! length can never decode to plausible-but-wrong values.
//!
//! ## NaN-safe zone maps
//!
//! Zone `min`/`max` aggregate **finite** values only, and the zone flag
//! bit0 (`has_non_finite`) records whether the block contains any NaN or
//! ±Inf. A block with no finite values writes `min = max = 0.0` with the
//! flag set — never the inverted `+inf/-inf` a naive `f32::min` fold
//! produces over all-NaN input. Every prune predicate refuses a flagged
//! block ([`ZoneEntry::constant_value`] is `None`), so NaN-bearing data
//! is always read and served bit-exactly, never skipped.
//!
//! ## Access stamps
//!
//! The schema's trailing `access_stamp` (milliseconds since the Unix
//! epoch) records when the column was last written or first scanned by a
//! process. It is deliberately **excluded from the schema checksum**: the
//! store refreshes it with an in-place 8-byte write
//! ([`write_access_stamp`]), and a torn or lost stamp update must never
//! make a healthy column read as corrupt. The stamp is an eviction hint
//! for the disk-space budget (LRU over cold columns), not data.
//!
//! ## Partial columns (the watermark)
//!
//! `completed_records` is the column's **watermark**: how many record
//! positions hold real extractor output. A *complete* column has
//! `completed_records == nd` and no coverage section. A *partial* column —
//! the persisted prefix of an early-stopped streaming pass — declares
//! `completed_records < nd` and carries a coverage bitmap naming exactly
//! which positions are valid (streaming passes visit records in shuffled
//! order, so the valid set is not a positional prefix). The data region
//! holds **only** the valid records, densely packed in ascending position
//! order: a record's data row is its rank among the covered positions.
//!
//! ## Back-compat
//!
//! Version-2 files (raw f32 blocks, 16-byte zone entries without codec
//! or flags, no access stamp) remain fully readable: their zones convert
//! to `Codec::Raw` with `has_non_finite = true` — *conservatively*, since
//! a v2 zone map was computed with the NaN-blind `f32::min` fold and must
//! never drive pruning — and their access stamp reads as 0 (coldest).
//! Version-1 files read as corrupt and re-materialize.

use crate::StoreError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic for behavior-column files.
pub const MAGIC: [u8; 8] = *b"DBSBCOL\0";
/// Current format version (3 added per-block codecs, NaN-safe zone
/// flags and access stamps; 2 added the completed-record watermark +
/// coverage bitmap; version-1 files read as corrupt and re-materialize).
pub const VERSION: u16 = 3;
/// The previous on-disk version, still fully readable (see module docs).
pub const VERSION_V2: u16 = 2;

const HEADER_LEN: u64 = 8 + 2 + 2 + 4;
/// The CRC-covered schema fields (7 u64).
const SCHEMA_FIELDS_LEN: usize = 7 * 8;
const SCHEMA_LEN_V2: u64 = SCHEMA_FIELDS_LEN as u64 + 4;
const SCHEMA_LEN_V3: u64 = SCHEMA_FIELDS_LEN as u64 + 4 + 8;
/// Fixed file offset of the access stamp (v3 only; after the schema CRC
/// so the CRC-covered prefix stays contiguous).
const ACCESS_STAMP_OFFSET: u64 = HEADER_LEN + SCHEMA_LEN_V2;
const ZONE_ENTRY_LEN_V2: u64 = 4 + 4 + 4 + 4;
const ZONE_ENTRY_LEN_V3: u64 = 4 + 4 + 4 + 1 + 1 + 2 + 4 + 4;
/// Zone flag bit0: the block contains at least one NaN or ±Inf value.
const ZONE_FLAG_NON_FINITE: u8 = 0x01;
/// Largest dictionary [`Codec::Dict`] can name (a one-byte size field).
const DICT_MAX_ENTRIES: usize = 255;

fn schema_len(version: u16) -> u64 {
    if version == VERSION_V2 {
        SCHEMA_LEN_V2
    } else {
        SCHEMA_LEN_V3
    }
}

fn zone_entry_len(version: u16) -> u64 {
    if version == VERSION_V2 {
        ZONE_ENTRY_LEN_V2
    } else {
        ZONE_ENTRY_LEN_V3
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — implemented here so the crate stays
// dependency-free.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------

/// The schema section of a column file: the column's key and shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Model content fingerprint.
    pub model_fp: u64,
    /// Dataset content fingerprint.
    pub dataset_fp: u64,
    /// Hidden-unit index within the model.
    pub unit: u64,
    /// Records in the dataset.
    pub nd: u64,
    /// Symbols per record (rows per record in the column).
    pub ns: u64,
    /// Records per data block (the zone-map / checksum granularity).
    pub block_records: u64,
    /// The watermark: record positions holding real extractor output.
    /// `== nd` for a complete column; `< nd` for the persisted prefix of
    /// an early-stopped pass (the coverage bitmap names which positions).
    pub completed_records: u64,
}

impl ColumnMeta {
    /// True when every record position is valid (no coverage section).
    pub fn is_complete(&self) -> bool {
        self.completed_records == self.nd
    }

    /// Records actually stored in the data region (`nd` for a complete
    /// column, the watermark for a partial one — valid records are
    /// densely packed).
    pub fn data_records(&self) -> u64 {
        self.completed_records
    }

    /// Number of data blocks (`ceil(data_records / block_records)`).
    pub fn n_blocks(&self) -> usize {
        if self.data_records() == 0 {
            0
        } else {
            self.data_records().div_ceil(self.block_records) as usize
        }
    }

    /// Records stored in block `b` (the last block may be short).
    pub fn rows_in_block(&self, b: usize) -> usize {
        let start = b as u64 * self.block_records;
        (self.data_records().saturating_sub(start)).min(self.block_records) as usize
    }

    /// Block holding data row `row` (for a complete column the row *is*
    /// the record position; for a partial column it is the position's
    /// rank among the covered positions).
    pub fn block_of(&self, row: usize) -> usize {
        row / self.block_records as usize
    }

    /// Bytes of the coverage section (bitmap + crc32), zero when
    /// complete.
    fn coverage_len(&self) -> u64 {
        if self.is_complete() {
            0
        } else {
            coverage_bytes(self.nd as usize) as u64 + 4
        }
    }

    /// The CRC-covered schema fields plus their checksum (60 bytes; a v3
    /// writer appends the uncovered access stamp after this).
    fn to_bytes(self) -> [u8; SCHEMA_LEN_V2 as usize] {
        let mut out = [0u8; SCHEMA_LEN_V2 as usize];
        let fields = [
            self.model_fp,
            self.dataset_fp,
            self.unit,
            self.nd,
            self.ns,
            self.block_records,
            self.completed_records,
        ];
        for (i, f) in fields.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&f.to_le_bytes());
        }
        let crc = crc32(&out[..SCHEMA_FIELDS_LEN]);
        out[SCHEMA_FIELDS_LEN..].copy_from_slice(&crc.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8; SCHEMA_LEN_V2 as usize]) -> Result<ColumnMeta, StoreError> {
        let stored_crc = u32::from_le_bytes(bytes[SCHEMA_FIELDS_LEN..].try_into().unwrap());
        if crc32(&bytes[..SCHEMA_FIELDS_LEN]) != stored_crc {
            return Err(StoreError::Corrupt("schema checksum mismatch".into()));
        }
        let field = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        let meta = ColumnMeta {
            model_fp: field(0),
            dataset_fp: field(1),
            unit: field(2),
            nd: field(3),
            ns: field(4),
            block_records: field(5),
            completed_records: field(6),
        };
        if meta.block_records == 0 || meta.ns == 0 {
            return Err(StoreError::Corrupt(
                "schema declares a zero-sized block or record".into(),
            ));
        }
        if meta.completed_records > meta.nd {
            return Err(StoreError::Corrupt(format!(
                "watermark {} exceeds the declared record count {}",
                meta.completed_records, meta.nd
            )));
        }
        Ok(meta)
    }
}

// ---------------------------------------------------------------------
// Zone entries and codecs
// ---------------------------------------------------------------------

/// How one data block's payload is encoded (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Codec {
    /// `rows * ns` little-endian f32.
    Raw = 0,
    /// Every value shares one bit pattern; payload is that f32 (4 bytes).
    Constant = 1,
    /// Bit-packed indices into a ≤255-entry dictionary of f32 patterns.
    Dict = 2,
}

impl Codec {
    fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Constant),
            2 => Some(Codec::Dict),
            _ => None,
        }
    }
}

/// One zone-map entry: per-block statistics, encoding, and the payload
/// checksum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Minimum **finite** value in the block (0.0 when none are finite).
    pub min: f32,
    /// Maximum **finite** value in the block (0.0 when none are finite).
    pub max: f32,
    /// Records in the block.
    pub rows: u32,
    /// Payload encoding.
    pub codec: Codec,
    /// True when the block contains any NaN or ±Inf value. A flagged
    /// block is never pruned: its zone statistics cannot speak for the
    /// non-finite values.
    pub has_non_finite: bool,
    /// Stored payload length in bytes.
    pub comp_len: u32,
    /// CRC32 of the stored (encoded) payload bytes.
    pub crc: u32,
}

impl ZoneEntry {
    /// The single finite value this block provably consists of, when the
    /// zone map alone reconstructs the block bit-exactly: codec is
    /// [`Codec::Constant`] (writer verified every value shares one bit
    /// pattern) and no non-finite value hides behind the statistics.
    /// This is the store's prune predicate — `Some(v)` means a scan may
    /// serve the block as `v` repeated, with zero reads and zero
    /// checksumming, bit-identical to reading it.
    pub fn constant_value(&self) -> Option<f32> {
        (self.codec == Codec::Constant && !self.has_non_finite).then_some(self.min)
    }

    fn to_bytes(self) -> [u8; ZONE_ENTRY_LEN_V3 as usize] {
        let mut out = [0u8; ZONE_ENTRY_LEN_V3 as usize];
        out[0..4].copy_from_slice(&self.min.to_bits().to_le_bytes());
        out[4..8].copy_from_slice(&self.max.to_bits().to_le_bytes());
        out[8..12].copy_from_slice(&self.rows.to_le_bytes());
        out[12] = self.codec as u8;
        out[13] = if self.has_non_finite {
            ZONE_FLAG_NON_FINITE
        } else {
            0
        };
        // out[14..16] reserved, zero.
        out[16..20].copy_from_slice(&self.comp_len.to_le_bytes());
        out[20..24].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    fn from_bytes(e: &[u8], b: usize) -> Result<ZoneEntry, StoreError> {
        let codec = Codec::from_tag(e[12])
            .ok_or_else(|| StoreError::Corrupt(format!("block {b} has unknown codec tag")))?;
        if e[13] & !ZONE_FLAG_NON_FINITE != 0 {
            return Err(StoreError::Corrupt(format!(
                "block {b} zone entry sets unknown flag bits"
            )));
        }
        if e[14] != 0 || e[15] != 0 {
            return Err(StoreError::Corrupt(format!(
                "block {b} zone entry has non-zero reserved bytes"
            )));
        }
        Ok(ZoneEntry {
            min: f32::from_bits(u32::from_le_bytes(e[0..4].try_into().unwrap())),
            max: f32::from_bits(u32::from_le_bytes(e[4..8].try_into().unwrap())),
            rows: u32::from_le_bytes(e[8..12].try_into().unwrap()),
            codec,
            has_non_finite: e[13] & ZONE_FLAG_NON_FINITE != 0,
            comp_len: u32::from_le_bytes(e[16..20].try_into().unwrap()),
            crc: u32::from_le_bytes(e[20..24].try_into().unwrap()),
        })
    }
}

/// Index bits per value for an `entries`-entry dictionary (`entries >= 2`).
fn dict_bit_width(entries: usize) -> usize {
    (usize::BITS - (entries - 1).leading_zeros()) as usize
}

/// Dictionary-encodes a block when it is strictly smaller than raw:
/// `[entries u8][entries * 4B f32 bits, first-seen order][bit-packed
/// indices, zero slack]`. `None` when the block has too many distinct
/// patterns or the encoding would not shrink it.
fn try_dict_encode(values: &[f32]) -> Option<Vec<u8>> {
    let mut dict: Vec<u32> = Vec::new();
    let mut indices: Vec<u8> = Vec::with_capacity(values.len());
    for &v in values {
        let bits = v.to_bits();
        let idx = match dict.iter().position(|&d| d == bits) {
            Some(i) => i,
            None => {
                if dict.len() == DICT_MAX_ENTRIES {
                    return None;
                }
                dict.push(bits);
                dict.len() - 1
            }
        };
        indices.push(idx as u8);
    }
    if dict.len() < 2 {
        return None; // a one-pattern block is Codec::Constant's job
    }
    let width = dict_bit_width(dict.len());
    let packed_len = (values.len() * width).div_ceil(8);
    let total = 1 + 4 * dict.len() + packed_len;
    if total >= values.len() * 4 {
        return None;
    }
    let mut out = Vec::with_capacity(total);
    out.push(dict.len() as u8);
    for &bits in &dict {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    let mut acc: u32 = 0;
    let mut nbits = 0;
    for &i in &indices {
        acc |= (i as u32) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
    debug_assert_eq!(out.len(), total);
    Some(out)
}

fn decode_dict(payload: &[u8], n_values: usize, b: usize) -> Result<Vec<f32>, StoreError> {
    let entries = *payload
        .first()
        .ok_or_else(|| StoreError::Corrupt(format!("block {b} dict payload is empty")))?
        as usize;
    if entries < 2 {
        return Err(StoreError::Corrupt(format!(
            "block {b} dict has {entries} entries (constant codec expected)"
        )));
    }
    let dict_end = 1 + entries * 4;
    let width = dict_bit_width(entries);
    let packed_len = (n_values * width).div_ceil(8);
    if payload.len() != dict_end + packed_len {
        return Err(StoreError::Corrupt(format!(
            "block {b} dict payload length {} disagrees with its shape",
            payload.len()
        )));
    }
    let dict: Vec<f32> = payload[1..dict_end]
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
        .collect();
    let packed = &payload[dict_end..];
    let mut out = Vec::with_capacity(n_values);
    let mask = (1u32 << width) - 1;
    let mut acc: u32 = 0;
    let mut nbits = 0;
    let mut byte_i = 0;
    for _ in 0..n_values {
        while nbits < width {
            acc |= (packed[byte_i] as u32) << nbits;
            byte_i += 1;
            nbits += 8;
        }
        let idx = (acc & mask) as usize;
        acc >>= width;
        nbits -= width;
        let v = *dict.get(idx).ok_or_else(|| {
            StoreError::Corrupt(format!("block {b} dict index {idx} out of range"))
        })?;
        out.push(v);
    }
    if acc != 0 {
        return Err(StoreError::Corrupt(format!(
            "block {b} dict payload has non-zero slack bits"
        )));
    }
    Ok(out)
}

/// Encodes one block: NaN-safe zone statistics plus the smallest payload
/// of the three codecs. `rows` is filled in by the caller.
fn encode_block(values: &[f32]) -> (ZoneEntry, Vec<u8>) {
    let mut has_non_finite = false;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut any_finite = false;
    for &v in values {
        if v.is_finite() {
            any_finite = true;
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        } else {
            has_non_finite = true;
        }
    }
    if !any_finite {
        // Never serialize the inverted +inf/-inf a NaN-blind fold leaves.
        min = 0.0;
        max = 0.0;
    }
    let constant = !values.is_empty() && values.iter().all(|v| v.to_bits() == values[0].to_bits());
    let (codec, payload) = if constant {
        if values[0].is_finite() {
            // The zone min/max carry the constant's exact bits: that is
            // the invariant pruning reconstructs blocks from.
            min = values[0];
            max = values[0];
        }
        (Codec::Constant, values[0].to_le_bytes().to_vec())
    } else if let Some(p) = try_dict_encode(values) {
        (Codec::Dict, p)
    } else {
        let mut p = Vec::with_capacity(values.len() * 4);
        for &v in values {
            p.extend_from_slice(&v.to_le_bytes());
        }
        (Codec::Raw, p)
    };
    let zone = ZoneEntry {
        min,
        max,
        rows: 0,
        codec,
        has_non_finite,
        comp_len: payload.len() as u32,
        crc: crc32(&payload),
    };
    (zone, payload)
}

/// Decodes one block payload (already CRC-verified) into `n_values` f32.
fn decode_block(
    zone: &ZoneEntry,
    payload: &[u8],
    n_values: usize,
    b: usize,
) -> Result<Vec<f32>, StoreError> {
    match zone.codec {
        Codec::Raw => {
            if payload.len() != n_values * 4 {
                return Err(StoreError::Corrupt(format!(
                    "block {b} raw payload holds {} bytes for {n_values} values",
                    payload.len()
                )));
            }
            Ok(payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
        Codec::Constant => {
            if payload.len() != 4 {
                return Err(StoreError::Corrupt(format!(
                    "block {b} constant payload is {} bytes",
                    payload.len()
                )));
            }
            let v = f32::from_le_bytes(payload.try_into().unwrap());
            if v.is_finite() == zone.has_non_finite {
                return Err(StoreError::Corrupt(format!(
                    "block {b} constant finiteness disagrees with its zone flag"
                )));
            }
            if v.is_finite()
                && (v.to_bits() != zone.min.to_bits() || v.to_bits() != zone.max.to_bits())
            {
                return Err(StoreError::Corrupt(format!(
                    "block {b} constant payload disagrees with its zone bounds"
                )));
            }
            Ok(vec![v; n_values])
        }
        Codec::Dict => decode_dict(payload, n_values, b),
    }
}

// ---------------------------------------------------------------------
// Coverage bitmaps
// ---------------------------------------------------------------------

/// Bytes needed for an `nd`-position coverage bitmap.
pub fn coverage_bytes(nd: usize) -> usize {
    nd.div_ceil(8)
}

/// Whether position `pos` is set in a coverage bitmap.
pub fn coverage_covers(bits: &[u8], pos: usize) -> bool {
    bits.get(pos / 8).is_some_and(|b| b & (1 << (pos % 8)) != 0)
}

/// Packs a per-position validity slice into a bitmap.
pub fn coverage_from_filled(filled: &[bool]) -> Vec<u8> {
    let mut bits = vec![0u8; coverage_bytes(filled.len())];
    for (pos, &f) in filled.iter().enumerate() {
        if f {
            bits[pos / 8] |= 1 << (pos % 8);
        }
    }
    bits
}

fn coverage_popcount(bits: &[u8]) -> u64 {
    bits.iter().map(|b| b.count_ones() as u64).sum()
}

/// Packs the filled rows of a full `nd * ns` record-major buffer into
/// the dense ascending-position layout a partial column stores.
pub fn pack_rows(data: &[f32], filled: &[bool], ns: usize) -> Vec<f32> {
    let mut packed = Vec::with_capacity(filled.iter().filter(|&&f| f).count() * ns);
    for (pos, &f) in filled.iter().enumerate() {
        if f {
            packed.extend_from_slice(&data[pos * ns..(pos + 1) * ns]);
        }
    }
    packed
}

/// Rank table of a coverage bitmap: `ranks[pos]` is the data row of
/// position `pos` (its rank among covered positions; meaningful only
/// when `pos` is covered).
pub fn coverage_ranks(bits: &[u8], nd: usize) -> Vec<u32> {
    let mut ranks = Vec::with_capacity(nd);
    let mut rank = 0u32;
    for pos in 0..nd {
        ranks.push(rank);
        if coverage_covers(bits, pos) {
            rank += 1;
        }
    }
    ranks
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// What a column write put on disk (feeds compression accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteSummary {
    /// Data blocks written.
    pub n_blocks: usize,
    /// Bytes the data region would occupy raw (`values * 4`).
    pub raw_data_bytes: u64,
    /// Bytes the encoded data region actually occupies.
    pub stored_data_bytes: u64,
}

fn write_header<W: Write>(w: &mut W, version: u16) -> Result<(), StoreError> {
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&version.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes()); // flags
    let crc = crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&header)?;
    Ok(())
}

fn write_coverage<W: Write>(
    w: &mut W,
    meta: &ColumnMeta,
    covered: Option<&[u8]>,
) -> Result<(), StoreError> {
    if let Some(bits) = covered {
        debug_assert_eq!(bits.len(), coverage_bytes(meta.nd as usize));
        debug_assert_eq!(coverage_popcount(bits), meta.completed_records);
        w.write_all(bits)?;
        w.write_all(&crc32(bits).to_le_bytes())?;
    }
    Ok(())
}

/// Serializes a column into `w` in the v3 format above. `data` holds the
/// **packed** valid records in ascending position order
/// (`data.len() == completed_records * ns`; see [`pack_rows`]). A
/// complete column (`meta.completed_records == meta.nd`) passes
/// `covered: None`; a partial column passes its coverage bitmap, whose
/// population count must equal the watermark. `access_stamp` seeds the
/// uncovered eviction hint (milliseconds since the Unix epoch).
pub fn write_column<W: Write>(
    w: &mut W,
    meta: &ColumnMeta,
    data: &[f32],
    covered: Option<&[u8]>,
    access_stamp: u64,
) -> Result<WriteSummary, StoreError> {
    debug_assert_eq!(data.len() as u64, meta.data_records() * meta.ns);
    debug_assert_eq!(
        covered.is_some(),
        !meta.is_complete(),
        "coverage bitmap iff partial"
    );
    write_header(w, VERSION)?;
    w.write_all(&meta.to_bytes())?;
    w.write_all(&access_stamp.to_le_bytes())?;
    // Encode every block first; zone entries describe the payloads.
    let n_blocks = meta.n_blocks();
    let mut summary = WriteSummary {
        n_blocks,
        raw_data_bytes: data.len() as u64 * 4,
        stored_data_bytes: 0,
    };
    let mut zone_bytes = Vec::with_capacity(n_blocks * ZONE_ENTRY_LEN_V3 as usize);
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let rows = meta.rows_in_block(b);
        let start = b * meta.block_records as usize * meta.ns as usize;
        let values = &data[start..start + rows * meta.ns as usize];
        let (mut zone, payload) = encode_block(values);
        zone.rows = rows as u32;
        summary.stored_data_bytes += payload.len() as u64;
        zone_bytes.extend_from_slice(&zone.to_bytes());
        payloads.push(payload);
    }
    let zone_crc = crc32(&zone_bytes);
    zone_bytes.extend_from_slice(&zone_crc.to_le_bytes());
    w.write_all(&zone_bytes)?;
    write_coverage(w, meta, covered)?;
    for payload in &payloads {
        w.write_all(payload)?;
    }
    Ok(summary)
}

/// Serializes a column in the **v2** format (raw f32 blocks, 16-byte zone
/// entries with the historical NaN-blind min/max fold, no access stamp).
/// Kept for back-compat and differential tests — new columns always
/// write v3.
#[doc(hidden)]
pub fn write_column_v2<W: Write>(
    w: &mut W,
    meta: &ColumnMeta,
    data: &[f32],
    covered: Option<&[u8]>,
) -> Result<usize, StoreError> {
    debug_assert_eq!(data.len() as u64, meta.data_records() * meta.ns);
    write_header(w, VERSION_V2)?;
    w.write_all(&meta.to_bytes())?;
    let n_blocks = meta.n_blocks();
    let mut zone_bytes = Vec::with_capacity(n_blocks * ZONE_ENTRY_LEN_V2 as usize);
    let mut block_bytes: Vec<Vec<u8>> = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let rows = meta.rows_in_block(b);
        let start = b * meta.block_records as usize * meta.ns as usize;
        let values = &data[start..start + rows * meta.ns as usize];
        let mut bytes = Vec::with_capacity(values.len() * 4);
        // The historical fold: NaN values are invisible to f32::min/max,
        // which is exactly the bug v3 zone maps fix.
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
            min = min.min(v);
            max = max.max(v);
        }
        zone_bytes.extend_from_slice(&min.to_bits().to_le_bytes());
        zone_bytes.extend_from_slice(&max.to_bits().to_le_bytes());
        zone_bytes.extend_from_slice(&(rows as u32).to_le_bytes());
        zone_bytes.extend_from_slice(&crc32(&bytes).to_le_bytes());
        block_bytes.push(bytes);
    }
    let zone_crc = crc32(&zone_bytes);
    zone_bytes.extend_from_slice(&zone_crc.to_le_bytes());
    w.write_all(&zone_bytes)?;
    write_coverage(w, meta, covered)?;
    for bytes in &block_bytes {
        w.write_all(bytes)?;
    }
    Ok(n_blocks)
}

/// Writes a column file atomically: serialize to `path` with a temporary
/// suffix, then rename into place. `covered` follows [`write_column`]'s
/// contract (None iff the column is complete).
pub fn write_column_file(
    path: &Path,
    tmp_path: &Path,
    meta: &ColumnMeta,
    data: &[f32],
    covered: Option<&[u8]>,
    access_stamp: u64,
) -> Result<WriteSummary, StoreError> {
    let mut file = File::create(tmp_path)?;
    let summary = write_column(&mut file, meta, data, covered, access_stamp)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp_path, path)?;
    Ok(summary)
}

/// Atomic v2 writer (see [`write_column_v2`]).
#[doc(hidden)]
pub fn write_column_file_v2(
    path: &Path,
    tmp_path: &Path,
    meta: &ColumnMeta,
    data: &[f32],
    covered: Option<&[u8]>,
) -> Result<usize, StoreError> {
    let mut file = File::create(tmp_path)?;
    let blocks = write_column_v2(&mut file, meta, data, covered)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp_path, path)?;
    Ok(blocks)
}

/// Refreshes a v3 file's access stamp in place (an uncovered 8-byte
/// write; see the module docs). Returns `Ok(false)` without touching the
/// file when it is not a v3 column (v2 files carry no stamp). Best-effort
/// by design: no fsync — a lost update only ages the column.
pub fn write_access_stamp(path: &Path, stamp: u64) -> Result<bool, StoreError> {
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let mut header = [0u8; HEADER_LEN as usize];
    if file.read_exact(&mut header).is_err() || header[..8] != MAGIC {
        return Ok(false);
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != VERSION || file.metadata()?.len() < HEADER_LEN + SCHEMA_LEN_V3 {
        return Ok(false);
    }
    file.seek(SeekFrom::Start(ACCESS_STAMP_OFFSET))?;
    file.write_all(&stamp.to_le_bytes())?;
    Ok(true)
}

/// Reads a column file's access stamp without validating the rest of the
/// file. `None` for non-v3 files (treated as coldest by eviction).
pub fn read_access_stamp(path: &Path) -> Result<Option<u64>, StoreError> {
    let mut file = File::open(path)?;
    let mut header = [0u8; HEADER_LEN as usize];
    if file.read_exact(&mut header).is_err() || header[..8] != MAGIC {
        return Ok(None);
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != VERSION {
        return Ok(None);
    }
    file.seek(SeekFrom::Start(ACCESS_STAMP_OFFSET))?;
    let mut stamp = [0u8; 8];
    if file.read_exact(&mut stamp).is_err() {
        return Ok(None);
    }
    Ok(Some(u64::from_le_bytes(stamp)))
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Everything [`read_meta`] validates up front: the schema, the zone
/// table with per-block payload offsets, and (for partial columns) the
/// coverage bitmap.
#[derive(Debug, Clone)]
pub struct ColumnFile {
    /// The schema section.
    pub meta: ColumnMeta,
    /// The zone table (one entry per data block).
    pub zones: Vec<ZoneEntry>,
    /// Coverage bitmap; `None` for complete columns.
    pub covered: Option<Vec<u8>>,
    /// On-disk format version the file was read as (2 or 3).
    pub version: u16,
    /// Last-access stamp (ms since the Unix epoch; 0 for v2 files).
    pub access_stamp: u64,
    /// Per-block payload offsets (prefix sums of `comp_len`).
    offsets: Vec<u64>,
}

impl ColumnFile {
    /// File offset of block `b`'s payload.
    pub fn data_offset(&self, b: usize) -> Option<u64> {
        self.offsets.get(b).copied()
    }

    /// Bytes the encoded data region occupies on disk.
    pub fn stored_data_bytes(&self) -> u64 {
        self.zones.iter().map(|z| z.comp_len as u64).sum()
    }

    /// Blocks a pruned scan can serve from the zone map alone.
    pub fn prunable_blocks(&self) -> usize {
        self.zones
            .iter()
            .filter(|z| z.constant_value().is_some())
            .count()
    }

    /// File byte ranges a pruning reader may never validate: the v3
    /// access stamp (outside every checksum by design — a torn stamp
    /// update must not corrupt a healthy file) and the payloads of
    /// prunable blocks (reconstructed from the CRC-protected zone table
    /// instead of being read). A bit flip confined to these ranges can
    /// go undetected, but it is provably harmless: served values cannot
    /// change. Fault-injection suites use this to tell "undetected but
    /// unread" from "silently wrong".
    pub fn unvalidated_ranges(&self) -> Vec<std::ops::Range<u64>> {
        let mut out = Vec::new();
        if self.version == VERSION {
            out.push(ACCESS_STAMP_OFFSET..ACCESS_STAMP_OFFSET + 8);
        }
        for (b, zone) in self.zones.iter().enumerate() {
            if zone.constant_value().is_some() {
                if let Some(off) = self.data_offset(b) {
                    out.push(off..off + zone.comp_len as u64);
                }
            }
        }
        out
    }
}

/// Reads and validates the header, schema, zone table and (for partial
/// columns) coverage bitmap of a column file, v3 or v2. Any mismatch
/// (magic, version, checksum, truncation, watermark/bitmap disagreement)
/// is [`StoreError::Corrupt`].
pub fn read_meta(file: &mut File) -> Result<ColumnFile, StoreError> {
    file.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; HEADER_LEN as usize];
    file.read_exact(&mut header)
        .map_err(|_| StoreError::Corrupt("file too small for header".into()))?;
    if header[..8] != MAGIC {
        return Err(StoreError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != VERSION && version != VERSION_V2 {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let stored = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if crc32(&header[..12]) != stored {
        return Err(StoreError::Corrupt("header checksum mismatch".into()));
    }
    let mut schema = [0u8; SCHEMA_LEN_V2 as usize];
    file.read_exact(&mut schema)
        .map_err(|_| StoreError::Corrupt("file too small for schema".into()))?;
    let meta = ColumnMeta::from_bytes(&schema)?;
    let access_stamp = if version == VERSION {
        let mut stamp = [0u8; 8];
        file.read_exact(&mut stamp)
            .map_err(|_| StoreError::Corrupt("file too small for access stamp".into()))?;
        u64::from_le_bytes(stamp)
    } else {
        0
    };
    let n_blocks = meta.n_blocks();
    let entry_len = zone_entry_len(version);
    // Bound the zone-table and coverage allocations by the actual file
    // length before trusting the declared shape: a schema whose CRC
    // happens to validate but declares an absurd `nd` must surface as
    // corruption, not as a giant allocation.
    let zone_len = (n_blocks as u64)
        .checked_mul(entry_len)
        .and_then(|z| z.checked_add(4))
        .ok_or_else(|| StoreError::Corrupt("zone table size overflows".into()))?;
    let sections = zone_len
        .checked_add(meta.coverage_len())
        .and_then(|s| s.checked_add(HEADER_LEN + schema_len(version)))
        .ok_or_else(|| StoreError::Corrupt("section sizes overflow".into()))?;
    let file_len = file.metadata()?.len();
    if sections > file_len {
        return Err(StoreError::Corrupt(format!(
            "declared shape needs {sections} bytes of zone table and \
             coverage but the file holds {file_len} bytes"
        )));
    }
    let mut zone_bytes = vec![0u8; zone_len as usize];
    file.read_exact(&mut zone_bytes)
        .map_err(|_| StoreError::Corrupt("file too small for zone table".into()))?;
    let (table, crc_bytes) = zone_bytes.split_at(n_blocks * entry_len as usize);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(table) != stored {
        return Err(StoreError::Corrupt("zone table checksum mismatch".into()));
    }
    let mut zones = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let e = &table[b * entry_len as usize..(b + 1) * entry_len as usize];
        if version == VERSION {
            zones.push(ZoneEntry::from_bytes(e, b)?);
        } else {
            // v2 entries convert to Raw with the non-finite flag set
            // conservatively: a v2 zone map was computed NaN-blind and
            // must never drive pruning.
            zones.push(ZoneEntry {
                min: f32::from_bits(u32::from_le_bytes(e[0..4].try_into().unwrap())),
                max: f32::from_bits(u32::from_le_bytes(e[4..8].try_into().unwrap())),
                rows: u32::from_le_bytes(e[8..12].try_into().unwrap()),
                codec: Codec::Raw,
                has_non_finite: true,
                comp_len: (meta.rows_in_block(b) * meta.ns as usize * 4) as u32,
                crc: u32::from_le_bytes(e[12..16].try_into().unwrap()),
            });
        }
    }
    // Coverage bitmap: present exactly when the watermark is short of nd.
    let covered = if meta.is_complete() {
        None
    } else {
        let n_bits_bytes = coverage_bytes(meta.nd as usize);
        let mut section = vec![0u8; n_bits_bytes + 4];
        file.read_exact(&mut section)
            .map_err(|_| StoreError::Corrupt("file too small for coverage bitmap".into()))?;
        let (bits, crc_bytes) = section.split_at(n_bits_bytes);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(bits) != stored {
            return Err(StoreError::Corrupt(
                "coverage bitmap checksum mismatch".into(),
            ));
        }
        if coverage_popcount(bits) != meta.completed_records {
            return Err(StoreError::Corrupt(format!(
                "coverage bitmap covers {} positions but the watermark says {}",
                coverage_popcount(bits),
                meta.completed_records
            )));
        }
        // Slack bits past nd must be zero so the bitmap has one canonical
        // encoding (and any flip in the slack is detected, not ignored).
        for pos in meta.nd as usize..n_bits_bytes * 8 {
            if coverage_covers(bits, pos) {
                return Err(StoreError::Corrupt(
                    "coverage bitmap sets a position past the record count".into(),
                ));
            }
        }
        Some(bits.to_vec())
    };
    // Per-block payload offsets: prefix sums of the (CRC-protected)
    // comp_len fields. The whole declared data region must fit in the
    // file, so truncation surfaces at validation time.
    let mut offsets = Vec::with_capacity(n_blocks);
    let mut off = sections;
    for zone in &zones {
        offsets.push(off);
        off = off
            .checked_add(zone.comp_len as u64)
            .ok_or_else(|| StoreError::Corrupt("data region size overflows".into()))?;
    }
    if off > file_len {
        return Err(StoreError::Corrupt(format!(
            "declared data region ends at byte {off} but the file holds {file_len} bytes"
        )));
    }
    Ok(ColumnFile {
        meta,
        zones,
        covered,
        version,
        access_stamp,
        offsets,
    })
}

/// Reads one data block, verifying its payload checksum against the zone
/// entry and decoding it per the zone's codec.
pub fn read_block(file: &mut File, col: &ColumnFile, b: usize) -> Result<Vec<f32>, StoreError> {
    let zone = col
        .zones
        .get(b)
        .ok_or_else(|| StoreError::Corrupt(format!("block {b} out of range")))?;
    let rows = col.meta.rows_in_block(b);
    if zone.rows as usize != rows {
        return Err(StoreError::Corrupt(format!(
            "block {b} zone rows {} disagree with schema ({rows})",
            zone.rows
        )));
    }
    let offset = col
        .data_offset(b)
        .ok_or_else(|| StoreError::Corrupt(format!("block {b} has no payload offset")))?;
    let mut payload = vec![0u8; zone.comp_len as usize];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut payload)
        .map_err(|_| StoreError::Corrupt(format!("block {b} truncated")))?;
    if crc32(&payload) != zone.crc {
        return Err(StoreError::Corrupt(format!("block {b} checksum mismatch")));
    }
    decode_block(zone, &payload, rows * col.meta.ns as usize, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ColumnMeta {
        ColumnMeta {
            model_fp: 0xAB,
            dataset_fp: 0xCD,
            unit: 3,
            nd: 10,
            ns: 4,
            block_records: 4,
            completed_records: 10,
        }
    }

    fn column_data(m: &ColumnMeta) -> Vec<f32> {
        (0..(m.nd * m.ns) as usize)
            .map(|i| (i as f32) * 0.5 - 3.0)
            .collect()
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-store-tests")
            .join(format!("fmt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_read(name: &str, m: &ColumnMeta, data: &[f32]) -> (ColumnFile, Vec<Vec<f32>>) {
        let dir = test_dir(name);
        let path = dir.join("u.col");
        write_column_file(&path, &dir.join("u.tmp"), m, data, None, 7).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        let blocks = (0..col.meta.n_blocks())
            .map(|b| read_block(&mut f, &col, b).unwrap())
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        (col, blocks)
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_bits_and_zones() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("roundtrip");
        let path = dir.join("u3.col");
        let summary = write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None, 42).unwrap();
        assert_eq!(summary.n_blocks, 3);
        assert_eq!(summary.raw_data_bytes, data.len() as u64 * 4);
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        assert_eq!(col.meta, m);
        assert_eq!(col.version, VERSION);
        assert_eq!(col.access_stamp, 42);
        assert!(col.covered.is_none(), "complete columns carry no bitmap");
        assert_eq!(col.zones.len(), 3, "10 records at 4/block = 3 blocks");
        assert_eq!(col.zones[0].rows, 4);
        assert_eq!(col.zones[2].rows, 2, "tail block is short");
        let mut all = Vec::new();
        for b in 0..col.meta.n_blocks() {
            let block = read_block(&mut f, &col, b).unwrap();
            // Zone map brackets the block (all values finite here).
            assert!(!col.zones[b].has_non_finite);
            for &v in &block {
                assert!(v >= col.zones[b].min && v <= col.zones[b].max);
            }
            all.extend(block);
        }
        assert_eq!(all, data, "bit-identical roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_safe_zone_maps() {
        // Block 0 mixes NaN/Inf with finite values: min/max aggregate the
        // finite ones only and the non-finite flag is set. Block 1 is all
        // NaN: bounds are 0.0/0.0, never the inverted +inf/-inf the old
        // f32::min fold serialized.
        let m = ColumnMeta {
            nd: 8,
            ns: 1,
            completed_records: 8,
            ..meta()
        };
        let data = vec![
            1.0,
            f32::NAN,
            -2.0,
            f32::INFINITY,
            f32::NAN,
            f32::NAN,
            f32::NAN,
            f32::NAN,
        ];
        let (col, blocks) = write_read("nan-zones", &m, &data);
        let z0 = &col.zones[0];
        assert!(z0.has_non_finite);
        assert_eq!((z0.min, z0.max), (-2.0, 1.0), "finite-only bounds");
        let z1 = &col.zones[1];
        assert!(z1.has_non_finite);
        assert_eq!((z1.min, z1.max), (0.0, 0.0), "no inverted infinities");
        // Neither block is prunable: flagged blocks must always be read.
        assert_eq!(col.prunable_blocks(), 0);
        assert!(z0.constant_value().is_none());
        assert!(z1.constant_value().is_none());
        // Values (including every NaN bit pattern) roundtrip bit-exactly.
        let all: Vec<f32> = blocks.into_iter().flatten().collect();
        for (got, want) in all.iter().zip(&data) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // The all-NaN block is bit-uniform, so it stores as a (flagged,
        // unprunable) constant.
        assert_eq!(z1.codec, Codec::Constant);
    }

    #[test]
    fn constant_blocks_prune_and_mixed_zero_signs_do_not() {
        let m = ColumnMeta {
            nd: 8,
            ns: 2,
            completed_records: 8,
            ..meta()
        };
        // Block 0: one bit pattern — constant, prunable, 4-byte payload.
        // Block 1: +0.0 and -0.0 differ in bits — NOT constant (a scan
        // synthesizing one pattern would flip signs).
        let mut data = vec![0.75f32; 8];
        data.extend([0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0]);
        let (col, blocks) = write_read("const-zero", &m, &data);
        let z0 = &col.zones[0];
        assert_eq!(z0.codec, Codec::Constant);
        assert_eq!(z0.comp_len, 4);
        assert_eq!(z0.constant_value(), Some(0.75));
        assert_eq!((z0.min, z0.max), (0.75, 0.75));
        let z1 = &col.zones[1];
        assert_ne!(z1.codec, Codec::Constant, "±0.0 mix is not constant");
        assert!(z1.constant_value().is_none());
        let all: Vec<f32> = blocks.into_iter().flatten().collect();
        for (got, want) in all.iter().zip(&data) {
            assert_eq!(got.to_bits(), want.to_bits(), "sign bits preserved");
        }
    }

    #[test]
    fn dict_codec_shrinks_saturated_blocks_bit_exactly() {
        // Saturated activations: two patterns over a 64-value block pack
        // to 1 bit each. 1 + 2*4 + 8 = 17 bytes vs 256 raw.
        let m = ColumnMeta {
            nd: 64,
            ns: 1,
            block_records: 64,
            completed_records: 64,
            ..meta()
        };
        let data: Vec<f32> = (0..64)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let (col, blocks) = write_read("dict", &m, &data);
        let z = &col.zones[0];
        assert_eq!(z.codec, Codec::Dict);
        assert_eq!(z.comp_len, 17);
        assert_eq!((z.min, z.max), (-1.0, 1.0));
        assert!(!z.has_non_finite);
        assert!(z.constant_value().is_none(), "dict blocks are never pruned");
        assert_eq!(col.stored_data_bytes(), 17);
        assert_eq!(blocks[0], data, "bit-identical through the dictionary");
        // High-cardinality data falls back to raw: the encoder never
        // chooses a codec that would grow the block.
        let varied: Vec<f32> = (0..64).map(|i| i as f32 * 0.125).collect();
        let (col, blocks) = write_read("dict-raw", &m, &varied);
        assert_eq!(col.zones[0].codec, Codec::Raw);
        assert_eq!(col.zones[0].comp_len, 256);
        assert_eq!(blocks[0], varied);
    }

    #[test]
    fn v2_files_read_back_and_never_prune() {
        let m = meta();
        // Constant data: a v3 writer would prune this, but a v2 file's
        // zones are conservative (NaN-blind history) and must not.
        let data = vec![0.5f32; (m.nd * m.ns) as usize];
        let dir = test_dir("v2-compat");
        let path = dir.join("u3.col");
        write_column_file_v2(&path, &dir.join("u3.tmp"), &m, &data, None).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        assert_eq!(col.version, VERSION_V2);
        assert_eq!(col.meta, m);
        assert_eq!(col.access_stamp, 0, "v2 files are coldest");
        assert_eq!(read_access_stamp(&path).unwrap(), None);
        for z in &col.zones {
            assert_eq!(z.codec, Codec::Raw);
            assert!(z.has_non_finite, "conservative: v2 zones never prune");
            assert!(z.constant_value().is_none());
        }
        assert_eq!(col.prunable_blocks(), 0);
        let mut all = Vec::new();
        for b in 0..col.meta.n_blocks() {
            all.extend(read_block(&mut f, &col, b).unwrap());
        }
        assert_eq!(all, data, "v2 data reads bit-identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn access_stamp_updates_in_place_without_breaking_validation() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("stamp");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None, 1000).unwrap();
        assert_eq!(read_access_stamp(&path).unwrap(), Some(1000));
        assert!(write_access_stamp(&path, 2000).unwrap());
        assert_eq!(read_access_stamp(&path).unwrap(), Some(2000));
        // The stamp is outside every checksum: the file still validates
        // and serves identical data after the in-place update — and even
        // after a torn/garbage stamp write.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[ACCESS_STAMP_OFFSET as usize] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        let mut all = Vec::new();
        for b in 0..col.meta.n_blocks() {
            all.extend(read_block(&mut f, &col, b).unwrap());
        }
        assert_eq!(all, data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn codec_tag_and_payload_flips_are_detected() {
        let m = ColumnMeta {
            nd: 8,
            ns: 1,
            completed_records: 8,
            ..meta()
        };
        let data = vec![0.25f32; 8]; // constant: both blocks prunable
        let dir = test_dir("codec-flip");
        let path = dir.join("u.col");
        write_column_file(&path, &dir.join("u.tmp"), &m, &data, None, 0).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // Flip the codec tag of block 0 (byte 12 of the first zone entry):
        // the zone-table checksum must refuse it.
        let zone_start = (HEADER_LEN + SCHEMA_LEN_V3) as usize;
        let mut evil = pristine.clone();
        evil[zone_start + 12] ^= 0x01;
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Flip a bit inside a compressed payload: the payload CRC must
        // refuse the block.
        let mut evil = pristine.clone();
        let n = evil.len();
        evil[n - 2] ^= 0x10;
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        let err = read_block(&mut f, &col, col.meta.n_blocks() - 1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_column_roundtrips_watermark_and_bitmap() {
        // Positions 0, 3, 7 valid (watermark 3 of 10), densely packed
        // into a single data block.
        let m = ColumnMeta {
            completed_records: 3,
            ..meta()
        };
        let ns = m.ns as usize;
        let mut filled = vec![false; m.nd as usize];
        for p in [0usize, 3, 7] {
            filled[p] = true;
        }
        let bits = coverage_from_filled(&filled);
        let mut full = vec![0.0f32; (m.nd * m.ns) as usize];
        for p in [0usize, 3, 7] {
            for t in 0..ns {
                full[p * ns + t] = (p * 10 + t) as f32;
            }
        }
        let packed = pack_rows(&full, &filled, ns);
        assert_eq!(packed.len(), 3 * ns, "only valid rows are stored");
        let dir = test_dir("partial");
        let path = dir.join("u3.part");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &packed, Some(&bits), 0).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        assert_eq!(col.meta, m);
        assert!(!col.meta.is_complete());
        assert_eq!(col.meta.n_blocks(), 1, "3 packed rows at 4/block = 1 block");
        let covered = col.covered.clone().expect("partial columns carry a bitmap");
        for (p, &f) in filled.iter().enumerate() {
            assert_eq!(coverage_covers(&covered, p), f, "position {p}");
        }
        // The rank table maps positions to packed rows; the stored rows
        // are bit-identical to the originals.
        let ranks = coverage_ranks(&covered, m.nd as usize);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[3], 1);
        assert_eq!(ranks[7], 2);
        let block = read_block(&mut f, &col, 0).unwrap();
        for p in [0usize, 3, 7] {
            let row = ranks[p] as usize;
            assert_eq!(
                &block[row * ns..(row + 1) * ns],
                &full[p * ns..(p + 1) * ns],
                "position {p}"
            );
        }
        // Corrupting the bitmap (set an extra bit) is detected: either
        // the checksum disagrees or the popcount/watermark check fires.
        let mut bytes = std::fs::read(&path).unwrap();
        let cov_offset = (HEADER_LEN + SCHEMA_LEN_V3 + ZONE_ENTRY_LEN_V3 + 4) as usize;
        bytes[cov_offset] ^= 0x02; // flip position 1
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watermark_past_record_count_is_corrupt() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("watermark");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None, 0).unwrap();
        // Rewrite the schema with completed_records > nd and a valid CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        let bad = ColumnMeta {
            completed_records: m.nd + 1,
            ..m
        };
        bytes[HEADER_LEN as usize..(HEADER_LEN + SCHEMA_LEN_V2) as usize]
            .copy_from_slice(&bad.to_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let err = read_meta(&mut f).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("watermark"), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_per_block() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("corrupt");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None, 0).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        // Flip one byte inside block 1's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = col.data_offset(1).unwrap() as usize + 3;
        bytes[offset] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        let err = read_block(&mut f, &col, 1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        // Untouched block 0 still verifies.
        assert!(read_block(&mut f, &col, 0).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_bad_magic_are_corrupt() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("trunc");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None, 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncate inside the last data block: v3 validates the declared
        // data region against the file length up front.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Truncate into the zone table.
        std::fs::write(&path, &bytes[..30]).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Bad magic.
        let mut evil = bytes.clone();
        evil[0] = b'X';
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Header checksum mismatch (flip flags without recomputing crc).
        let mut evil = bytes.clone();
        evil[10] ^= 1;
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absurd_declared_shape_is_corrupt_not_a_giant_allocation() {
        // A schema whose CRC validates but declares nd huge must error
        // against the actual file length before sizing the zone table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let absurd = ColumnMeta {
            nd: 1 << 40,
            block_records: 1,
            completed_records: 1 << 40,
            ..meta()
        };
        bytes.extend_from_slice(&absurd.to_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // access stamp
        let dir = test_dir("absurd");
        let path = dir.join("u.col");
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let err = read_meta(&mut f).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("zone table"), "got {err}");
        // Overflow-sized shapes are caught too.
        let mut overflow_bytes = bytes[..HEADER_LEN as usize].to_vec();
        let overflow = ColumnMeta {
            nd: u64::MAX / 2,
            block_records: 1,
            completed_records: u64::MAX / 2,
            ..meta()
        };
        overflow_bytes.extend_from_slice(&overflow.to_bytes());
        overflow_bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &overflow_bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_column_roundtrips() {
        let m = ColumnMeta {
            nd: 0,
            completed_records: 0,
            ..meta()
        };
        let dir = test_dir("empty");
        let path = dir.join("u.col");
        write_column_file(&path, &dir.join("u.tmp"), &m, &[], None, 0).unwrap();
        let mut f = File::open(&path).unwrap();
        let col = read_meta(&mut f).unwrap();
        assert_eq!(col.meta.n_blocks(), 0);
        assert!(col.zones.is_empty());
        assert!(col.covered.is_none(), "nd == 0 is complete by definition");
        assert_eq!(col.prunable_blocks(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
