//! The self-describing column file format.
//!
//! One file persists one unit-behavior column: the behaviors of a single
//! hidden unit over every record of a dataset, `nd * ns` f32 values in
//! record-position-major order. The layout (all integers little-endian):
//!
//! ```text
//! header   magic "DBSBCOL\0" (8) | version u16 | flags u16 | crc32 u32
//! schema   model_fp u64 | dataset_fp u64 | unit u64 | nd u64 | ns u64
//!          | block_records u64 | crc32 u32
//! zones    per block: min f32 | max f32 | rows u32 | data crc32 u32
//!          then crc32 u32 over the zone table
//! data     per block: rows * ns f32 (records [b*block_records ..))
//! ```
//!
//! The file is self-describing: a reader needs nothing but the path — the
//! schema section names the key and shape, the zone table carries per-block
//! min/max statistics (zone maps, for future predicate pushdown) plus a
//! CRC32 per data block, and every section is independently checksummed so
//! truncation or bit rot is detected at exactly the granularity it
//! corrupts. Readers validate the header, schema and zone checksums up
//! front and each block's data checksum on load.

use crate::StoreError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic for behavior-column files.
pub const MAGIC: [u8; 8] = *b"DBSBCOL\0";
/// Format version.
pub const VERSION: u16 = 1;

const HEADER_LEN: u64 = 8 + 2 + 2 + 4;
const SCHEMA_LEN: u64 = 6 * 8 + 4;
const ZONE_ENTRY_LEN: u64 = 4 + 4 + 4 + 4;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — implemented here so the crate stays
// dependency-free.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------

/// The schema section of a column file: the column's key and shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Model content fingerprint.
    pub model_fp: u64,
    /// Dataset content fingerprint.
    pub dataset_fp: u64,
    /// Hidden-unit index within the model.
    pub unit: u64,
    /// Records in the dataset.
    pub nd: u64,
    /// Symbols per record (rows per record in the column).
    pub ns: u64,
    /// Records per data block (the zone-map / checksum granularity).
    pub block_records: u64,
}

impl ColumnMeta {
    /// Number of data blocks (`ceil(nd / block_records)`).
    pub fn n_blocks(&self) -> usize {
        if self.nd == 0 {
            0
        } else {
            self.nd.div_ceil(self.block_records) as usize
        }
    }

    /// Records covered by block `b` (the last block may be short).
    pub fn rows_in_block(&self, b: usize) -> usize {
        let start = b as u64 * self.block_records;
        (self.nd.saturating_sub(start)).min(self.block_records) as usize
    }

    /// Block holding record position `pos`.
    pub fn block_of(&self, pos: usize) -> usize {
        pos / self.block_records as usize
    }

    /// File offset of block `b`'s data.
    fn data_offset(&self, b: usize) -> u64 {
        let zone_len = self.n_blocks() as u64 * ZONE_ENTRY_LEN + 4;
        HEADER_LEN
            + SCHEMA_LEN
            + zone_len
            + b as u64 * self.block_records * self.ns * std::mem::size_of::<f32>() as u64
    }

    fn to_bytes(self) -> [u8; SCHEMA_LEN as usize] {
        let mut out = [0u8; SCHEMA_LEN as usize];
        let fields = [
            self.model_fp,
            self.dataset_fp,
            self.unit,
            self.nd,
            self.ns,
            self.block_records,
        ];
        for (i, f) in fields.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&f.to_le_bytes());
        }
        let crc = crc32(&out[..48]);
        out[48..52].copy_from_slice(&crc.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8; SCHEMA_LEN as usize]) -> Result<ColumnMeta, StoreError> {
        let stored_crc = u32::from_le_bytes(bytes[48..52].try_into().unwrap());
        if crc32(&bytes[..48]) != stored_crc {
            return Err(StoreError::Corrupt("schema checksum mismatch".into()));
        }
        let field = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        let meta = ColumnMeta {
            model_fp: field(0),
            dataset_fp: field(1),
            unit: field(2),
            nd: field(3),
            ns: field(4),
            block_records: field(5),
        };
        if meta.block_records == 0 || meta.ns == 0 {
            return Err(StoreError::Corrupt(
                "schema declares a zero-sized block or record".into(),
            ));
        }
        Ok(meta)
    }
}

/// One zone-map entry: per-block statistics plus the block data checksum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Minimum value in the block.
    pub min: f32,
    /// Maximum value in the block.
    pub max: f32,
    /// Records in the block.
    pub rows: u32,
    /// CRC32 of the block's raw data bytes.
    pub crc: u32,
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Serializes a complete column (`data.len() == nd * ns`, record-major)
/// into `w` in the format above. Returns the number of data blocks.
pub fn write_column<W: Write>(
    w: &mut W,
    meta: &ColumnMeta,
    data: &[f32],
) -> Result<usize, StoreError> {
    debug_assert_eq!(data.len() as u64, meta.nd * meta.ns);
    // Header.
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes()); // flags
    let crc = crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&header)?;
    // Schema.
    w.write_all(&meta.to_bytes())?;
    // Data blocks are serialized once; zone entries derive from the bytes.
    let n_blocks = meta.n_blocks();
    let mut zone_bytes = Vec::with_capacity(n_blocks * ZONE_ENTRY_LEN as usize);
    let mut block_bytes: Vec<Vec<u8>> = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let rows = meta.rows_in_block(b);
        let start = b * meta.block_records as usize * meta.ns as usize;
        let values = &data[start..start + rows * meta.ns as usize];
        let mut bytes = Vec::with_capacity(values.len() * 4);
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
            min = min.min(v);
            max = max.max(v);
        }
        zone_bytes.extend_from_slice(&min.to_bits().to_le_bytes());
        zone_bytes.extend_from_slice(&max.to_bits().to_le_bytes());
        zone_bytes.extend_from_slice(&(rows as u32).to_le_bytes());
        zone_bytes.extend_from_slice(&crc32(&bytes).to_le_bytes());
        block_bytes.push(bytes);
    }
    let zone_crc = crc32(&zone_bytes);
    zone_bytes.extend_from_slice(&zone_crc.to_le_bytes());
    w.write_all(&zone_bytes)?;
    for bytes in &block_bytes {
        w.write_all(bytes)?;
    }
    Ok(n_blocks)
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Reads and validates the header, schema and zone table of a column
/// file. Any mismatch (magic, version, checksum, truncation) is
/// [`StoreError::Corrupt`].
pub fn read_meta(file: &mut File) -> Result<(ColumnMeta, Vec<ZoneEntry>), StoreError> {
    file.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; HEADER_LEN as usize];
    file.read_exact(&mut header)
        .map_err(|_| StoreError::Corrupt("file too small for header".into()))?;
    if header[..8] != MAGIC {
        return Err(StoreError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let stored = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if crc32(&header[..12]) != stored {
        return Err(StoreError::Corrupt("header checksum mismatch".into()));
    }
    let mut schema = [0u8; SCHEMA_LEN as usize];
    file.read_exact(&mut schema)
        .map_err(|_| StoreError::Corrupt("file too small for schema".into()))?;
    let meta = ColumnMeta::from_bytes(&schema)?;
    let n_blocks = meta.n_blocks();
    // Bound the zone-table allocation by the actual file length before
    // trusting the declared shape: a schema whose CRC happens to
    // validate but declares an absurd `nd` must surface as corruption,
    // not as a giant allocation.
    let zone_len = (n_blocks as u64)
        .checked_mul(ZONE_ENTRY_LEN)
        .and_then(|z| z.checked_add(4))
        .ok_or_else(|| StoreError::Corrupt("zone table size overflows".into()))?;
    let file_len = file.metadata()?.len();
    if HEADER_LEN + SCHEMA_LEN + zone_len > file_len {
        return Err(StoreError::Corrupt(format!(
            "declared shape needs a {zone_len}-byte zone table but the file \
             holds {file_len} bytes"
        )));
    }
    let mut zone_bytes = vec![0u8; zone_len as usize];
    file.read_exact(&mut zone_bytes)
        .map_err(|_| StoreError::Corrupt("file too small for zone table".into()))?;
    let (table, crc_bytes) = zone_bytes.split_at(n_blocks * ZONE_ENTRY_LEN as usize);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(table) != stored {
        return Err(StoreError::Corrupt("zone table checksum mismatch".into()));
    }
    let mut zones = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let e = &table[b * ZONE_ENTRY_LEN as usize..(b + 1) * ZONE_ENTRY_LEN as usize];
        zones.push(ZoneEntry {
            min: f32::from_bits(u32::from_le_bytes(e[0..4].try_into().unwrap())),
            max: f32::from_bits(u32::from_le_bytes(e[4..8].try_into().unwrap())),
            rows: u32::from_le_bytes(e[8..12].try_into().unwrap()),
            crc: u32::from_le_bytes(e[12..16].try_into().unwrap()),
        });
    }
    Ok((meta, zones))
}

/// Reads one data block, verifying its checksum against the zone entry.
pub fn read_block(
    file: &mut File,
    meta: &ColumnMeta,
    zones: &[ZoneEntry],
    b: usize,
) -> Result<Vec<f32>, StoreError> {
    let zone = zones
        .get(b)
        .ok_or_else(|| StoreError::Corrupt(format!("block {b} out of range")))?;
    let rows = meta.rows_in_block(b);
    if zone.rows as usize != rows {
        return Err(StoreError::Corrupt(format!(
            "block {b} zone rows {} disagree with schema ({rows})",
            zone.rows
        )));
    }
    let n_bytes = rows * meta.ns as usize * std::mem::size_of::<f32>();
    let mut bytes = vec![0u8; n_bytes];
    file.seek(SeekFrom::Start(meta.data_offset(b)))?;
    file.read_exact(&mut bytes)
        .map_err(|_| StoreError::Corrupt(format!("block {b} truncated")))?;
    if crc32(&bytes) != zone.crc {
        return Err(StoreError::Corrupt(format!("block {b} checksum mismatch")));
    }
    let values = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(values)
}

/// Writes a column file atomically: serialize to `path` with a temporary
/// suffix, then rename into place.
pub fn write_column_file(
    path: &Path,
    tmp_path: &Path,
    meta: &ColumnMeta,
    data: &[f32],
) -> Result<usize, StoreError> {
    let mut file = File::create(tmp_path)?;
    let blocks = write_column(&mut file, meta, data)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp_path, path)?;
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ColumnMeta {
        ColumnMeta {
            model_fp: 0xAB,
            dataset_fp: 0xCD,
            unit: 3,
            nd: 10,
            ns: 4,
            block_records: 4,
        }
    }

    fn column_data(m: &ColumnMeta) -> Vec<f32> {
        (0..(m.nd * m.ns) as usize)
            .map(|i| (i as f32) * 0.5 - 3.0)
            .collect()
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-store-tests")
            .join(format!("fmt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_bits_and_zones() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("roundtrip");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones) = read_meta(&mut f).unwrap();
        assert_eq!(read, m);
        assert_eq!(zones.len(), 3, "10 records at 4/block = 3 blocks");
        assert_eq!(zones[0].rows, 4);
        assert_eq!(zones[2].rows, 2, "tail block is short");
        let mut all = Vec::new();
        for b in 0..read.n_blocks() {
            let block = read_block(&mut f, &read, &zones, b).unwrap();
            // Zone map brackets the block.
            for &v in &block {
                assert!(v >= zones[b].min && v <= zones[b].max);
            }
            all.extend(block);
        }
        assert_eq!(all, data, "bit-identical roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_per_block() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("corrupt");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data).unwrap();
        // Flip one byte inside block 1's data region.
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = m.data_offset(1) as usize + 3;
        bytes[offset] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones) = read_meta(&mut f).unwrap();
        let err = read_block(&mut f, &read, &zones, 1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        // Untouched block 0 still verifies.
        assert!(read_block(&mut f, &read, &zones, 0).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_bad_magic_are_corrupt() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("trunc");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncate inside the last data block.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones) = read_meta(&mut f).unwrap();
        let last = read.n_blocks() - 1;
        assert!(matches!(
            read_block(&mut f, &read, &zones, last),
            Err(StoreError::Corrupt(_))
        ));
        // Truncate into the zone table.
        std::fs::write(&path, &bytes[..30]).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Bad magic.
        let mut evil = bytes.clone();
        evil[0] = b'X';
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Header checksum mismatch (flip flags without recomputing crc).
        let mut evil = bytes.clone();
        evil[10] ^= 1;
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absurd_declared_shape_is_corrupt_not_a_giant_allocation() {
        // A schema whose CRC validates but declares nd huge must error
        // against the actual file length before sizing the zone table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let absurd = ColumnMeta {
            nd: 1 << 40,
            block_records: 1,
            ..meta()
        };
        bytes.extend_from_slice(&absurd.to_bytes());
        let dir = test_dir("absurd");
        let path = dir.join("u.col");
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let err = read_meta(&mut f).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("zone table"), "got {err}");
        // Overflow-sized shapes are caught too.
        let mut overflow_bytes = bytes[..HEADER_LEN as usize].to_vec();
        let overflow = ColumnMeta {
            nd: u64::MAX / 2,
            block_records: 1,
            ..meta()
        };
        overflow_bytes.extend_from_slice(&overflow.to_bytes());
        std::fs::write(&path, &overflow_bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_column_roundtrips() {
        let m = ColumnMeta { nd: 0, ..meta() };
        let dir = test_dir("empty");
        let path = dir.join("u.col");
        write_column_file(&path, &dir.join("u.tmp"), &m, &[]).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones) = read_meta(&mut f).unwrap();
        assert_eq!(read.n_blocks(), 0);
        assert!(zones.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
