//! The self-describing column file format.
//!
//! One file persists one unit-behavior column: the behaviors of a single
//! hidden unit over every record of a dataset, `nd * ns` f32 values in
//! record-position-major order. The layout (all integers little-endian):
//!
//! ```text
//! header   magic "DBSBCOL\0" (8) | version u16 | flags u16 | crc32 u32
//! schema   model_fp u64 | dataset_fp u64 | unit u64 | nd u64 | ns u64
//!          | block_records u64 | completed_records u64 | crc32 u32
//! zones    per data block: min f32 | max f32 | rows u32 | data crc32 u32
//!          then crc32 u32 over the zone table
//! coverage (only when completed_records < nd)
//!          ceil(nd / 8) bitmap bytes (bit p set = record position p is
//!          valid) | crc32 u32
//! data     per block: rows * ns f32 — the `completed_records` valid
//!          records, densely packed in ascending position order
//! ```
//!
//! The file is self-describing: a reader needs nothing but the path — the
//! schema section names the key and shape, the zone table carries per-block
//! min/max statistics (zone maps, for future predicate pushdown) plus a
//! CRC32 per data block, and every section is independently checksummed so
//! truncation or bit rot is detected at exactly the granularity it
//! corrupts. Readers validate the header, schema, zone and coverage
//! checksums up front and each block's data checksum on load.
//!
//! ## Partial columns (the watermark)
//!
//! `completed_records` is the column's **watermark**: how many record
//! positions hold real extractor output. A *complete* column has
//! `completed_records == nd` and no coverage section. A *partial* column —
//! the persisted prefix of an early-stopped streaming pass — declares
//! `completed_records < nd` and carries a coverage bitmap naming exactly
//! which positions are valid (streaming passes visit records in shuffled
//! order, so the valid set is not a positional prefix). The data region
//! holds **only** the valid records, densely packed in ascending position
//! order: a record's data row is its rank among the covered positions.
//! Packing matters for economics, not just size — a warm resume of an
//! early-stopped pass reads exactly the prefix's bytes instead of paging
//! a mostly empty full-size grid — and it leaves no unprotected filler:
//! the bitmap's population count must equal the watermark and its slack
//! bits must be zero, or the file is corrupt.

use crate::StoreError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic for behavior-column files.
pub const MAGIC: [u8; 8] = *b"DBSBCOL\0";
/// Format version (2 added the completed-record watermark + coverage
/// bitmap; version-1 files read as corrupt and re-materialize).
pub const VERSION: u16 = 2;

const HEADER_LEN: u64 = 8 + 2 + 2 + 4;
const SCHEMA_LEN: u64 = 7 * 8 + 4;
const ZONE_ENTRY_LEN: u64 = 4 + 4 + 4 + 4;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — implemented here so the crate stays
// dependency-free.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------

/// The schema section of a column file: the column's key and shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Model content fingerprint.
    pub model_fp: u64,
    /// Dataset content fingerprint.
    pub dataset_fp: u64,
    /// Hidden-unit index within the model.
    pub unit: u64,
    /// Records in the dataset.
    pub nd: u64,
    /// Symbols per record (rows per record in the column).
    pub ns: u64,
    /// Records per data block (the zone-map / checksum granularity).
    pub block_records: u64,
    /// The watermark: record positions holding real extractor output.
    /// `== nd` for a complete column; `< nd` for the persisted prefix of
    /// an early-stopped pass (the coverage bitmap names which positions).
    pub completed_records: u64,
}

impl ColumnMeta {
    /// True when every record position is valid (no coverage section).
    pub fn is_complete(&self) -> bool {
        self.completed_records == self.nd
    }

    /// Records actually stored in the data region (`nd` for a complete
    /// column, the watermark for a partial one — valid records are
    /// densely packed).
    pub fn data_records(&self) -> u64 {
        self.completed_records
    }

    /// Number of data blocks (`ceil(data_records / block_records)`).
    pub fn n_blocks(&self) -> usize {
        if self.data_records() == 0 {
            0
        } else {
            self.data_records().div_ceil(self.block_records) as usize
        }
    }

    /// Records stored in block `b` (the last block may be short).
    pub fn rows_in_block(&self, b: usize) -> usize {
        let start = b as u64 * self.block_records;
        (self.data_records().saturating_sub(start)).min(self.block_records) as usize
    }

    /// Block holding data row `row` (for a complete column the row *is*
    /// the record position; for a partial column it is the position's
    /// rank among the covered positions).
    pub fn block_of(&self, row: usize) -> usize {
        row / self.block_records as usize
    }

    /// Bytes of the coverage section (bitmap + crc32), zero when
    /// complete.
    fn coverage_len(&self) -> u64 {
        if self.is_complete() {
            0
        } else {
            coverage_bytes(self.nd as usize) as u64 + 4
        }
    }

    /// File offset of block `b`'s data.
    fn data_offset(&self, b: usize) -> u64 {
        let zone_len = self.n_blocks() as u64 * ZONE_ENTRY_LEN + 4;
        HEADER_LEN
            + SCHEMA_LEN
            + zone_len
            + self.coverage_len()
            + b as u64 * self.block_records * self.ns * std::mem::size_of::<f32>() as u64
    }

    fn to_bytes(self) -> [u8; SCHEMA_LEN as usize] {
        let mut out = [0u8; SCHEMA_LEN as usize];
        let fields = [
            self.model_fp,
            self.dataset_fp,
            self.unit,
            self.nd,
            self.ns,
            self.block_records,
            self.completed_records,
        ];
        for (i, f) in fields.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&f.to_le_bytes());
        }
        let crc = crc32(&out[..56]);
        out[56..60].copy_from_slice(&crc.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8; SCHEMA_LEN as usize]) -> Result<ColumnMeta, StoreError> {
        let stored_crc = u32::from_le_bytes(bytes[56..60].try_into().unwrap());
        if crc32(&bytes[..56]) != stored_crc {
            return Err(StoreError::Corrupt("schema checksum mismatch".into()));
        }
        let field = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        let meta = ColumnMeta {
            model_fp: field(0),
            dataset_fp: field(1),
            unit: field(2),
            nd: field(3),
            ns: field(4),
            block_records: field(5),
            completed_records: field(6),
        };
        if meta.block_records == 0 || meta.ns == 0 {
            return Err(StoreError::Corrupt(
                "schema declares a zero-sized block or record".into(),
            ));
        }
        if meta.completed_records > meta.nd {
            return Err(StoreError::Corrupt(format!(
                "watermark {} exceeds the declared record count {}",
                meta.completed_records, meta.nd
            )));
        }
        Ok(meta)
    }
}

/// One zone-map entry: per-block statistics plus the block data checksum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Minimum value in the block.
    pub min: f32,
    /// Maximum value in the block.
    pub max: f32,
    /// Records in the block.
    pub rows: u32,
    /// CRC32 of the block's raw data bytes.
    pub crc: u32,
}

// ---------------------------------------------------------------------
// Coverage bitmaps
// ---------------------------------------------------------------------

/// Bytes needed for an `nd`-position coverage bitmap.
pub fn coverage_bytes(nd: usize) -> usize {
    nd.div_ceil(8)
}

/// Whether position `pos` is set in a coverage bitmap.
pub fn coverage_covers(bits: &[u8], pos: usize) -> bool {
    bits.get(pos / 8).is_some_and(|b| b & (1 << (pos % 8)) != 0)
}

/// Packs a per-position validity slice into a bitmap.
pub fn coverage_from_filled(filled: &[bool]) -> Vec<u8> {
    let mut bits = vec![0u8; coverage_bytes(filled.len())];
    for (pos, &f) in filled.iter().enumerate() {
        if f {
            bits[pos / 8] |= 1 << (pos % 8);
        }
    }
    bits
}

fn coverage_popcount(bits: &[u8]) -> u64 {
    bits.iter().map(|b| b.count_ones() as u64).sum()
}

/// Packs the filled rows of a full `nd * ns` record-major buffer into
/// the dense ascending-position layout a partial column stores.
pub fn pack_rows(data: &[f32], filled: &[bool], ns: usize) -> Vec<f32> {
    let mut packed = Vec::with_capacity(filled.iter().filter(|&&f| f).count() * ns);
    for (pos, &f) in filled.iter().enumerate() {
        if f {
            packed.extend_from_slice(&data[pos * ns..(pos + 1) * ns]);
        }
    }
    packed
}

/// Rank table of a coverage bitmap: `ranks[pos]` is the data row of
/// position `pos` (its rank among covered positions; meaningful only
/// when `pos` is covered).
pub fn coverage_ranks(bits: &[u8], nd: usize) -> Vec<u32> {
    let mut ranks = Vec::with_capacity(nd);
    let mut rank = 0u32;
    for pos in 0..nd {
        ranks.push(rank);
        if coverage_covers(bits, pos) {
            rank += 1;
        }
    }
    ranks
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Serializes a column into `w` in the format above. `data` holds the
/// **packed** valid records in ascending position order
/// (`data.len() == completed_records * ns`; see [`pack_rows`]). A
/// complete column (`meta.completed_records == meta.nd`) passes
/// `covered: None`; a partial column passes its coverage bitmap, whose
/// population count must equal the watermark. Returns the number of
/// data blocks.
pub fn write_column<W: Write>(
    w: &mut W,
    meta: &ColumnMeta,
    data: &[f32],
    covered: Option<&[u8]>,
) -> Result<usize, StoreError> {
    debug_assert_eq!(data.len() as u64, meta.data_records() * meta.ns);
    debug_assert_eq!(
        covered.is_some(),
        !meta.is_complete(),
        "coverage bitmap iff partial"
    );
    // Header.
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes()); // flags
    let crc = crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&header)?;
    // Schema.
    w.write_all(&meta.to_bytes())?;
    // Data blocks are serialized once; zone entries derive from the bytes.
    let n_blocks = meta.n_blocks();
    let mut zone_bytes = Vec::with_capacity(n_blocks * ZONE_ENTRY_LEN as usize);
    let mut block_bytes: Vec<Vec<u8>> = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let rows = meta.rows_in_block(b);
        let start = b * meta.block_records as usize * meta.ns as usize;
        let values = &data[start..start + rows * meta.ns as usize];
        let mut bytes = Vec::with_capacity(values.len() * 4);
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
            min = min.min(v);
            max = max.max(v);
        }
        zone_bytes.extend_from_slice(&min.to_bits().to_le_bytes());
        zone_bytes.extend_from_slice(&max.to_bits().to_le_bytes());
        zone_bytes.extend_from_slice(&(rows as u32).to_le_bytes());
        zone_bytes.extend_from_slice(&crc32(&bytes).to_le_bytes());
        block_bytes.push(bytes);
    }
    let zone_crc = crc32(&zone_bytes);
    zone_bytes.extend_from_slice(&zone_crc.to_le_bytes());
    w.write_all(&zone_bytes)?;
    // Coverage bitmap (partial columns only).
    if let Some(bits) = covered {
        debug_assert_eq!(bits.len(), coverage_bytes(meta.nd as usize));
        debug_assert_eq!(coverage_popcount(bits), meta.completed_records);
        w.write_all(bits)?;
        w.write_all(&crc32(bits).to_le_bytes())?;
    }
    for bytes in &block_bytes {
        w.write_all(bytes)?;
    }
    Ok(n_blocks)
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Everything [`read_meta`] validates up front: the schema, the zone
/// table, and (for partial columns) the coverage bitmap.
pub type ValidatedMeta = (ColumnMeta, Vec<ZoneEntry>, Option<Vec<u8>>);

/// Reads and validates the header, schema, zone table and (for partial
/// columns) coverage bitmap of a column file. Any mismatch (magic,
/// version, checksum, truncation, watermark/bitmap disagreement) is
/// [`StoreError::Corrupt`]. The bitmap is `None` for complete columns.
pub fn read_meta(file: &mut File) -> Result<ValidatedMeta, StoreError> {
    file.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; HEADER_LEN as usize];
    file.read_exact(&mut header)
        .map_err(|_| StoreError::Corrupt("file too small for header".into()))?;
    if header[..8] != MAGIC {
        return Err(StoreError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let stored = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if crc32(&header[..12]) != stored {
        return Err(StoreError::Corrupt("header checksum mismatch".into()));
    }
    let mut schema = [0u8; SCHEMA_LEN as usize];
    file.read_exact(&mut schema)
        .map_err(|_| StoreError::Corrupt("file too small for schema".into()))?;
    let meta = ColumnMeta::from_bytes(&schema)?;
    let n_blocks = meta.n_blocks();
    // Bound the zone-table and coverage allocations by the actual file
    // length before trusting the declared shape: a schema whose CRC
    // happens to validate but declares an absurd `nd` must surface as
    // corruption, not as a giant allocation.
    let zone_len = (n_blocks as u64)
        .checked_mul(ZONE_ENTRY_LEN)
        .and_then(|z| z.checked_add(4))
        .ok_or_else(|| StoreError::Corrupt("zone table size overflows".into()))?;
    let sections = zone_len
        .checked_add(meta.coverage_len())
        .and_then(|s| s.checked_add(HEADER_LEN + SCHEMA_LEN))
        .ok_or_else(|| StoreError::Corrupt("section sizes overflow".into()))?;
    let file_len = file.metadata()?.len();
    if sections > file_len {
        return Err(StoreError::Corrupt(format!(
            "declared shape needs {sections} bytes of zone table and \
             coverage but the file holds {file_len} bytes"
        )));
    }
    let mut zone_bytes = vec![0u8; zone_len as usize];
    file.read_exact(&mut zone_bytes)
        .map_err(|_| StoreError::Corrupt("file too small for zone table".into()))?;
    let (table, crc_bytes) = zone_bytes.split_at(n_blocks * ZONE_ENTRY_LEN as usize);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(table) != stored {
        return Err(StoreError::Corrupt("zone table checksum mismatch".into()));
    }
    let mut zones = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let e = &table[b * ZONE_ENTRY_LEN as usize..(b + 1) * ZONE_ENTRY_LEN as usize];
        zones.push(ZoneEntry {
            min: f32::from_bits(u32::from_le_bytes(e[0..4].try_into().unwrap())),
            max: f32::from_bits(u32::from_le_bytes(e[4..8].try_into().unwrap())),
            rows: u32::from_le_bytes(e[8..12].try_into().unwrap()),
            crc: u32::from_le_bytes(e[12..16].try_into().unwrap()),
        });
    }
    // Coverage bitmap: present exactly when the watermark is short of nd.
    let covered = if meta.is_complete() {
        None
    } else {
        let n_bits_bytes = coverage_bytes(meta.nd as usize);
        let mut section = vec![0u8; n_bits_bytes + 4];
        file.read_exact(&mut section)
            .map_err(|_| StoreError::Corrupt("file too small for coverage bitmap".into()))?;
        let (bits, crc_bytes) = section.split_at(n_bits_bytes);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(bits) != stored {
            return Err(StoreError::Corrupt(
                "coverage bitmap checksum mismatch".into(),
            ));
        }
        if coverage_popcount(bits) != meta.completed_records {
            return Err(StoreError::Corrupt(format!(
                "coverage bitmap covers {} positions but the watermark says {}",
                coverage_popcount(bits),
                meta.completed_records
            )));
        }
        // Slack bits past nd must be zero so the bitmap has one canonical
        // encoding (and any flip in the slack is detected, not ignored).
        for pos in meta.nd as usize..n_bits_bytes * 8 {
            if coverage_covers(bits, pos) {
                return Err(StoreError::Corrupt(
                    "coverage bitmap sets a position past the record count".into(),
                ));
            }
        }
        Some(bits.to_vec())
    };
    Ok((meta, zones, covered))
}

/// Reads one data block, verifying its checksum against the zone entry.
pub fn read_block(
    file: &mut File,
    meta: &ColumnMeta,
    zones: &[ZoneEntry],
    b: usize,
) -> Result<Vec<f32>, StoreError> {
    let zone = zones
        .get(b)
        .ok_or_else(|| StoreError::Corrupt(format!("block {b} out of range")))?;
    let rows = meta.rows_in_block(b);
    if zone.rows as usize != rows {
        return Err(StoreError::Corrupt(format!(
            "block {b} zone rows {} disagree with schema ({rows})",
            zone.rows
        )));
    }
    let n_bytes = rows * meta.ns as usize * std::mem::size_of::<f32>();
    let mut bytes = vec![0u8; n_bytes];
    file.seek(SeekFrom::Start(meta.data_offset(b)))?;
    file.read_exact(&mut bytes)
        .map_err(|_| StoreError::Corrupt(format!("block {b} truncated")))?;
    if crc32(&bytes) != zone.crc {
        return Err(StoreError::Corrupt(format!("block {b} checksum mismatch")));
    }
    let values = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(values)
}

/// Writes a column file atomically: serialize to `path` with a temporary
/// suffix, then rename into place. `covered` follows [`write_column`]'s
/// contract (None iff the column is complete).
pub fn write_column_file(
    path: &Path,
    tmp_path: &Path,
    meta: &ColumnMeta,
    data: &[f32],
    covered: Option<&[u8]>,
) -> Result<usize, StoreError> {
    let mut file = File::create(tmp_path)?;
    let blocks = write_column(&mut file, meta, data, covered)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp_path, path)?;
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ColumnMeta {
        ColumnMeta {
            model_fp: 0xAB,
            dataset_fp: 0xCD,
            unit: 3,
            nd: 10,
            ns: 4,
            block_records: 4,
            completed_records: 10,
        }
    }

    fn column_data(m: &ColumnMeta) -> Vec<f32> {
        (0..(m.nd * m.ns) as usize)
            .map(|i| (i as f32) * 0.5 - 3.0)
            .collect()
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-store-tests")
            .join(format!("fmt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_bits_and_zones() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("roundtrip");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones, covered) = read_meta(&mut f).unwrap();
        assert_eq!(read, m);
        assert!(covered.is_none(), "complete columns carry no bitmap");
        assert_eq!(zones.len(), 3, "10 records at 4/block = 3 blocks");
        assert_eq!(zones[0].rows, 4);
        assert_eq!(zones[2].rows, 2, "tail block is short");
        let mut all = Vec::new();
        for b in 0..read.n_blocks() {
            let block = read_block(&mut f, &read, &zones, b).unwrap();
            // Zone map brackets the block.
            for &v in &block {
                assert!(v >= zones[b].min && v <= zones[b].max);
            }
            all.extend(block);
        }
        assert_eq!(all, data, "bit-identical roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_column_roundtrips_watermark_and_bitmap() {
        // Positions 0, 3, 7 valid (watermark 3 of 10), densely packed
        // into a single data block.
        let m = ColumnMeta {
            completed_records: 3,
            ..meta()
        };
        let ns = m.ns as usize;
        let mut filled = vec![false; m.nd as usize];
        for p in [0usize, 3, 7] {
            filled[p] = true;
        }
        let bits = coverage_from_filled(&filled);
        let mut full = vec![0.0f32; (m.nd * m.ns) as usize];
        for p in [0usize, 3, 7] {
            for t in 0..ns {
                full[p * ns + t] = (p * 10 + t) as f32;
            }
        }
        let packed = pack_rows(&full, &filled, ns);
        assert_eq!(packed.len(), 3 * ns, "only valid rows are stored");
        let dir = test_dir("partial");
        let path = dir.join("u3.part");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &packed, Some(&bits)).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones, covered) = read_meta(&mut f).unwrap();
        assert_eq!(read, m);
        assert!(!read.is_complete());
        assert_eq!(read.n_blocks(), 1, "3 packed rows at 4/block = 1 block");
        let covered = covered.expect("partial columns carry a bitmap");
        for (p, &f) in filled.iter().enumerate() {
            assert_eq!(coverage_covers(&covered, p), f, "position {p}");
        }
        // The rank table maps positions to packed rows; the stored rows
        // are bit-identical to the originals.
        let ranks = coverage_ranks(&covered, m.nd as usize);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[3], 1);
        assert_eq!(ranks[7], 2);
        let block = read_block(&mut f, &read, &zones, 0).unwrap();
        for p in [0usize, 3, 7] {
            let row = ranks[p] as usize;
            assert_eq!(
                &block[row * ns..(row + 1) * ns],
                &full[p * ns..(p + 1) * ns],
                "position {p}"
            );
        }
        // Corrupting the bitmap (set an extra bit) is detected: either
        // the checksum disagrees or the popcount/watermark check fires.
        let mut bytes = std::fs::read(&path).unwrap();
        let cov_offset = (HEADER_LEN + SCHEMA_LEN + ZONE_ENTRY_LEN + 4) as usize;
        bytes[cov_offset] ^= 0x02; // flip position 1
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watermark_past_record_count_is_corrupt() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("watermark");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None).unwrap();
        // Rewrite the schema with completed_records > nd and a valid CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        let bad = ColumnMeta {
            completed_records: m.nd + 1,
            ..m
        };
        bytes[HEADER_LEN as usize..(HEADER_LEN + SCHEMA_LEN) as usize]
            .copy_from_slice(&bad.to_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let err = read_meta(&mut f).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("watermark"), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_per_block() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("corrupt");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None).unwrap();
        // Flip one byte inside block 1's data region.
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = m.data_offset(1) as usize + 3;
        bytes[offset] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones, _) = read_meta(&mut f).unwrap();
        let err = read_block(&mut f, &read, &zones, 1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        // Untouched block 0 still verifies.
        assert!(read_block(&mut f, &read, &zones, 0).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_bad_magic_are_corrupt() {
        let m = meta();
        let data = column_data(&m);
        let dir = test_dir("trunc");
        let path = dir.join("u3.col");
        write_column_file(&path, &dir.join("u3.tmp"), &m, &data, None).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Truncate inside the last data block.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones, _) = read_meta(&mut f).unwrap();
        let last = read.n_blocks() - 1;
        assert!(matches!(
            read_block(&mut f, &read, &zones, last),
            Err(StoreError::Corrupt(_))
        ));
        // Truncate into the zone table.
        std::fs::write(&path, &bytes[..30]).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Bad magic.
        let mut evil = bytes.clone();
        evil[0] = b'X';
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        // Header checksum mismatch (flip flags without recomputing crc).
        let mut evil = bytes.clone();
        evil[10] ^= 1;
        std::fs::write(&path, &evil).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absurd_declared_shape_is_corrupt_not_a_giant_allocation() {
        // A schema whose CRC validates but declares nd huge must error
        // against the actual file length before sizing the zone table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let absurd = ColumnMeta {
            nd: 1 << 40,
            block_records: 1,
            completed_records: 1 << 40,
            ..meta()
        };
        bytes.extend_from_slice(&absurd.to_bytes());
        let dir = test_dir("absurd");
        let path = dir.join("u.col");
        std::fs::write(&path, &bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        let err = read_meta(&mut f).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("zone table"), "got {err}");
        // Overflow-sized shapes are caught too.
        let mut overflow_bytes = bytes[..HEADER_LEN as usize].to_vec();
        let overflow = ColumnMeta {
            nd: u64::MAX / 2,
            block_records: 1,
            completed_records: u64::MAX / 2,
            ..meta()
        };
        overflow_bytes.extend_from_slice(&overflow.to_bytes());
        std::fs::write(&path, &overflow_bytes).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_meta(&mut f), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_column_roundtrips() {
        let m = ColumnMeta {
            nd: 0,
            completed_records: 0,
            ..meta()
        };
        let dir = test_dir("empty");
        let path = dir.join("u.col");
        write_column_file(&path, &dir.join("u.tmp"), &m, &[], None).unwrap();
        let mut f = File::open(&path).unwrap();
        let (read, zones, covered) = read_meta(&mut f).unwrap();
        assert_eq!(read.n_blocks(), 0);
        assert!(zones.is_empty());
        assert!(covered.is_none(), "nd == 0 is complete by definition");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
