//! The behavior store: durable unit-behavior columns addressed by
//! content fingerprints, scanned through the buffer pool.
//!
//! On disk a store is a directory tree:
//!
//! ```text
//! <root>/<model_fp:016x>.<dataset_fp:016x>/u<unit>.col    complete column
//!                                          u<unit>.part   partial column
//! ```
//!
//! one column file per `(model fingerprint, dataset fingerprint, unit)`
//! key. A **complete** column (`u<unit>.col`) holds every record; a
//! **partial** column (`u<unit>.part`) holds the completed prefix of an
//! early-stopped streaming pass up to its watermark (see
//! [`crate::format`]) and is superseded — left for compaction to reclaim
//! — once a completed version lands beside it. Opening a store walks the
//! tree once into an in-memory index of available columns; writers update
//! the index as they commit. Column metadata (shape + zone table +
//! coverage) is cached after first validation so a warm scan touches the
//! filesystem only on buffer-pool misses.
//!
//! Corruption handling is fail-soft: a block whose checksum disagrees
//! surfaces a [`StoreError::Corrupt`] to the caller (who falls back to
//! live extraction) and the store **quarantines** the file — renames it
//! to a unique `*.corrupt.<pid>.<n>` name (collision-safe when one column
//! is quarantined repeatedly), drops it from the index and purges its
//! pool pages — so the next read-write pass re-materializes a clean copy.
//! Quarantined files are forensic samples, not live data;
//! [`BehaviorStore::compact`] deletes them past a retention budget,
//! together with stale temporaries and superseded partials.
//!
//! A store opened under [`MaterializationPolicy::ReadOnly`] never touches
//! the filesystem beyond reads: no directory creation, no temp-file
//! sweep, no quarantine renames, no compaction.

use crate::format::{self, coverage_covers, ColumnMeta};
use crate::pool::{BufferPool, PageKey};
use crate::{StoreError, StoreStats};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

/// What a store-configured session is allowed to do with the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MaterializationPolicy {
    /// The store is ignored entirely (scans and write-back both off).
    Off,
    /// Stored columns are scanned; nothing new is persisted and nothing
    /// on disk is created, renamed or deleted.
    ReadOnly,
    /// Stored columns are scanned and newly extracted columns are
    /// persisted at the end of a streamed pass (complete columns after a
    /// full stream, partial columns up to the watermark after an early
    /// stop).
    #[default]
    ReadWrite,
}

/// Store configuration (carried by `SessionConfig` in the core crate).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory of the store (created on open, unless read-only).
    pub path: PathBuf,
    /// Buffer-pool byte budget for decoded block pages.
    pub pool_bytes: usize,
    /// What the engine may do with the store.
    pub policy: MaterializationPolicy,
    /// Records per on-disk block (zone-map / checksum granularity) for
    /// newly written columns; existing files keep their own grid.
    pub block_records: usize,
    /// Write-back capture budget: a pass whose missing columns would
    /// buffer more than this many bytes skips materialization rather
    /// than balloon memory.
    pub writeback_limit_bytes: usize,
    /// Compaction retention budget for quarantined (`*.corrupt.*`)
    /// files: the newest files totalling up to this many bytes are kept
    /// as forensic samples, older ones are deleted by
    /// [`BehaviorStore::compact`].
    pub quarantine_retention_bytes: u64,
    /// Disk budget for *complete* column files: when their total size
    /// exceeds this, [`BehaviorStore::compact`] evicts the coldest
    /// columns (LRU by persisted access stamp — the on-disk analogue of
    /// the CLOCK pool's memory budget) until the rest fit. Evicted
    /// columns are healthy and re-materialize on the next read-write
    /// pass. `u64::MAX` (the default) disables eviction.
    pub disk_budget_bytes: u64,
}

impl StoreConfig {
    /// Configuration rooted at `path` with defaults: 64 MiB pool,
    /// read-write policy, 64-record blocks, 256 MiB write-back budget,
    /// 64 MiB quarantine retention, unbounded disk budget.
    pub fn at(path: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            path: path.into(),
            pool_bytes: 64 << 20,
            policy: MaterializationPolicy::ReadWrite,
            block_records: 64,
            writeback_limit_bytes: 256 << 20,
            quarantine_retention_bytes: 64 << 20,
            disk_budget_bytes: u64::MAX,
        }
    }
}

/// Key of one stored column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnKey {
    /// Model content fingerprint.
    pub model_fp: u64,
    /// Dataset content fingerprint.
    pub dataset_fp: u64,
    /// Hidden-unit index within the model.
    pub unit: usize,
}

/// Outcome of one column write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Data blocks written.
    pub blocks_written: usize,
    /// Pool evictions caused by populating the written blocks.
    pub pool_evictions: usize,
    /// Raw (uncompressed f32) size of the data region.
    pub raw_data_bytes: u64,
    /// Encoded size the data region actually occupies on disk.
    pub stored_data_bytes: u64,
}

/// Outcome of one [`BehaviorStore::compact`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Files deleted (expired quarantined files, stale temporaries,
    /// superseded partial columns).
    pub files_reclaimed: usize,
    /// Bytes those files occupied.
    pub bytes_reclaimed: u64,
    /// Healthy complete columns evicted to meet the disk budget (LRU by
    /// access stamp; see [`StoreConfig::disk_budget_bytes`]).
    pub columns_evicted: usize,
    /// Bytes those evictions returned to the filesystem.
    pub evicted_bytes: u64,
}

/// How old a temp file must be before open/compaction reaps it. A live
/// writer holds its temp for milliseconds (serialize + fsync + rename),
/// so anything this old belongs to a crashed writer; a younger foreign
/// temp may be an in-flight write of a concurrent process and is left
/// alone.
const TMP_REAP_AGE: std::time::Duration = std::time::Duration::from_secs(60);

/// Backoff schedule for transient IO errors on the scan path: an
/// operation failing with a retryable [`std::io::ErrorKind`] (interrupted
/// syscall, would-block, timeout — see [`StoreError::is_transient`]) is
/// re-attempted after each of these sleeps before the error surfaces.
/// Bounded: at most `len + 1` attempts, ~7ms of waiting total.
const IO_RETRY_BACKOFF: [std::time::Duration; 3] = [
    std::time::Duration::from_millis(1),
    std::time::Duration::from_millis(2),
    std::time::Duration::from_millis(4),
];

/// Runs `op`, retrying transient IO failures per [`IO_RETRY_BACKOFF`] and
/// counting each retry in `retries` (successful or not — the counter
/// measures how often the filesystem misbehaved, not how often we gave
/// up). Permanent IO errors and corruption surface immediately: retrying
/// wrong bytes cannot make them right.
fn retry_transient<T>(
    retries: &mut usize,
    mut op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    for backoff in IO_RETRY_BACKOFF {
        match op() {
            Err(e) if e.is_transient() => {
                *retries += 1;
                std::thread::sleep(backoff);
            }
            other => return other,
        }
    }
    op()
}

/// True when the file at `path` is older than the reap threshold (an
/// unreadable mtime counts as young — never delete what we cannot date).
fn older_than_reap_age(path: &Path) -> bool {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
        .is_some_and(|age| age > TMP_REAP_AGE)
}

/// Which file currently backs a column key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// `u<unit>.col` — every record valid.
    Complete,
    /// `u<unit>.part` — valid up to the watermark only.
    Partial,
}

/// Validated position coverage of one stored column: which record
/// positions hold real extractor output. Complete columns cover every
/// position; partial columns cover exactly the watermarked set.
#[derive(Debug, Clone)]
pub struct Coverage {
    nd: usize,
    completed: usize,
    /// `None` = complete (all positions valid).
    bits: Option<Arc<Vec<u8>>>,
}

impl Coverage {
    /// Total record positions in the column.
    pub fn nd(&self) -> usize {
        self.nd
    }

    /// The watermark: how many positions are valid.
    pub fn completed_records(&self) -> usize {
        self.completed
    }

    /// True when every position is valid.
    pub fn is_complete(&self) -> bool {
        self.completed == self.nd
    }

    /// Whether record position `pos` holds real data.
    pub fn covers(&self, pos: usize) -> bool {
        if pos >= self.nd {
            return false;
        }
        match &self.bits {
            None => true,
            Some(bits) => coverage_covers(bits, pos),
        }
    }

    /// Whether every position in `positions` holds real data.
    pub fn covers_all(&self, positions: &[usize]) -> bool {
        positions.iter().all(|&p| self.covers(p))
    }

    /// Whether every covered position is marked in `filled` — i.e. a
    /// column rebuilt from `filled` would lose nothing this coverage
    /// holds.
    pub fn is_subset_of_filled(&self, filled: &[bool]) -> bool {
        match &self.bits {
            None => filled.iter().take(self.nd).all(|&f| f),
            Some(bits) => (0..self.nd)
                .all(|p| !coverage_covers(bits, p) || filled.get(p).copied().unwrap_or(false)),
        }
    }
}

/// Validated column metadata: the parsed file (schema, zone table,
/// payload offsets) with the coverage bitmap lifted into an `Arc` for
/// cheap sharing, plus which file it was read from.
struct ColumnFileInfo {
    file: format::ColumnFile,
    covered: Option<Arc<Vec<u8>>>,
    /// Position → packed data row (rank among covered positions), for
    /// partial columns.
    ranks: Option<Vec<u32>>,
    disposition: Disposition,
}

type CachedInfo = Arc<ColumnFileInfo>;

/// An open behavior store (see the module docs).
pub struct BehaviorStore {
    root: PathBuf,
    block_records: usize,
    read_only: bool,
    /// Disk budget for complete columns, enforced by
    /// [`BehaviorStore::compact`] (see [`StoreConfig::disk_budget_bytes`]).
    disk_budget_bytes: u64,
    pool: BufferPool,
    index: Mutex<HashMap<ColumnKey, Disposition>>,
    /// Validated file info per column, filled on first scan.
    meta_cache: Mutex<HashMap<ColumnKey, CachedInfo>>,
    /// Columns this instance's disk-budget eviction deleted. Lets a later
    /// lookup fail with the typed [`StoreError::Evicted`] (re-extract)
    /// instead of a generic not-indexed error; cleared by the next write.
    evicted: Mutex<HashSet<ColumnKey>>,
    /// Uniquifies temp-file and quarantine names within this process.
    name_counter: AtomicU64,
    /// Materialized-view catalog at `<root>/views/`.
    views: crate::views::ViewCatalog,
}

/// Milliseconds since the Unix epoch, for access stamps. Saturates to 0
/// on a pre-epoch clock (such a stamp just reads as maximally cold).
fn now_stamp() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl BehaviorStore {
    /// Opens the store rooted at `config.path` and indexes the columns
    /// already on disk. A read-write store creates the root if missing
    /// and sweeps temporaries left by crashed writers; a read-only store
    /// performs no filesystem mutation at all (a missing root is simply
    /// an empty store).
    pub fn open(config: &StoreConfig) -> Result<Arc<BehaviorStore>, StoreError> {
        let read_only = config.policy == MaterializationPolicy::ReadOnly;
        if !read_only {
            std::fs::create_dir_all(&config.path)?;
        }
        let mut index = HashMap::new();
        let entries = match std::fs::read_dir(&config.path) {
            Ok(entries) => Some(entries),
            Err(e) if read_only && e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        for entry in entries.into_iter().flatten() {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Some((model_fp, dataset_fp)) = parse_pair_dir(&entry.file_name()) else {
                continue;
            };
            for col in std::fs::read_dir(entry.path())? {
                let col = col?;
                let name = col.file_name();
                if let Some((unit, disposition)) = parse_column_file(&name) {
                    let key = ColumnKey {
                        model_fp,
                        dataset_fp,
                        unit,
                    };
                    // A complete column always wins over a leftover
                    // partial of the same unit.
                    match index.get(&key) {
                        Some(Disposition::Complete) => {}
                        _ => {
                            index.insert(key, disposition);
                        }
                    }
                } else if !read_only
                    && name.to_str().is_some_and(|n| n.contains(".tmp."))
                    && older_than_reap_age(&col.path())
                {
                    // A writer died between create and rename: the temp
                    // file can never be read, so sweep it on open. Young
                    // temps may be in-flight writes of a concurrent
                    // process and are kept.
                    let _ = std::fs::remove_file(col.path());
                }
            }
        }
        Ok(Arc::new(BehaviorStore {
            root: config.path.clone(),
            block_records: config.block_records.max(1),
            read_only,
            disk_budget_bytes: config.disk_budget_bytes,
            pool: BufferPool::new(config.pool_bytes),
            index: Mutex::new(index),
            meta_cache: Mutex::new(HashMap::new()),
            evicted: Mutex::new(HashSet::new()),
            name_counter: AtomicU64::new(0),
            views: crate::views::ViewCatalog::open(&config.path, read_only),
        }))
    }

    /// The store's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// True when this store was opened read-only (no writes, renames or
    /// deletions ever touch the filesystem).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The materialized-view catalog at `<root>/views/`. Shared by every
    /// holder of this store handle (the server shares one store across
    /// all connections, so views are shared the same way).
    pub fn views(&self) -> &crate::views::ViewCatalog {
        &self.views
    }

    /// Number of indexed *complete* columns.
    pub fn columns(&self) -> usize {
        self.index
            .lock()
            .values()
            .filter(|d| **d == Disposition::Complete)
            .count()
    }

    /// Number of indexed partial columns.
    pub fn partial_columns(&self) -> usize {
        self.index
            .lock()
            .values()
            .filter(|d| **d == Disposition::Partial)
            .count()
    }

    /// True when a complete column is indexed (file present; contents are
    /// only validated when scanned).
    pub fn contains(&self, key: &ColumnKey) -> bool {
        self.index.lock().get(key) == Some(&Disposition::Complete)
    }

    /// The subset of `units` with an indexed *complete* column under
    /// `(model_fp, dataset_fp)`, in input order.
    pub fn available_units(&self, model_fp: u64, dataset_fp: u64, units: &[usize]) -> Vec<usize> {
        self.units_with(model_fp, dataset_fp, units, Disposition::Complete)
    }

    /// The subset of `units` with an indexed *partial* column (and no
    /// complete one) under `(model_fp, dataset_fp)`, in input order.
    pub fn partial_units(&self, model_fp: u64, dataset_fp: u64, units: &[usize]) -> Vec<usize> {
        self.units_with(model_fp, dataset_fp, units, Disposition::Partial)
    }

    fn units_with(
        &self,
        model_fp: u64,
        dataset_fp: u64,
        units: &[usize],
        want: Disposition,
    ) -> Vec<usize> {
        let index = self.index.lock();
        units
            .iter()
            .copied()
            .filter(|&unit| {
                index.get(&ColumnKey {
                    model_fp,
                    dataset_fp,
                    unit,
                }) == Some(&want)
            })
            .collect()
    }

    fn column_path(&self, key: &ColumnKey, disposition: Disposition) -> PathBuf {
        let file = match disposition {
            Disposition::Complete => format!("u{}.col", key.unit),
            Disposition::Partial => format!("u{}.part", key.unit),
        };
        self.root
            .join(format!("{:016x}.{:016x}", key.model_fp, key.dataset_fp))
            .join(file)
    }

    fn unique_suffix(&self) -> String {
        format!(
            "{}.{}",
            std::process::id(),
            self.name_counter.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Persists a complete column (`data.len() == nd * ns`, record-major)
    /// atomically and pushes its blocks through the pool so an immediate
    /// scan hits memory. Any partial file of the same key is superseded
    /// (reclaimed by the next [`BehaviorStore::compact`]).
    pub fn write_column(
        &self,
        key: &ColumnKey,
        nd: usize,
        ns: usize,
        data: &[f32],
    ) -> Result<WriteReport, StoreError> {
        self.write_column_inner(key, nd, ns, data, None)
    }

    /// Persists the completed prefix of an early-stopped pass: `data` is
    /// a full `nd * ns` buffer whose positions marked in `filled` hold
    /// real extractor output (the rest must be `0.0`). Writes a partial
    /// column with watermark `filled.count(true)`; a fully filled buffer
    /// is promoted to a complete column. An empty fill, or a key that
    /// already has a complete column, is a no-op.
    pub fn write_partial_column(
        &self,
        key: &ColumnKey,
        nd: usize,
        ns: usize,
        data: &[f32],
        filled: &[bool],
    ) -> Result<WriteReport, StoreError> {
        if filled.len() != nd {
            return Err(StoreError::Io(format!(
                "fill mask has {} entries for nd={nd}",
                filled.len()
            )));
        }
        let completed = filled.iter().filter(|&&f| f).count();
        if completed == nd {
            return self.write_column(key, nd, ns, data);
        }
        if completed == 0 {
            return Ok(WriteReport::default());
        }
        if self.read_only {
            return Err(StoreError::Io("store opened read-only".into()));
        }
        // Freshen this instance's view from the filesystem before
        // deciding: the index and meta cache are instance-local, and a
        // concurrent store instance may have created, extended or
        // completed this column since we last looked.
        self.meta_cache.lock().remove(key);
        if self.column_path(key, Disposition::Complete).exists() {
            self.index.lock().insert(*key, Disposition::Complete);
            return Ok(WriteReport::default());
        }
        if self.column_path(key, Disposition::Partial).exists() {
            {
                let mut index = self.index.lock();
                if index.get(key) != Some(&Disposition::Complete) {
                    index.insert(*key, Disposition::Partial);
                }
            }
            // Never shrink stored coverage: an existing partial whose
            // valid coverage is not strictly extended by this fill keeps
            // its file (a pass that transiently failed to read it — or
            // early-stopped sooner than a previous one — must not
            // replace a larger prefix with a smaller one). Only a
            // *provably corrupt* existing partial is junk that may be
            // overwritten; a transient I/O failure says nothing about
            // the file, so the write is refused too. (The decision is
            // made against freshly read metadata; a racing writer can
            // still slip between read and rename, which at worst loses
            // re-computable coverage, never correctness.)
            match self.coverage(key) {
                Ok(prior) => {
                    let extends =
                        prior.is_subset_of_filled(filled) && completed > prior.completed_records();
                    if !extends {
                        return Ok(WriteReport::default());
                    }
                }
                // A provably corrupt (or deliberately evicted) prior file
                // protects nothing; overwrite it.
                Err(StoreError::Corrupt(_)) | Err(StoreError::Evicted(_)) => {}
                Err(StoreError::Io(_)) | Err(StoreError::TransientIo(_)) => {
                    return Ok(WriteReport::default())
                }
            }
        }
        self.write_column_inner(key, nd, ns, data, Some(filled))
    }

    fn write_column_inner(
        &self,
        key: &ColumnKey,
        nd: usize,
        ns: usize,
        data: &[f32],
        filled: Option<&[bool]>,
    ) -> Result<WriteReport, StoreError> {
        if self.read_only {
            return Err(StoreError::Io("store opened read-only".into()));
        }
        if data.len() != nd * ns {
            return Err(StoreError::Io(format!(
                "column shape mismatch: {} values for nd={nd} ns={ns}",
                data.len()
            )));
        }
        let completed = match filled {
            Some(f) => f.iter().filter(|&&x| x).count(),
            None => nd,
        };
        let meta = ColumnMeta {
            model_fp: key.model_fp,
            dataset_fp: key.dataset_fp,
            unit: key.unit as u64,
            nd: nd as u64,
            ns: ns as u64,
            block_records: self.block_records as u64,
            completed_records: completed as u64,
        };
        let disposition = if filled.is_some() {
            Disposition::Partial
        } else {
            Disposition::Complete
        };
        let path = self.column_path(key, disposition);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", self.unique_suffix()));
        let bitmap = filled.map(format::coverage_from_filled);
        // Partial columns store only their valid rows, densely packed in
        // ascending position order (a warm resume then reads exactly the
        // prefix's bytes, not a mostly empty grid).
        let packed = filled.map(|f| format::pack_rows(data, f, ns));
        let stored: &[f32] = packed.as_deref().unwrap_or(data);
        let summary =
            format::write_column_file(&path, &tmp, &meta, stored, bitmap.as_deref(), now_stamp())?;
        // Refresh the caches (an overwrite replaces stale state), then
        // populate the pool with the written pages so an immediate scan
        // hits memory.
        self.pool
            .purge_column(key.model_fp, key.dataset_fp, key.unit as u64);
        let mut pool_evictions = 0;
        for b in 0..meta.n_blocks() {
            let rows = meta.rows_in_block(b);
            let start = b * self.block_records * ns;
            pool_evictions += self
                .pool
                .insert(page_key(key, b), stored[start..start + rows * ns].to_vec());
        }
        self.meta_cache.lock().remove(key);
        // A fresh write resurrects a disk-budget-evicted column.
        self.evicted.lock().remove(key);
        let mut index = self.index.lock();
        // Never let a partial write demote an indexed complete column.
        match (disposition, index.get(key)) {
            (Disposition::Partial, Some(Disposition::Complete)) => {}
            _ => {
                index.insert(*key, disposition);
            }
        }
        Ok(WriteReport {
            blocks_written: summary.n_blocks,
            pool_evictions,
            raw_data_bytes: summary.raw_data_bytes,
            stored_data_bytes: summary.stored_data_bytes,
        })
    }

    /// Validated file info for a column, cached after the first read. A
    /// cache miss on a read-write store also freshens the file's
    /// persisted access stamp (best-effort, v3 files only) so disk-budget
    /// eviction sees recently scanned columns as warm.
    fn column_info(&self, key: &ColumnKey) -> Result<CachedInfo, StoreError> {
        if let Some(info) = self.meta_cache.lock().get(key) {
            return Ok(Arc::clone(info));
        }
        let Some(disposition) = self.index.lock().get(key).copied() else {
            if self.evicted.lock().contains(key) {
                return Err(StoreError::Evicted(format!(
                    "unit {} was deleted by disk-budget eviction",
                    key.unit
                )));
            }
            return Err(StoreError::Io(format!("unit {} is not indexed", key.unit)));
        };
        let path = self.column_path(key, disposition);
        let mut file = File::open(&path)?;
        let mut parsed = format::read_meta(&mut file)?;
        // The file's own watermark decides completeness; the index only
        // remembers which path to open.
        if disposition == Disposition::Partial && parsed.meta.is_complete() {
            return Err(StoreError::Corrupt(
                "partial file declares a full watermark".into(),
            ));
        }
        if !self.read_only {
            // Failure to bump the stamp never fails the read — the
            // column just stays cold in the eviction order.
            let _ = format::write_access_stamp(&path, now_stamp());
        }
        let covered = parsed.covered.take().map(Arc::new);
        let ranks = covered
            .as_ref()
            .map(|bits| format::coverage_ranks(bits, parsed.meta.nd as usize));
        let parsed = Arc::new(ColumnFileInfo {
            file: parsed,
            covered,
            ranks,
            disposition,
        });
        self.meta_cache
            .lock()
            .entry(*key)
            .or_insert_with(|| Arc::clone(&parsed));
        Ok(parsed)
    }

    /// How many of a column's blocks a pruned scan could serve from the
    /// zone map alone, as `(prunable, total)`. `None` when the column is
    /// not indexed or fails validation — pruning estimates are advisory,
    /// so errors are swallowed here and surface on the real scan.
    pub fn zone_summary(&self, key: &ColumnKey) -> Option<(usize, usize)> {
        let info = self.column_info(key).ok()?;
        Some((info.file.prunable_blocks(), info.file.meta.n_blocks()))
    }

    /// The validated position coverage of a column: complete columns
    /// cover everything, partial columns exactly their watermarked set.
    /// Reads (and caches) the file metadata; any validation failure is
    /// the usual [`StoreError::Corrupt`].
    pub fn coverage(&self, key: &ColumnKey) -> Result<Coverage, StoreError> {
        let info = self.column_info(key)?;
        Ok(Coverage {
            nd: info.file.meta.nd as usize,
            completed: info.file.meta.completed_records as usize,
            bits: info.covered.clone(),
        })
    }

    /// Scans one column for the given record positions, writing the `ns`
    /// values of position `positions[i]` into
    /// `out[(i * ns + t) * stride + col]` — i.e. straight into column
    /// `col` of a row-major `(positions.len() * ns) x stride` matrix.
    /// Pages are fetched (and their checksums verified) through the pool;
    /// `stats` receives the per-call page accounting (`blocks_read`,
    /// pool hit/miss/eviction counters — `columns_scanned` is per-pass
    /// and counted by the caller). Every requested position must be
    /// covered by the column's watermark: serving a position a partial
    /// column never filled would be a silent wrong score, so it is
    /// refused as corruption.
    ///
    /// With `prune` set, blocks whose zone entry proves their exact
    /// contents — a finite `Constant` block is `zone.min` repeated — are
    /// reconstructed from the (CRC-protected) zone table without reading
    /// or checksumming their payload, counted in `stats.blocks_pruned`.
    /// The reconstruction is bit-exact, so pruned and unpruned scans
    /// return identical bytes; blocks flagged `has_non_finite` never
    /// qualify (their zone statistics cannot speak for NaN/Inf values),
    /// and v2 files never prune at all.
    ///
    /// A validation failure is retried **once** against freshly read
    /// metadata (cached info and pooled pages dropped first): a
    /// concurrent store instance may have extended a partial column in
    /// place (atomic rename onto the same path repacks the rows), which
    /// makes this instance's cached zone table stale — that is a valid
    /// newer file, not corruption. Only a failure against the file's
    /// current bytes surfaces as [`StoreError::Corrupt`].
    #[allow(clippy::too_many_arguments)] // a scan is genuinely this wide
    pub fn scan_into(
        &self,
        key: &ColumnKey,
        nd: usize,
        ns: usize,
        positions: &[usize],
        out: &mut [f32],
        stride: usize,
        col: usize,
        prune: bool,
        stats: &mut StoreStats,
    ) -> Result<(), StoreError> {
        match self.scan_attempt(key, nd, ns, positions, out, stride, col, prune, stats) {
            Err(StoreError::Corrupt(_)) => {
                self.meta_cache.lock().remove(key);
                self.pool
                    .purge_column(key.model_fp, key.dataset_fp, key.unit as u64);
                self.scan_attempt(key, nd, ns, positions, out, stride, col, prune, stats)
            }
            other => other,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_attempt(
        &self,
        key: &ColumnKey,
        nd: usize,
        ns: usize,
        positions: &[usize],
        out: &mut [f32],
        stride: usize,
        col: usize,
        prune: bool,
        stats: &mut StoreStats,
    ) -> Result<(), StoreError> {
        let cached = retry_transient(&mut stats.io_retries, || self.column_info(key))?;
        let meta = &cached.file.meta;
        let zones = &cached.file.zones;
        if meta.nd != nd as u64 || meta.ns != ns as u64 {
            return Err(StoreError::Corrupt(format!(
                "stored shape (nd={}, ns={}) disagrees with dataset (nd={nd}, ns={ns})",
                meta.nd, meta.ns
            )));
        }
        // Pin each distinct page once for the whole call (positions are
        // shuffled, so consecutive positions land on arbitrary blocks);
        // the pins drop together when `pages` goes out of scope. Pruned
        // blocks are counted once per call the same way.
        let mut pages: Vec<Option<crate::pool::PinnedPage<'_>>> =
            (0..meta.n_blocks()).map(|_| None).collect();
        let mut pruned_counted = vec![false; meta.n_blocks()];
        for (i, &pos) in positions.iter().enumerate() {
            if pos >= nd {
                return Err(StoreError::Corrupt(format!(
                    "record position {pos} out of range (nd={nd})"
                )));
            }
            if let Some(bits) = &cached.covered {
                if !coverage_covers(bits, pos) {
                    return Err(StoreError::Corrupt(format!(
                        "record position {pos} is past the column's watermark \
                         ({} of {nd} records completed)",
                        meta.completed_records
                    )));
                }
            }
            // A partial column stores its valid rows densely packed: the
            // position's data row is its rank among covered positions.
            let row = match &cached.ranks {
                Some(ranks) => ranks[pos] as usize,
                None => pos,
            };
            let b = meta.block_of(row);
            if prune {
                // Predicate pushdown: the zone entry of a finite constant
                // block determines every value in it, so the block is
                // served without touching its payload (no read, no
                // checksum, no pool traffic). `constant_value` is `None`
                // for non-finite-flagged blocks and all v2 zones.
                if let Some(v) = zones[b].constant_value() {
                    if !pruned_counted[b] {
                        pruned_counted[b] = true;
                        stats.blocks_pruned += 1;
                    }
                    for t in 0..ns {
                        out[(i * ns + t) * stride + col] = v;
                    }
                    continue;
                }
            }
            if pages[b].is_none() {
                let page = retry_transient(&mut stats.io_retries, || {
                    self.pool.get(page_key(key, b), || {
                        let mut file = File::open(self.column_path(key, cached.disposition))?;
                        format::read_block(&mut file, &cached.file, b)
                    })
                })?;
                stats.blocks_read += 1;
                if page.hit {
                    stats.pool_hits += 1;
                } else {
                    stats.pool_misses += 1;
                }
                stats.pool_evictions += page.evictions;
                pages[b] = Some(page);
            }
            let page = pages[b].as_ref().expect("pinned above");
            let local = row - b * meta.block_records as usize;
            let values = &page[local * ns..(local + 1) * ns];
            for (t, &v) in values.iter().enumerate() {
                out[(i * ns + t) * stride + col] = v;
            }
        }
        Ok(())
    }

    /// Quarantines a column that failed validation: renames the file to a
    /// unique `*.corrupt.<pid>.<n>` name (so repeated quarantines of one
    /// column never collide or overwrite an earlier sample), drops it
    /// from the index and purges its pool pages. The next read-write pass
    /// re-materializes it from live extraction. No-op on a read-only
    /// store.
    pub fn quarantine(&self, key: &ColumnKey) {
        if self.read_only {
            return;
        }
        let disposition = self.index.lock().remove(key);
        self.meta_cache.lock().remove(key);
        self.pool
            .purge_column(key.model_fp, key.dataset_fp, key.unit as u64);
        let dispositions = match disposition {
            Some(d) => vec![d],
            // Not indexed (e.g. already quarantined by a racing pass):
            // move aside whichever files exist.
            None => vec![Disposition::Complete, Disposition::Partial],
        };
        for d in dispositions {
            let path = self.column_path(key, d);
            if !path.exists() {
                continue;
            }
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("column")
                .to_string();
            let target = path.with_file_name(format!("{name}.corrupt.{}", self.unique_suffix()));
            let _ = std::fs::rename(&path, &target);
        }
    }

    /// Reclaims disk space the store no longer needs: stale temporaries
    /// left by *other* (crashed) processes, partial columns superseded by
    /// a completed version, and quarantined files past the retention
    /// budget (the newest quarantined files totalling up to
    /// `quarantine_retention_bytes` are kept as forensic samples). When
    /// the complete columns together exceed
    /// [`StoreConfig::disk_budget_bytes`], the coldest of them (LRU by
    /// persisted access stamp; v2 files without a stamp count as coldest)
    /// are evicted until the rest fit — except columns whose pages a
    /// concurrent scan currently holds pinned, which are never deleted
    /// out from under the scan. No-op on a read-only store.
    pub fn compact(&self, quarantine_retention_bytes: u64) -> CompactionReport {
        let mut report = CompactionReport::default();
        if self.read_only {
            return report;
        }
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return report;
        };
        let mut quarantined: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        let my_pid = std::process::id();
        for entry in entries.flatten() {
            if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                continue;
            }
            let Some((model_fp, dataset_fp)) = parse_pair_dir(&entry.file_name()) else {
                continue;
            };
            let Ok(cols) = std::fs::read_dir(entry.path()) else {
                continue;
            };
            for col in cols.flatten() {
                let path = col.path();
                let Some(name) = col.file_name().to_str().map(str::to_string) else {
                    continue;
                };
                let len = col.metadata().map(|m| m.len()).unwrap_or(0);
                if name.contains(".corrupt") {
                    let modified = col
                        .metadata()
                        .and_then(|m| m.modified())
                        .unwrap_or(SystemTime::UNIX_EPOCH);
                    quarantined.push((path, len, modified));
                } else if let Some(pid) = tmp_file_pid(&name) {
                    // A stale temporary of a crashed writer can never be
                    // renamed into place. Our own temps may be in-flight
                    // (the writer holds them only briefly), and a young
                    // foreign temp may belong to a live concurrent
                    // process — only provably abandoned files go.
                    if pid != my_pid
                        && older_than_reap_age(&path)
                        && std::fs::remove_file(&path).is_ok()
                    {
                        report.files_reclaimed += 1;
                        report.bytes_reclaimed += len;
                    }
                } else if let Some((unit, Disposition::Partial)) =
                    parse_column_file(&col.file_name())
                {
                    // A partial column beside (or indexed behind) a
                    // completed version is superseded.
                    let key = ColumnKey {
                        model_fp,
                        dataset_fp,
                        unit,
                    };
                    let superseded = self.index.lock().get(&key) == Some(&Disposition::Complete);
                    if superseded && std::fs::remove_file(&path).is_ok() {
                        report.files_reclaimed += 1;
                        report.bytes_reclaimed += len;
                    }
                }
            }
            // Pair directories are deliberately left in place even when
            // empty: removing one here races a concurrent writer's
            // create_dir_all → File::create window and would fail its
            // write-back. An empty directory costs nothing and is reused
            // by the next write.
        }
        // Quarantine retention: keep the newest files within the budget.
        quarantined.sort_by_key(|q| std::cmp::Reverse(q.2));
        let mut kept: u64 = 0;
        for (path, len, _) in quarantined {
            if kept + len <= quarantine_retention_bytes {
                kept += len;
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                report.files_reclaimed += 1;
                report.bytes_reclaimed += len;
            }
        }
        self.enforce_disk_budget(&mut report);
        report
    }

    /// Evicts cold complete columns until the survivors fit the disk
    /// budget (the compaction leg of [`StoreConfig::disk_budget_bytes`]).
    fn enforce_disk_budget(&self, report: &mut CompactionReport) {
        if self.disk_budget_bytes == u64::MAX {
            return;
        }
        // Snapshot the complete columns with size and persisted access
        // stamp. Stamps are read fresh from disk (not the meta cache):
        // another store instance over the same path may have scanned —
        // and stamped — a column this instance never touched.
        let keys: Vec<ColumnKey> = self
            .index
            .lock()
            .iter()
            .filter(|(_, d)| **d == Disposition::Complete)
            .map(|(k, _)| *k)
            .collect();
        let mut columns: Vec<(ColumnKey, PathBuf, u64, u64)> = Vec::with_capacity(keys.len());
        let mut total: u64 = 0;
        for key in keys {
            let path = self.column_path(&key, Disposition::Complete);
            let Ok(len) = std::fs::metadata(&path).map(|m| m.len()) else {
                continue;
            };
            let stamp = format::read_access_stamp(&path).ok().flatten().unwrap_or(0);
            total += len;
            columns.push((key, path, len, stamp));
        }
        if total <= self.disk_budget_bytes {
            return;
        }
        // Coldest first; ties break on the path for determinism.
        columns.sort_by(|a, b| a.3.cmp(&b.3).then_with(|| a.1.cmp(&b.1)));
        for (key, path, len, _) in columns {
            if total <= self.disk_budget_bytes {
                break;
            }
            // Never delete a column a concurrent scan holds pinned: the
            // scan would read a dead path and misreport it as corruption.
            // A pinned column simply survives this sweep (it is warm by
            // definition) and the next-coldest is considered instead.
            if self
                .pool
                .column_pinned(key.model_fp, key.dataset_fp, key.unit as u64)
            {
                continue;
            }
            // De-index before deleting so a racing scan resolves to the
            // typed `Evicted` error, not a dangling open.
            self.index.lock().remove(&key);
            self.meta_cache.lock().remove(&key);
            self.evicted.lock().insert(key);
            self.pool
                .purge_column(key.model_fp, key.dataset_fp, key.unit as u64);
            if std::fs::remove_file(&path).is_ok() {
                report.columns_evicted += 1;
                report.evicted_bytes += len;
                total -= len;
            } else {
                // Deletion failed (e.g. a racing external delete): the
                // column is gone either way; keep the evicted marker so
                // lookups stay typed, but claim no reclaimed bytes.
                total = total.saturating_sub(len);
            }
        }
    }
}

fn page_key(key: &ColumnKey, block: usize) -> PageKey {
    PageKey {
        model_fp: key.model_fp,
        dataset_fp: key.dataset_fp,
        unit: key.unit as u64,
        block: block as u32,
    }
}

fn parse_pair_dir(name: &std::ffi::OsStr) -> Option<(u64, u64)> {
    let name = name.to_str()?;
    let (model, dataset) = name.split_once('.')?;
    Some((
        u64::from_str_radix(model, 16).ok()?,
        u64::from_str_radix(dataset, 16).ok()?,
    ))
}

fn parse_column_file(name: &std::ffi::OsStr) -> Option<(usize, Disposition)> {
    let name = name.to_str()?;
    let stem = name.strip_prefix('u')?;
    if let Some(unit) = stem.strip_suffix(".col") {
        return Some((unit.parse().ok()?, Disposition::Complete));
    }
    if let Some(unit) = stem.strip_suffix(".part") {
        return Some((unit.parse().ok()?, Disposition::Partial));
    }
    None
}

/// The process id embedded in a temp-file name (`*.tmp.<pid>.<n>`), if
/// the name is a temp file.
fn tmp_file_pid(name: &str) -> Option<u32> {
    let (_, suffix) = name.split_once(".tmp.")?;
    let (pid, _) = suffix.split_once('.')?;
    pid.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_store(name: &str, pool_bytes: usize) -> (Arc<BehaviorStore>, PathBuf) {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-store-tests")
            .join(format!("store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = StoreConfig::at(&dir);
        config.pool_bytes = pool_bytes;
        config.block_records = 4;
        (BehaviorStore::open(&config).unwrap(), dir)
    }

    fn key(unit: usize) -> ColumnKey {
        ColumnKey {
            model_fp: 0x11,
            dataset_fp: 0x22,
            unit,
        }
    }

    fn column(nd: usize, ns: usize, unit: usize) -> Vec<f32> {
        (0..nd * ns)
            .map(|i| (i * 7 + unit * 1000) as f32 * 0.25)
            .collect()
    }

    /// Backdates a file past the temp-reap threshold (simulating a
    /// crashed writer from long ago).
    fn age_file(path: &Path) {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .unwrap()
            .set_modified(SystemTime::now() - 2 * TMP_REAP_AGE)
            .unwrap();
    }

    #[test]
    fn transient_io_is_retried_with_bounded_backoff() {
        // Two transient failures, then success: the value comes through
        // and both retries are counted.
        let mut retries = 0;
        let mut failures = 2;
        let out = retry_transient(&mut retries, || {
            if failures > 0 {
                failures -= 1;
                return Err(StoreError::TransientIo("EINTR".into()));
            }
            Ok(42)
        });
        assert_eq!(out, Ok(42));
        assert_eq!(retries, 2);

        // A persistently transient error surfaces after the full backoff
        // schedule is spent; the final attempt's error comes through.
        let mut retries = 0;
        let mut attempts = 0;
        let out: Result<(), StoreError> = retry_transient(&mut retries, || {
            attempts += 1;
            Err(StoreError::TransientIo("still busy".into()))
        });
        assert_eq!(out, Err(StoreError::TransientIo("still busy".into())));
        assert_eq!(retries, IO_RETRY_BACKOFF.len());
        assert_eq!(attempts, IO_RETRY_BACKOFF.len() + 1);

        // Permanent errors surface immediately: no retries, one attempt.
        for err in [
            StoreError::Io("gone".into()),
            StoreError::Corrupt("bad crc".into()),
        ] {
            let mut retries = 0;
            let mut attempts = 0;
            let out: Result<(), StoreError> = retry_transient(&mut retries, || {
                attempts += 1;
                Err(err.clone())
            });
            assert_eq!(out, Err(err));
            assert_eq!(retries, 0);
            assert_eq!(attempts, 1);
        }
    }

    #[test]
    fn io_error_kinds_classify_transient_vs_permanent() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
        ] {
            let e = StoreError::from(Error::new(kind, "flaky"));
            assert!(e.is_transient(), "{kind:?} must classify transient");
        }
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::UnexpectedEof,
        ] {
            let e = StoreError::from(Error::new(kind, "broken"));
            assert!(!e.is_transient(), "{kind:?} must classify permanent");
        }
        assert!(!StoreError::Corrupt("x".into()).is_transient());
    }

    #[test]
    fn write_scan_roundtrip_in_shuffled_order() {
        let (store, dir) = test_store("roundtrip", 1 << 20);
        let (nd, ns) = (10, 3);
        let data = column(nd, ns, 0);
        store.write_column(&key(0), nd, ns, &data).unwrap();
        assert!(store.contains(&key(0)));
        // Scan positions out of order into column 1 of a stride-2 buffer.
        let positions = [7, 0, 9, 3];
        let mut out = vec![0.0f32; positions.len() * ns * 2];
        let mut stats = StoreStats::default();
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                2,
                1,
                true,
                &mut stats,
            )
            .unwrap();
        for (i, &pos) in positions.iter().enumerate() {
            for t in 0..ns {
                assert_eq!(out[(i * ns + t) * 2 + 1], data[pos * ns + t]);
                assert_eq!(out[(i * ns + t) * 2], 0.0, "other column untouched");
            }
        }
        // Positions 7,0,9,3 at 4 records/block touch blocks {0, 1, 2},
        // each pinned exactly once for the whole call.
        assert_eq!(stats.blocks_read, 3);
        // Write populated the pool, so every fetch hit memory.
        assert_eq!(stats.pool_hits, 3);
        assert_eq!(stats.pool_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_indexes_existing_columns_and_reads_from_disk() {
        let (store, dir) = test_store("reopen", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(2), nd, ns, &column(nd, ns, 2))
            .unwrap();
        store
            .write_column(&key(5), nd, ns, &column(nd, ns, 5))
            .unwrap();
        drop(store);
        // Fresh process semantics: reopen from disk.
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        assert_eq!(store.columns(), 2);
        assert_eq!(store.available_units(0x11, 0x22, &[0, 2, 5, 9]), vec![2, 5]);
        assert_eq!(
            store.available_units(0x99, 0x22, &[2, 5]),
            Vec::<usize>::new()
        );
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        let positions: Vec<usize> = (0..nd).collect();
        store
            .scan_into(
                &key(5),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, column(nd, ns, 5), "bit-identical across reopen");
        assert!(stats.pool_misses > 0, "cold pool reads from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_write_scan_and_completion_lifecycle() {
        let (store, dir) = test_store("partial", 1 << 20);
        let (nd, ns) = (12, 2);
        let data = column(nd, ns, 0);
        // Fill positions 0..8 (blocks 0 and 1 fully valid, block 2 empty).
        let mut partial = vec![0.0f32; nd * ns];
        partial[..8 * ns].copy_from_slice(&data[..8 * ns]);
        let mut filled = vec![false; nd];
        filled[..8].fill(true);
        store
            .write_partial_column(&key(0), nd, ns, &partial, &filled)
            .unwrap();
        assert!(!store.contains(&key(0)), "partial is not a complete hit");
        assert_eq!(store.partial_units(0x11, 0x22, &[0, 1]), vec![0]);
        assert_eq!(store.partial_columns(), 1);
        let cov = store.coverage(&key(0)).unwrap();
        assert_eq!(cov.completed_records(), 8);
        assert!(cov.covers_all(&[0, 3, 7]));
        assert!(!cov.covers(8));
        // Covered positions scan bit-identically...
        let positions: Vec<usize> = (0..8).collect();
        let mut out = vec![0.0f32; 8 * ns];
        let mut stats = StoreStats::default();
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, &data[..8 * ns]);
        // ...and a position past the watermark is refused, never served.
        let err = store
            .scan_into(&key(0), nd, ns, &[9], &mut out, 1, 0, true, &mut stats)
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("watermark"), "got {err}");
        // Reopen sees the partial from disk.
        drop(store);
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        assert_eq!(store.partial_units(0x11, 0x22, &[0]), vec![0]);
        // Completing the column supersedes the partial: complete file
        // indexed, partial file still on disk until compaction reclaims.
        store.write_column(&key(0), nd, ns, &data).unwrap();
        assert!(store.contains(&key(0)));
        assert_eq!(store.partial_units(0x11, 0x22, &[0]), Vec::<usize>::new());
        let part_path = store.column_path(&key(0), Disposition::Partial);
        assert!(part_path.exists(), "superseded partial awaits compaction");
        let report = store.compact(u64::MAX);
        assert_eq!(report.files_reclaimed, 1);
        assert!(report.bytes_reclaimed > 0);
        assert!(!part_path.exists(), "compaction reclaimed it");
        // The complete column still scans.
        let positions: Vec<usize> = (0..nd).collect();
        let mut out = vec![0.0f32; nd * ns];
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_writes_never_shrink_stored_coverage() {
        let (store, dir) = test_store("partial-shrink", 1 << 20);
        let (nd, ns) = (12, 2);
        let data = column(nd, ns, 0);
        let fill = |positions: &[usize]| {
            let mut filled = vec![false; nd];
            let mut col = vec![0.0f32; nd * ns];
            for &p in positions {
                filled[p] = true;
                col[p * ns..(p + 1) * ns].copy_from_slice(&data[p * ns..(p + 1) * ns]);
            }
            (col, filled)
        };
        let (col8, filled8) = fill(&(0..8).collect::<Vec<_>>());
        store
            .write_partial_column(&key(0), nd, ns, &col8, &filled8)
            .unwrap();
        assert_eq!(store.coverage(&key(0)).unwrap().completed_records(), 8);
        // A smaller prefix (an earlier early stop) is refused...
        let (col4, filled4) = fill(&(0..4).collect::<Vec<_>>());
        let report = store
            .write_partial_column(&key(0), nd, ns, &col4, &filled4)
            .unwrap();
        assert_eq!(report, WriteReport::default());
        assert_eq!(store.coverage(&key(0)).unwrap().completed_records(), 8);
        // ...as is a disjoint fill that would lose covered positions...
        let (col_d, filled_d) = fill(&[8, 9, 10, 11]);
        store
            .write_partial_column(&key(0), nd, ns, &col_d, &filled_d)
            .unwrap();
        assert_eq!(store.coverage(&key(0)).unwrap().completed_records(), 8);
        // ...while a strict extension goes through.
        let (col10, filled10) = fill(&(0..10).collect::<Vec<_>>());
        let report = store
            .write_partial_column(&key(0), nd, ns, &col10, &filled10)
            .unwrap();
        assert!(report.blocks_written > 0);
        assert_eq!(store.coverage(&key(0)).unwrap().completed_records(), 10);
        let mut out = vec![0.0f32; 10 * ns];
        let mut stats = StoreStats::default();
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &(0..10).collect::<Vec<_>>(),
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, &data[..10 * ns]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_partial_extension_revalidates_instead_of_false_corruption() {
        // Two store instances over one path: B extends a partial column
        // in place (rename onto the same file repacks the rows), which
        // makes A's cached zone table stale. A's next pool-missing scan
        // must revalidate against the new file and serve correct values
        // — never report the valid newer file as corrupt.
        let (a, dir) = test_store("concurrent-extend", 32); // tiny pool: pages evict at once
        let (nd, ns) = (12, 2);
        let data = column(nd, ns, 0);
        let fill = |positions: &[usize]| {
            let mut filled = vec![false; nd];
            let mut col = vec![0.0f32; nd * ns];
            for &p in positions {
                filled[p] = true;
                col[p * ns..(p + 1) * ns].copy_from_slice(&data[p * ns..(p + 1) * ns]);
            }
            (col, filled)
        };
        // Scattered coverage so the extension changes every row's rank.
        let (col_a, filled_a) = fill(&[1, 5, 9]);
        a.write_partial_column(&key(0), nd, ns, &col_a, &filled_a)
            .unwrap();
        let mut out = vec![0.0f32; 3 * ns];
        let mut stats = StoreStats::default();
        a.scan_into(
            &key(0),
            nd,
            ns,
            &[1, 5, 9],
            &mut out,
            1,
            0,
            true,
            &mut stats,
        )
        .unwrap(); // caches A's meta/ranks; tiny pool evicts the page
        let b = BehaviorStore::open(&StoreConfig {
            pool_bytes: 32,
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        let (col_b, filled_b) = fill(&[0, 1, 4, 5, 8, 9]);
        b.write_partial_column(&key(0), nd, ns, &col_b, &filled_b)
            .unwrap();
        assert_eq!(b.coverage(&key(0)).unwrap().completed_records(), 6);
        // A scans through its stale cache: must succeed bit-identically.
        let mut out = vec![0.0f32; 3 * ns];
        a.scan_into(
            &key(0),
            nd,
            ns,
            &[1, 5, 9],
            &mut out,
            1,
            0,
            true,
            &mut stats,
        )
        .unwrap();
        for (i, &pos) in [1usize, 5, 9].iter().enumerate() {
            assert_eq!(
                &out[i * ns..(i + 1) * ns],
                &data[pos * ns..(pos + 1) * ns],
                "position {pos} after concurrent extension"
            );
        }
        // And A now sees the extended coverage on a fresh read.
        let mut out = vec![0.0f32; 6 * ns];
        a.scan_into(
            &key(0),
            nd,
            ns,
            &[0, 1, 4, 5, 8, 9],
            &mut out,
            1,
            0,
            true,
            &mut stats,
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_redundant_partial_writes_are_no_ops() {
        let (store, dir) = test_store("partial-noop", 1 << 20);
        let (nd, ns) = (8, 2);
        let data = column(nd, ns, 0);
        // Nothing filled: no file.
        let report = store
            .write_partial_column(&key(0), nd, ns, &vec![0.0; nd * ns], &vec![false; nd])
            .unwrap();
        assert_eq!(report, WriteReport::default());
        assert_eq!(store.partial_columns(), 0);
        // Everything filled: promoted to a complete column.
        let report = store
            .write_partial_column(&key(0), nd, ns, &data, &vec![true; nd])
            .unwrap();
        assert!(report.blocks_written > 0);
        assert!(store.contains(&key(0)));
        assert_eq!(store.partial_columns(), 0);
        // A partial write under an existing complete column is dropped.
        let report = store
            .write_partial_column(&key(0), nd, ns, &data, &{
                let mut f = vec![false; nd];
                f[0] = true;
                f
            })
            .unwrap();
        assert_eq!(report, WriteReport::default());
        assert!(store.contains(&key(0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_column_errors_and_quarantine_self_heals() {
        let (store, dir) = test_store("quarantine", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        drop(store);
        // Corrupt a data byte on disk, then reopen cold.
        let path = dir.join("0000000000000011.0000000000000022").join("u0.col");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        let positions: Vec<usize> = (0..nd).collect();
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        let err = store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        store.quarantine(&key(0));
        assert!(!store.contains(&key(0)));
        assert_eq!(quarantined_files(&dir).len(), 1);
        assert!(!path.exists());
        // Re-materializing writes a clean copy that scans again.
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, column(nd, ns, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn quarantined_files(dir: &Path) -> Vec<PathBuf> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(dir).unwrap().flatten() {
            if !entry.file_type().unwrap().is_dir() {
                continue;
            }
            for col in std::fs::read_dir(entry.path()).unwrap().flatten() {
                if col.file_name().to_str().unwrap().contains(".corrupt") {
                    found.push(col.path());
                }
            }
        }
        found
    }

    #[test]
    fn repeated_quarantines_of_one_column_never_collide() {
        let (store, dir) = test_store("quarantine-twice", 1 << 20);
        let (nd, ns) = (8, 2);
        for round in 0..3 {
            store
                .write_column(&key(0), nd, ns, &column(nd, ns, 0))
                .unwrap();
            store.quarantine(&key(0));
            assert!(!store.contains(&key(0)));
            assert_eq!(
                quarantined_files(&dir).len(),
                round + 1,
                "every quarantine keeps its own sample"
            );
        }
        // Compaction with a zero retention budget deletes all samples.
        let report = store.compact(0);
        assert_eq!(report.files_reclaimed, 3);
        assert!(report.bytes_reclaimed > 0);
        assert!(quarantined_files(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_respects_the_quarantine_retention_budget() {
        let (store, dir) = test_store("retention", 1 << 20);
        let (nd, ns) = (8, 2);
        // Three quarantined samples of equal size.
        for _ in 0..3 {
            store
                .write_column(&key(0), nd, ns, &column(nd, ns, 0))
                .unwrap();
            store.quarantine(&key(0));
        }
        let files = quarantined_files(&dir);
        assert_eq!(files.len(), 3);
        let each = std::fs::metadata(&files[0]).unwrap().len();
        // Budget for two files: the oldest one goes.
        let report = store.compact(2 * each);
        assert_eq!(report.files_reclaimed, 1);
        assert_eq!(report.bytes_reclaimed, each);
        assert_eq!(quarantined_files(&dir).len(), 2);
        // A huge budget deletes nothing further.
        let report = store.compact(u64::MAX);
        assert_eq!(report, CompactionReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_sweeps_foreign_tmp_files_only() {
        let (store, dir) = test_store("tmp-compact", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        let pair = dir.join("0000000000000011.0000000000000022");
        let foreign_stale = pair.join("u7.tmp.99999.0");
        std::fs::write(&foreign_stale, b"half-written").unwrap();
        age_file(&foreign_stale);
        let foreign_fresh = pair.join("u9.tmp.99999.1");
        std::fs::write(&foreign_fresh, b"mid-write").unwrap();
        let mine = pair.join(format!("u8.tmp.{}.77", std::process::id()));
        std::fs::write(&mine, b"in-flight").unwrap();
        age_file(&mine);
        let report = store.compact(u64::MAX);
        assert_eq!(report.files_reclaimed, 1);
        assert!(!foreign_stale.exists(), "stale foreign temp swept");
        assert!(
            foreign_fresh.exists(),
            "a young foreign temp may be a live writer's in-flight file"
        );
        assert!(mine.exists(), "own (possibly in-flight) temp kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files_from_crashed_writers() {
        let (store, dir) = test_store("tmp-sweep", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        drop(store);
        // A writer killed between create and rename leaves a temp file.
        let pair = dir.join("0000000000000011.0000000000000022");
        let stale = pair.join("u7.tmp.99999.0");
        std::fs::write(&stale, b"half-written").unwrap();
        age_file(&stale);
        let fresh = pair.join("u9.tmp.99999.1");
        std::fs::write(&fresh, b"mid-write").unwrap();
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        assert!(!stale.exists(), "stale temp file swept on open");
        assert!(fresh.exists(), "young temp kept (may be a live writer)");
        assert_eq!(store.columns(), 1, "real column survives the sweep");
        assert!(store.contains(&key(0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_open_never_mutates_the_filesystem() {
        let (store, dir) = test_store("ro", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        drop(store);
        // Leave bait: a stale temp a read-write open would sweep.
        let pair = dir.join("0000000000000011.0000000000000022");
        let stale = pair.join("u7.tmp.99999.0");
        std::fs::write(&stale, b"half-written").unwrap();
        let ro = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            policy: MaterializationPolicy::ReadOnly,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        assert!(ro.is_read_only());
        assert!(stale.exists(), "read-only open sweeps nothing");
        // Reads work; writes, quarantine and compaction are refused.
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        let positions: Vec<usize> = (0..nd).collect();
        ro.scan_into(
            &key(0),
            nd,
            ns,
            &positions,
            &mut out,
            1,
            0,
            true,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out, column(nd, ns, 0));
        assert!(matches!(
            ro.write_column(&key(1), nd, ns, &column(nd, ns, 1)),
            Err(StoreError::Io(_))
        ));
        ro.quarantine(&key(0));
        assert!(ro.contains(&key(0)), "read-only quarantine is a no-op");
        assert!(dir
            .join("0000000000000011.0000000000000022/u0.col")
            .exists());
        assert_eq!(ro.compact(0), CompactionReport::default());
        assert!(stale.exists());
        drop(ro);
        // A read-only store over a missing directory is simply empty.
        let missing = dir.join("does-not-exist");
        let empty = BehaviorStore::open(&StoreConfig {
            policy: MaterializationPolicy::ReadOnly,
            ..StoreConfig::at(&missing)
        })
        .unwrap();
        assert_eq!(empty.columns(), 0);
        assert!(!missing.exists(), "read-only open creates no directories");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shape_mismatch_is_corrupt_not_wrong_data() {
        let (store, dir) = test_store("shape", 1 << 20);
        store.write_column(&key(0), 8, 2, &column(8, 2, 0)).unwrap();
        let mut out = vec![0.0f32; 4];
        let mut stats = StoreStats::default();
        let err = store
            .scan_into(&key(0), 8, 4, &[0], &mut out, 1, 0, true, &mut stats)
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scans_respect_pool_budget() {
        // Pool holds one 4-record x 2-symbol page (32 bytes).
        let (store, dir) = test_store("budget", 32);
        let (nd, ns) = (16, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        let positions: Vec<usize> = (0..nd).collect();
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, column(nd, ns, 0));
        assert!(stats.pool_evictions > 0 || store.pool().stats().evictions > 0);
        assert!(store.pool().stats().resident_bytes <= 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Scans a whole column twice — pruned and unpruned — and asserts
    /// the outputs are bit-identical (NaN patterns included).
    fn scan_both_ways(
        store: &BehaviorStore,
        k: &ColumnKey,
        nd: usize,
        ns: usize,
    ) -> (Vec<f32>, Vec<f32>, StoreStats) {
        let positions: Vec<usize> = (0..nd).collect();
        let mut pruned = vec![0.0f32; nd * ns];
        let mut plain = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        store
            .scan_into(k, nd, ns, &positions, &mut pruned, 1, 0, true, &mut stats)
            .unwrap();
        let mut plain_stats = StoreStats::default();
        store
            .scan_into(
                k,
                nd,
                ns,
                &positions,
                &mut plain,
                1,
                0,
                false,
                &mut plain_stats,
            )
            .unwrap();
        assert_eq!(plain_stats.blocks_pruned, 0, "prune=false never prunes");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&pruned),
            bits(&plain),
            "pruned == unpruned bit-exactly"
        );
        (pruned, plain, stats)
    }

    #[test]
    fn pruned_scans_are_bit_exact_and_nan_blocks_are_never_pruned() {
        let (store, dir) = test_store("nan-prune", 1 << 20);
        let (nd, ns) = (12, 2);
        // Block 0: finite constant (prunable). Block 1: all NaN — the
        // regression case: a NaN-blind zone map would write inverted
        // +inf/-inf bounds and prune it. Block 2: mixed values with an
        // Inf. Only block 0 may ever be pruned.
        let mut data = vec![1.5f32; nd * ns];
        for v in &mut data[4 * ns..8 * ns] {
            *v = f32::NAN;
        }
        for (j, v) in data[8 * ns..].iter_mut().enumerate() {
            *v = if j == 3 {
                f32::INFINITY
            } else {
                j as f32 - 2.0
            };
        }
        store.write_column(&key(0), nd, ns, &data).unwrap();
        let (pruned_out, _, stats) = scan_both_ways(&store, &key(0), nd, ns);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&pruned_out), bits(&data), "scan returns the column");
        assert_eq!(stats.blocks_pruned, 1, "only the finite constant block");
        assert_eq!(stats.blocks_read, 2, "NaN and mixed blocks were fetched");
        assert_eq!(store.zone_summary(&key(0)), Some((1, 3)));
        // Cold re-open: pruning works off the freshly validated zone
        // table, still without touching the pruned block's payload.
        drop(store);
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        let (_, _, stats) = scan_both_ways(&store, &key(0), nd, ns);
        assert_eq!(stats.blocks_pruned, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_report_shows_compression_wins_on_constant_columns() {
        let (store, dir) = test_store("compress", 1 << 20);
        let (nd, ns) = (64, 4);
        let report = store
            .write_column(&key(0), nd, ns, &vec![0.25f32; nd * ns])
            .unwrap();
        assert_eq!(report.raw_data_bytes, (nd * ns * 4) as u64);
        assert!(
            report.stored_data_bytes < report.raw_data_bytes,
            "constant blocks compress: {} vs {}",
            report.stored_data_bytes,
            report.raw_data_bytes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_files_scan_through_the_store_but_never_prune() {
        let (store, dir) = test_store("v2-compat", 1 << 20);
        let (nd, ns) = (8, 2);
        // A constant column written by the previous format version: its
        // zone map is NaN-blind, so pruning must refuse it even though
        // min == max.
        let meta = ColumnMeta {
            model_fp: 0x11,
            dataset_fp: 0x22,
            unit: 0,
            nd: nd as u64,
            ns: ns as u64,
            block_records: 4,
            completed_records: nd as u64,
        };
        let pair = dir.join("0000000000000011.0000000000000022");
        std::fs::create_dir_all(&pair).unwrap();
        let data = vec![2.0f32; nd * ns];
        format::write_column_file_v2(
            &pair.join("u0.col"),
            &pair.join("u0.tmp.legacy"),
            &meta,
            &data,
            None,
        )
        .unwrap();
        drop(store);
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        assert!(store.contains(&key(0)));
        assert_eq!(store.zone_summary(&key(0)), Some((0, 2)));
        let (out, _, stats) = scan_both_ways(&store, &key(0), nd, ns);
        assert_eq!(out, data);
        assert_eq!(stats.blocks_pruned, 0, "v2 zone maps never drive pruning");
        assert_eq!(stats.blocks_read, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_evicts_coldest_columns_and_lookups_fail_typed() {
        let (store, dir) = test_store("disk-budget", 1 << 20);
        let (nd, ns) = (8, 2);
        for unit in 0..3 {
            store
                .write_column(&key(unit), nd, ns, &column(nd, ns, unit))
                .unwrap();
        }
        drop(store);
        let pair = dir.join("0000000000000011.0000000000000022");
        let len = std::fs::metadata(pair.join("u0.col")).unwrap().len();
        // Backdate the stamps so unit 0 is coldest, unit 2 warmest.
        for unit in 0..3u64 {
            assert!(
                format::write_access_stamp(&pair.join(format!("u{unit}.col")), 100 + unit).unwrap()
            );
        }
        // Budget for two columns: compaction must evict exactly unit 0.
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            disk_budget_bytes: 2 * len,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        let report = store.compact(u64::MAX);
        assert_eq!(report.columns_evicted, 1);
        assert_eq!(report.evicted_bytes, len);
        assert!(!pair.join("u0.col").exists(), "coldest column deleted");
        assert!(!store.contains(&key(0)));
        // The evicted column fails with the typed error — no fallback to
        // quarantine, no `.corrupt` file, and the caller knows to
        // re-extract rather than report corruption.
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        let positions: Vec<usize> = (0..nd).collect();
        let err = store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Evicted(_)), "got {err:?}");
        assert!(quarantined_files(&dir).is_empty());
        // The warmer columns still scan...
        for unit in [1usize, 2] {
            store
                .scan_into(
                    &key(unit),
                    nd,
                    ns,
                    &positions,
                    &mut out,
                    1,
                    0,
                    true,
                    &mut stats,
                )
                .unwrap();
            assert_eq!(out, column(nd, ns, unit));
        }
        // ...an in-budget store evicts nothing further...
        assert_eq!(store.compact(u64::MAX).columns_evicted, 0);
        // ...and re-materializing the evicted column clears the marker.
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, column(nd, ns, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_never_evicts_a_column_with_pinned_pages() {
        let (store, dir) = test_store("pinned-evict", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        store
            .write_column(&key(1), nd, ns, &column(nd, ns, 1))
            .unwrap();
        drop(store);
        let pair = dir.join("0000000000000011.0000000000000022");
        let len = std::fs::metadata(pair.join("u0.col")).unwrap().len();
        // Unit 0 is much colder than unit 1...
        assert!(format::write_access_stamp(&pair.join("u0.col"), 1).unwrap());
        assert!(format::write_access_stamp(&pair.join("u1.col"), 2).unwrap());
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            disk_budget_bytes: len,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        // ...but a concurrent scan holds one of unit 0's pages pinned, so
        // the budget (room for one column) evicts unit 1 instead.
        let pin = store
            .pool
            .get(page_key(&key(0), 0), || {
                let mut file = File::open(pair.join("u0.col"))?;
                let col = format::read_meta(&mut file)?;
                format::read_block(&mut file, &col, 0)
            })
            .unwrap();
        let report = store.compact(u64::MAX);
        assert_eq!(report.columns_evicted, 1);
        assert!(pair.join("u0.col").exists(), "pinned column survives");
        assert!(!pair.join("u1.col").exists(), "next-coldest evicted");
        drop(pin);
        // The pinned column still scans from disk after the sweep.
        let positions: Vec<usize> = (0..nd).collect();
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        store
            .scan_into(
                &key(0),
                nd,
                ns,
                &positions,
                &mut out,
                1,
                0,
                true,
                &mut stats,
            )
            .unwrap();
        assert_eq!(out, column(nd, ns, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
