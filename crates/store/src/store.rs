//! The behavior store: durable unit-behavior columns addressed by
//! content fingerprints, scanned through the buffer pool.
//!
//! On disk a store is a directory tree:
//!
//! ```text
//! <root>/<model_fp:016x>.<dataset_fp:016x>/u<unit>.col
//! ```
//!
//! one column file per `(model fingerprint, dataset fingerprint, unit)`
//! key. Opening a store walks the tree once into an in-memory index of
//! available columns; writers update the index as they commit. Column
//! metadata (shape + zone table) is cached after first validation so a
//! warm scan touches the filesystem only on buffer-pool misses.
//!
//! Corruption handling is fail-soft: a block whose checksum disagrees
//! surfaces a [`StoreError::Corrupt`] to the caller (who falls back to
//! live extraction) and the store **quarantines** the file — renames it
//! to `*.corrupt`, drops it from the index and purges its pool pages —
//! so the next read-write pass re-materializes a clean copy.

use crate::format::{self, ColumnMeta, ZoneEntry};
use crate::pool::{BufferPool, PageKey};
use crate::{StoreError, StoreStats};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a store-configured session is allowed to do with the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MaterializationPolicy {
    /// The store is ignored entirely (scans and write-back both off).
    Off,
    /// Stored columns are scanned; nothing new is persisted.
    ReadOnly,
    /// Stored columns are scanned and newly extracted columns are
    /// persisted at the end of a fully streamed pass.
    #[default]
    ReadWrite,
}

/// Store configuration (carried by `SessionConfig` in the core crate).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory of the store (created on open).
    pub path: PathBuf,
    /// Buffer-pool byte budget for decoded block pages.
    pub pool_bytes: usize,
    /// What the engine may do with the store.
    pub policy: MaterializationPolicy,
    /// Records per on-disk block (zone-map / checksum granularity) for
    /// newly written columns; existing files keep their own grid.
    pub block_records: usize,
    /// Write-back capture budget: a pass whose missing columns would
    /// buffer more than this many bytes skips materialization rather
    /// than balloon memory.
    pub writeback_limit_bytes: usize,
}

impl StoreConfig {
    /// Configuration rooted at `path` with defaults: 64 MiB pool,
    /// read-write policy, 64-record blocks, 256 MiB write-back budget.
    pub fn at(path: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            path: path.into(),
            pool_bytes: 64 << 20,
            policy: MaterializationPolicy::ReadWrite,
            block_records: 64,
            writeback_limit_bytes: 256 << 20,
        }
    }
}

/// Key of one stored column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnKey {
    /// Model content fingerprint.
    pub model_fp: u64,
    /// Dataset content fingerprint.
    pub dataset_fp: u64,
    /// Hidden-unit index within the model.
    pub unit: usize,
}

/// Outcome of one column write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Data blocks written.
    pub blocks_written: usize,
    /// Pool evictions caused by populating the written blocks.
    pub pool_evictions: usize,
}

/// An open behavior store (see the module docs).
/// Validated column metadata: the schema section plus the zone table.
type CachedMeta = Arc<(ColumnMeta, Vec<ZoneEntry>)>;

pub struct BehaviorStore {
    root: PathBuf,
    block_records: usize,
    pool: BufferPool,
    index: Mutex<HashSet<ColumnKey>>,
    /// Validated (meta, zones) per column, filled on first scan.
    meta_cache: Mutex<HashMap<ColumnKey, CachedMeta>>,
    tmp_counter: AtomicU64,
}

impl BehaviorStore {
    /// Opens (creating if needed) the store rooted at `config.path` and
    /// indexes the columns already on disk.
    pub fn open(config: &StoreConfig) -> Result<Arc<BehaviorStore>, StoreError> {
        std::fs::create_dir_all(&config.path)?;
        let mut index = HashSet::new();
        for entry in std::fs::read_dir(&config.path)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Some((model_fp, dataset_fp)) = parse_pair_dir(&entry.file_name()) else {
                continue;
            };
            for col in std::fs::read_dir(entry.path())? {
                let col = col?;
                let name = col.file_name();
                if let Some(unit) = parse_column_file(&name) {
                    index.insert(ColumnKey {
                        model_fp,
                        dataset_fp,
                        unit,
                    });
                } else if name.to_str().is_some_and(|n| n.contains(".tmp.")) {
                    // A writer died between create and rename: the temp
                    // file can never be read, so sweep it on open.
                    let _ = std::fs::remove_file(col.path());
                }
            }
        }
        Ok(Arc::new(BehaviorStore {
            root: config.path.clone(),
            block_records: config.block_records.max(1),
            pool: BufferPool::new(config.pool_bytes),
            index: Mutex::new(index),
            meta_cache: Mutex::new(HashMap::new()),
            tmp_counter: AtomicU64::new(0),
        }))
    }

    /// The store's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of indexed columns.
    pub fn columns(&self) -> usize {
        self.index.lock().len()
    }

    /// True when the column is indexed (file present; contents are only
    /// validated when scanned).
    pub fn contains(&self, key: &ColumnKey) -> bool {
        self.index.lock().contains(key)
    }

    /// The subset of `units` with an indexed column under
    /// `(model_fp, dataset_fp)`, in input order.
    pub fn available_units(&self, model_fp: u64, dataset_fp: u64, units: &[usize]) -> Vec<usize> {
        let index = self.index.lock();
        units
            .iter()
            .copied()
            .filter(|&unit| {
                index.contains(&ColumnKey {
                    model_fp,
                    dataset_fp,
                    unit,
                })
            })
            .collect()
    }

    fn column_path(&self, key: &ColumnKey) -> PathBuf {
        self.root
            .join(format!("{:016x}.{:016x}", key.model_fp, key.dataset_fp))
            .join(format!("u{}.col", key.unit))
    }

    /// Persists a complete column (`data.len() == nd * ns`, record-major)
    /// atomically and pushes its blocks through the pool so an immediate
    /// scan hits memory.
    pub fn write_column(
        &self,
        key: &ColumnKey,
        nd: usize,
        ns: usize,
        data: &[f32],
    ) -> Result<WriteReport, StoreError> {
        if data.len() != nd * ns {
            return Err(StoreError::Io(format!(
                "column shape mismatch: {} values for nd={nd} ns={ns}",
                data.len()
            )));
        }
        let meta = ColumnMeta {
            model_fp: key.model_fp,
            dataset_fp: key.dataset_fp,
            unit: key.unit as u64,
            nd: nd as u64,
            ns: ns as u64,
            block_records: self.block_records as u64,
        };
        let path = self.column_path(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let blocks_written = format::write_column_file(&path, &tmp, &meta, data)?;
        // Populate the pool so scans in this process hit memory, and
        // refresh the caches (an overwrite replaces stale state).
        let mut pool_evictions = 0;
        for b in 0..meta.n_blocks() {
            let rows = meta.rows_in_block(b);
            let start = b * self.block_records * ns;
            pool_evictions += self
                .pool
                .insert(page_key(key, b), data[start..start + rows * ns].to_vec());
        }
        self.meta_cache.lock().remove(key);
        self.index.lock().insert(*key);
        Ok(WriteReport {
            blocks_written,
            pool_evictions,
        })
    }

    /// Validated metadata for a column, cached after the first read.
    fn column_meta(
        &self,
        key: &ColumnKey,
    ) -> Result<Arc<(ColumnMeta, Vec<ZoneEntry>)>, StoreError> {
        if let Some(meta) = self.meta_cache.lock().get(key) {
            return Ok(Arc::clone(meta));
        }
        let mut file = File::open(self.column_path(key))?;
        let parsed = Arc::new(format::read_meta(&mut file)?);
        self.meta_cache
            .lock()
            .entry(*key)
            .or_insert_with(|| Arc::clone(&parsed));
        Ok(parsed)
    }

    /// Scans one column for the given record positions, writing the `ns`
    /// values of position `positions[i]` into
    /// `out[(i * ns + t) * stride + col]` — i.e. straight into column
    /// `col` of a row-major `(positions.len() * ns) x stride` matrix.
    /// Pages are fetched (and their checksums verified) through the pool;
    /// `stats` receives the per-call page accounting (`blocks_read`,
    /// pool hit/miss/eviction counters — `columns_scanned` is per-pass
    /// and counted by the caller).
    #[allow(clippy::too_many_arguments)] // a scan is genuinely this wide
    pub fn scan_into(
        &self,
        key: &ColumnKey,
        nd: usize,
        ns: usize,
        positions: &[usize],
        out: &mut [f32],
        stride: usize,
        col: usize,
        stats: &mut StoreStats,
    ) -> Result<(), StoreError> {
        let cached = self.column_meta(key)?;
        let (meta, zones) = (&cached.0, &cached.1);
        if meta.nd != nd as u64 || meta.ns != ns as u64 {
            return Err(StoreError::Corrupt(format!(
                "stored shape (nd={}, ns={}) disagrees with dataset (nd={nd}, ns={ns})",
                meta.nd, meta.ns
            )));
        }
        // Pin each distinct page once for the whole call (positions are
        // shuffled, so consecutive positions land on arbitrary blocks);
        // the pins drop together when `pages` goes out of scope.
        let mut pages: Vec<Option<crate::pool::PinnedPage<'_>>> =
            (0..meta.n_blocks()).map(|_| None).collect();
        for (i, &pos) in positions.iter().enumerate() {
            if pos >= nd {
                return Err(StoreError::Corrupt(format!(
                    "record position {pos} out of range (nd={nd})"
                )));
            }
            let b = meta.block_of(pos);
            if pages[b].is_none() {
                let page = self.pool.get(page_key(key, b), || {
                    let mut file = File::open(self.column_path(key))?;
                    format::read_block(&mut file, meta, zones, b)
                })?;
                stats.blocks_read += 1;
                if page.hit {
                    stats.pool_hits += 1;
                } else {
                    stats.pool_misses += 1;
                }
                stats.pool_evictions += page.evictions;
                pages[b] = Some(page);
            }
            let page = pages[b].as_ref().expect("pinned above");
            let local = pos - b * meta.block_records as usize;
            let row = &page[local * ns..(local + 1) * ns];
            for (t, &v) in row.iter().enumerate() {
                out[(i * ns + t) * stride + col] = v;
            }
        }
        Ok(())
    }

    /// Quarantines a column that failed validation: renames the file to
    /// `*.corrupt`, drops it from the index and purges its pool pages.
    /// The next read-write pass re-materializes it from live extraction.
    pub fn quarantine(&self, key: &ColumnKey) {
        self.index.lock().remove(key);
        self.meta_cache.lock().remove(key);
        self.pool
            .purge_column(key.model_fp, key.dataset_fp, key.unit as u64);
        let path = self.column_path(key);
        let _ = std::fs::rename(&path, path.with_extension("corrupt"));
    }
}

fn page_key(key: &ColumnKey, block: usize) -> PageKey {
    PageKey {
        model_fp: key.model_fp,
        dataset_fp: key.dataset_fp,
        unit: key.unit as u64,
        block: block as u32,
    }
}

fn parse_pair_dir(name: &std::ffi::OsStr) -> Option<(u64, u64)> {
    let name = name.to_str()?;
    let (model, dataset) = name.split_once('.')?;
    Some((
        u64::from_str_radix(model, 16).ok()?,
        u64::from_str_radix(dataset, 16).ok()?,
    ))
}

fn parse_column_file(name: &std::ffi::OsStr) -> Option<usize> {
    let name = name.to_str()?;
    name.strip_prefix('u')?.strip_suffix(".col")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_store(name: &str, pool_bytes: usize) -> (Arc<BehaviorStore>, PathBuf) {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-store-tests")
            .join(format!("store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = StoreConfig::at(&dir);
        config.pool_bytes = pool_bytes;
        config.block_records = 4;
        (BehaviorStore::open(&config).unwrap(), dir)
    }

    fn key(unit: usize) -> ColumnKey {
        ColumnKey {
            model_fp: 0x11,
            dataset_fp: 0x22,
            unit,
        }
    }

    fn column(nd: usize, ns: usize, unit: usize) -> Vec<f32> {
        (0..nd * ns)
            .map(|i| (i * 7 + unit * 1000) as f32 * 0.25)
            .collect()
    }

    #[test]
    fn write_scan_roundtrip_in_shuffled_order() {
        let (store, dir) = test_store("roundtrip", 1 << 20);
        let (nd, ns) = (10, 3);
        let data = column(nd, ns, 0);
        store.write_column(&key(0), nd, ns, &data).unwrap();
        assert!(store.contains(&key(0)));
        // Scan positions out of order into column 1 of a stride-2 buffer.
        let positions = [7, 0, 9, 3];
        let mut out = vec![0.0f32; positions.len() * ns * 2];
        let mut stats = StoreStats::default();
        store
            .scan_into(&key(0), nd, ns, &positions, &mut out, 2, 1, &mut stats)
            .unwrap();
        for (i, &pos) in positions.iter().enumerate() {
            for t in 0..ns {
                assert_eq!(out[(i * ns + t) * 2 + 1], data[pos * ns + t]);
                assert_eq!(out[(i * ns + t) * 2], 0.0, "other column untouched");
            }
        }
        // Positions 7,0,9,3 at 4 records/block touch blocks {0, 1, 2},
        // each pinned exactly once for the whole call.
        assert_eq!(stats.blocks_read, 3);
        // Write populated the pool, so every fetch hit memory.
        assert_eq!(stats.pool_hits, 3);
        assert_eq!(stats.pool_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_indexes_existing_columns_and_reads_from_disk() {
        let (store, dir) = test_store("reopen", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(2), nd, ns, &column(nd, ns, 2))
            .unwrap();
        store
            .write_column(&key(5), nd, ns, &column(nd, ns, 5))
            .unwrap();
        drop(store);
        // Fresh process semantics: reopen from disk.
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        assert_eq!(store.columns(), 2);
        assert_eq!(store.available_units(0x11, 0x22, &[0, 2, 5, 9]), vec![2, 5]);
        assert_eq!(
            store.available_units(0x99, 0x22, &[2, 5]),
            Vec::<usize>::new()
        );
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        let positions: Vec<usize> = (0..nd).collect();
        store
            .scan_into(&key(5), nd, ns, &positions, &mut out, 1, 0, &mut stats)
            .unwrap();
        assert_eq!(out, column(nd, ns, 5), "bit-identical across reopen");
        assert!(stats.pool_misses > 0, "cold pool reads from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_column_errors_and_quarantine_self_heals() {
        let (store, dir) = test_store("quarantine", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        drop(store);
        // Corrupt a data byte on disk, then reopen cold.
        let path = dir.join("0000000000000011.0000000000000022").join("u0.col");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        let positions: Vec<usize> = (0..nd).collect();
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        let err = store
            .scan_into(&key(0), nd, ns, &positions, &mut out, 1, 0, &mut stats)
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        store.quarantine(&key(0));
        assert!(!store.contains(&key(0)));
        assert!(path.with_extension("corrupt").exists());
        assert!(!path.exists());
        // Re-materializing writes a clean copy that scans again.
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        store
            .scan_into(&key(0), nd, ns, &positions, &mut out, 1, 0, &mut stats)
            .unwrap();
        assert_eq!(out, column(nd, ns, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files_from_crashed_writers() {
        let (store, dir) = test_store("tmp-sweep", 1 << 20);
        let (nd, ns) = (8, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        drop(store);
        // A writer killed between create and rename leaves a temp file.
        let pair = dir.join("0000000000000011.0000000000000022");
        let stale = pair.join("u7.tmp.99999.0");
        std::fs::write(&stale, b"half-written").unwrap();
        let store = BehaviorStore::open(&StoreConfig {
            block_records: 4,
            ..StoreConfig::at(&dir)
        })
        .unwrap();
        assert!(!stale.exists(), "stale temp file swept on open");
        assert_eq!(store.columns(), 1, "real column survives the sweep");
        assert!(store.contains(&key(0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shape_mismatch_is_corrupt_not_wrong_data() {
        let (store, dir) = test_store("shape", 1 << 20);
        store.write_column(&key(0), 8, 2, &column(8, 2, 0)).unwrap();
        let mut out = vec![0.0f32; 4];
        let mut stats = StoreStats::default();
        let err = store
            .scan_into(&key(0), 8, 4, &[0], &mut out, 1, 0, &mut stats)
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scans_respect_pool_budget() {
        // Pool holds one 4-record x 2-symbol page (32 bytes).
        let (store, dir) = test_store("budget", 32);
        let (nd, ns) = (16, 2);
        store
            .write_column(&key(0), nd, ns, &column(nd, ns, 0))
            .unwrap();
        let positions: Vec<usize> = (0..nd).collect();
        let mut out = vec![0.0f32; nd * ns];
        let mut stats = StoreStats::default();
        store
            .scan_into(&key(0), nd, ns, &positions, &mut out, 1, 0, &mut stats)
            .unwrap();
        assert_eq!(out, column(nd, ns, 0));
        assert!(stats.pool_evictions > 0 || store.pool().stats().evictions > 0);
        assert!(store.pool().stats().resident_bytes <= 32);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
