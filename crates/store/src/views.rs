//! Durable materialized inspection views.
//!
//! A **view** is a named, persisted answer to one bound INSPECT
//! statement: the normalized statement text, the exact configuration it
//! ran under, a high-water mark over every input (model fingerprints and
//! per-segment dataset fingerprints), the mergeable per-slot measure
//! states of the full pass, and the raw result frame — floats stored as
//! raw bits so a replay is bit-identical to the pass that produced it.
//!
//! The [`ViewCatalog`] owns the `<store root>/views/` directory. Each
//! view is one self-contained file (magic + version header, body,
//! trailing CRC32) written atomically — temp file in the same directory,
//! fsync, rename — exactly like sealed dataset segments, so a reader
//! concurrent with a refresh sees either the old or the new file, never
//! a torn one, and a writer that crashes mid-refresh leaves the old
//! entry intact (its abandoned temp file is swept on the next open).
//!
//! Freshness is decided by fingerprint comparison alone
//! ([`ViewDoc::freshness`]): identical inputs replay, a dataset that
//! only *grew* (the stored segment fingerprints are a strict prefix of
//! the current ones) refreshes incrementally over the new segments, and
//! any other change invalidates the view for a full rebuild. The store
//! layer knows nothing about statements or measures — it stores the
//! bytes faithfully and validates them loudly; the core crate decides
//! what they mean.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use crate::format::crc32;
use crate::{FpHasher, StoreError};

/// Magic + format version of a view file.
const VIEW_MAGIC: &[u8; 8] = b"DBVIEW\x01\0";
/// View file extension.
const VIEW_EXT: &str = "view";

/// One serialized mergeable measure state, in canonical slot order. The
/// identifying triple lets a refresh validate that the plan it re-bound
/// still produces the same slots before folding anything.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSlotState {
    /// Unit-group id of the slot.
    pub group_id: String,
    /// Measure id of the slot.
    pub measure_id: String,
    /// Hypothesis id of the slot.
    pub hyp_id: String,
    /// Opaque state bytes (the core crate's measure serialization).
    pub state: Vec<u8>,
}

/// One stored result row. Scores are raw `f32` bits so NaN payloads and
/// signed zeros replay exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewRow {
    /// Model id.
    pub model_id: String,
    /// Unit-group id.
    pub group_id: String,
    /// Measure id.
    pub measure_id: String,
    /// Hypothesis id.
    pub hyp_id: String,
    /// Unit index.
    pub unit: u64,
    /// `f32::to_bits` of the unit score.
    pub unit_score_bits: u32,
    /// `f32::to_bits` of the group score.
    pub group_score_bits: u32,
}

/// How a stored view relates to the current inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewFreshness {
    /// Every input fingerprint matches: replay the stored frame.
    Fresh,
    /// Only the dataset grew: the stored segment fingerprints are a
    /// strict prefix of the current ones. Refresh incrementally over the
    /// `new_segments` appended segments.
    Stale {
        /// Segments appended since the view was materialized.
        new_segments: usize,
    },
    /// Some other input changed (model weights, configuration, dataset
    /// contents): the stored state is unusable, rebuild from scratch.
    Invalid,
}

/// The complete durable content of one materialized view.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDoc {
    /// View name (the catalog key).
    pub name: String,
    /// Normalized statement text (the session plan-cache key form, so
    /// whitespace/case variants of one statement map to one view).
    pub statement: String,
    /// Engine kind tag the pass ran under.
    pub engine: String,
    /// Streaming block size the pass ran under.
    pub block_records: u64,
    /// `f32::to_bits` of the convergence threshold, when one was set.
    pub epsilon_bits: Option<u32>,
    /// Shuffle seed the pass ran under.
    pub seed: u64,
    /// Fingerprints of every bound model, in binding order.
    pub model_fps: Vec<u64>,
    /// Per-segment dataset fingerprints, in segment order — the
    /// high-water mark incremental refresh advances.
    pub segment_fps: Vec<u64>,
    /// Serialized mergeable measure states, in canonical slot order.
    pub states: Vec<ViewSlotState>,
    /// The raw (pre-projection) result frame.
    pub rows: Vec<ViewRow>,
}

impl ViewDoc {
    /// Compares the stored high-water mark against the current inputs.
    pub fn freshness(
        &self,
        engine: &str,
        block_records: u64,
        epsilon_bits: Option<u32>,
        seed: u64,
        model_fps: &[u64],
        segment_fps: &[u64],
    ) -> ViewFreshness {
        if self.engine != engine
            || self.block_records != block_records
            || self.epsilon_bits != epsilon_bits
            || self.seed != seed
            || self.model_fps != model_fps
        {
            return ViewFreshness::Invalid;
        }
        if self.segment_fps == segment_fps {
            return ViewFreshness::Fresh;
        }
        if self.segment_fps.len() < segment_fps.len()
            && !self.segment_fps.is_empty()
            && segment_fps[..self.segment_fps.len()] == self.segment_fps[..]
        {
            return ViewFreshness::Stale {
                new_segments: segment_fps.len() - self.segment_fps.len(),
            };
        }
        ViewFreshness::Invalid
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_str(&mut b, &self.name);
        put_str(&mut b, &self.statement);
        put_str(&mut b, &self.engine);
        b.extend_from_slice(&self.block_records.to_le_bytes());
        match self.epsilon_bits {
            Some(bits) => {
                b.push(1);
                b.extend_from_slice(&bits.to_le_bytes());
            }
            None => b.push(0),
        }
        b.extend_from_slice(&self.seed.to_le_bytes());
        put_u64s(&mut b, &self.model_fps);
        put_u64s(&mut b, &self.segment_fps);
        b.extend_from_slice(&(self.states.len() as u32).to_le_bytes());
        for s in &self.states {
            put_str(&mut b, &s.group_id);
            put_str(&mut b, &s.measure_id);
            put_str(&mut b, &s.hyp_id);
            b.extend_from_slice(&(s.state.len() as u32).to_le_bytes());
            b.extend_from_slice(&s.state);
        }
        b.extend_from_slice(&(self.rows.len() as u64).to_le_bytes());
        for r in &self.rows {
            put_str(&mut b, &r.model_id);
            put_str(&mut b, &r.group_id);
            put_str(&mut b, &r.measure_id);
            put_str(&mut b, &r.hyp_id);
            b.extend_from_slice(&r.unit.to_le_bytes());
            b.extend_from_slice(&r.unit_score_bits.to_le_bytes());
            b.extend_from_slice(&r.group_score_bits.to_le_bytes());
        }
        b
    }

    fn decode(body: &[u8]) -> Option<ViewDoc> {
        let mut c = Cur(body, 0);
        let name = c.str()?;
        let statement = c.str()?;
        let engine = c.str()?;
        let block_records = c.u64()?;
        let epsilon_bits = match c.u8()? {
            0 => None,
            1 => Some(c.u32()?),
            _ => return None,
        };
        let seed = c.u64()?;
        let model_fps = c.u64s()?;
        let segment_fps = c.u64s()?;
        let n_states = c.u32()? as usize;
        let mut states = Vec::with_capacity(n_states.min(1024));
        for _ in 0..n_states {
            let group_id = c.str()?;
            let measure_id = c.str()?;
            let hyp_id = c.str()?;
            let len = c.u32()? as usize;
            let state = c.bytes(len)?.to_vec();
            states.push(ViewSlotState {
                group_id,
                measure_id,
                hyp_id,
                state,
            });
        }
        let n_rows = c.u64()? as usize;
        let mut rows = Vec::with_capacity(n_rows.min(1 << 16));
        for _ in 0..n_rows {
            rows.push(ViewRow {
                model_id: c.str()?,
                group_id: c.str()?,
                measure_id: c.str()?,
                hyp_id: c.str()?,
                unit: c.u64()?,
                unit_score_bits: c.u32()?,
                group_score_bits: c.u32()?,
            });
        }
        if !c.done() {
            return None;
        }
        Some(ViewDoc {
            name,
            statement,
            engine,
            block_records,
            epsilon_bits,
            seed,
            model_fps,
            segment_fps,
            states,
            rows,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor over a view body.
struct Cur<'a>(&'a [u8], usize);

impl Cur<'_> {
    fn bytes(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.0.get(self.1..self.1.checked_add(n)?)?;
        self.1 += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.bytes(len)?.to_vec()).ok()
    }
    fn u64s(&mut self) -> Option<Vec<u64>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Some(out)
    }
    fn done(&self) -> bool {
        self.1 == self.0.len()
    }
}

/// One cached, validated view with the file identity it was read at.
struct CachedView {
    len: u64,
    mtime: Option<SystemTime>,
    doc: Arc<ViewDoc>,
}

/// The durable view catalog at `<store root>/views/`.
///
/// Thread-safe behind one handle (the server shares it across every
/// connection exactly like the behavior store): writes serialize through
/// the filesystem's atomic rename, reads validate the trailing CRC and
/// are cached in memory keyed by file identity, so the warm replay path
/// costs one `stat` call, zero store block reads and zero extraction.
pub struct ViewCatalog {
    dir: PathBuf,
    read_only: bool,
    cache: Mutex<BTreeMap<String, CachedView>>,
}

impl ViewCatalog {
    /// Opens the catalog under `store_root/views/`. The directory is
    /// created lazily by the first `save` — a store that never
    /// materializes a view keeps its old layout. Read-write opens of an
    /// existing catalog sweep abandoned temp files (a crashed refresh
    /// leaves its temp behind; the completed entry it failed to replace
    /// is untouched). Never fails: an unreadable directory just behaves
    /// as an empty catalog whose writes error.
    pub fn open(store_root: &Path, read_only: bool) -> ViewCatalog {
        let dir = store_root.join("views");
        if !read_only {
            if let Ok(entries) = fs::read_dir(&dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if name.contains(".tmp.") {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        ViewCatalog {
            dir,
            read_only,
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File path of a view: a sanitized name prefix (for humans) plus the
    /// full-name fingerprint (for uniqueness across names the sanitizer
    /// collapses).
    fn path_of(&self, name: &str) -> PathBuf {
        let safe: String = name
            .chars()
            .take(40)
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let fp = FpHasher::new().write_str(name).finish();
        self.dir.join(format!("{safe}-{fp:016x}.{VIEW_EXT}"))
    }

    /// Names of every view currently on disk, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some(VIEW_EXT) {
                    continue;
                }
                if let Ok(Some(doc)) = self.load_path(&path) {
                    names.push(doc.name.clone());
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// True when a validated view file for `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        matches!(self.load(name), Ok(Some(_)))
    }

    /// Finds the view materializing a given normalized statement, if
    /// any. First match in name order wins (one statement normally backs
    /// at most one view). Unreadable entries are skipped — a corrupt
    /// sibling must not poison an unrelated statement's probe.
    pub fn find_by_statement(&self, statement: &str) -> Option<Arc<ViewDoc>> {
        for name in self.list() {
            if let Ok(Some(doc)) = self.load(&name) {
                if doc.statement == statement {
                    return Some(doc);
                }
            }
        }
        None
    }

    /// Persists a view atomically (temp file, fsync, rename over the
    /// destination) and refreshes the in-memory cache. Returns the bytes
    /// written.
    pub fn save(&self, doc: &ViewDoc) -> Result<u64, StoreError> {
        if self.read_only {
            return Err(StoreError::Io(
                "view catalog is read-only (store policy)".into(),
            ));
        }
        let body = doc.encode();
        let mut bytes = Vec::with_capacity(8 + body.len() + 4);
        bytes.extend_from_slice(VIEW_MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        let path = self.path_of(&doc.name);
        fs::create_dir_all(&self.dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let tmp = path.with_extension(format!("{VIEW_EXT}.tmp.{}", std::process::id()));
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::Io(e.to_string()))?;
        f.write_all(&bytes)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        f.sync_all().map_err(|e| StoreError::Io(e.to_string()))?;
        drop(f);
        fs::rename(&tmp, &path).map_err(|e| StoreError::Io(e.to_string()))?;
        let (len, mtime) = file_identity(&path);
        self.cache.lock().expect("view cache lock").insert(
            doc.name.clone(),
            CachedView {
                len,
                mtime,
                doc: Arc::new(doc.clone()),
            },
        );
        Ok(bytes.len() as u64)
    }

    /// Loads a view by name: `Ok(None)` when absent, `Err(Corrupt)` when
    /// the file exists but fails validation. Served from the in-memory
    /// cache while the file identity (length + mtime) is unchanged.
    pub fn load(&self, name: &str) -> Result<Option<Arc<ViewDoc>>, StoreError> {
        let path = self.path_of(name);
        if !path.exists() {
            self.cache.lock().expect("view cache lock").remove(name);
            return Ok(None);
        }
        let (len, mtime) = file_identity(&path);
        if let Some(hit) = self.cache.lock().expect("view cache lock").get(name) {
            if hit.len == len && hit.mtime == mtime {
                return Ok(Some(Arc::clone(&hit.doc)));
            }
        }
        match self.load_path(&path)? {
            Some(doc) if doc.name == name => {
                let doc = Arc::new(doc);
                self.cache.lock().expect("view cache lock").insert(
                    name.to_string(),
                    CachedView {
                        len,
                        mtime,
                        doc: Arc::clone(&doc),
                    },
                );
                Ok(Some(doc))
            }
            Some(doc) => Err(StoreError::Corrupt(format!(
                "view file for {name:?} names {:?}",
                doc.name
            ))),
            None => Ok(None),
        }
    }

    /// Reads and validates one view file. `Ok(None)` when the file
    /// vanished between listing and reading.
    fn load_path(&self, path: &Path) -> Result<Option<ViewDoc>, StoreError> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::from(e)),
        };
        if bytes.len() < 8 + 4 || &bytes[..8] != VIEW_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "view file {} has a bad header",
                path.display()
            )));
        }
        let body = &bytes[8..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(StoreError::Corrupt(format!(
                "view file {} failed its checksum",
                path.display()
            )));
        }
        match ViewDoc::decode(body) {
            Some(doc) => Ok(Some(doc)),
            None => Err(StoreError::Corrupt(format!(
                "view file {} body is malformed",
                path.display()
            ))),
        }
    }

    /// Deletes a view. Returns true when a file was removed.
    pub fn remove(&self, name: &str) -> Result<bool, StoreError> {
        if self.read_only {
            return Err(StoreError::Io(
                "view catalog is read-only (store policy)".into(),
            ));
        }
        self.cache.lock().expect("view cache lock").remove(name);
        let path = self.path_of(name);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::from(e)),
        }
    }
}

fn file_identity(path: &Path) -> (u64, Option<SystemTime>) {
    match fs::metadata(path) {
        Ok(meta) => (meta.len(), meta.modified().ok()),
        Err(_) => (0, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "deepbase-views-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_doc(name: &str, segs: &[u64]) -> ViewDoc {
        ViewDoc {
            name: name.into(),
            statement: "select s.uid inspect ...".into(),
            engine: "DeepBase".into(),
            block_records: 64,
            epsilon_bits: Some(0.05f32.to_bits()),
            seed: 42,
            model_fps: vec![11, 22],
            segment_fps: segs.to_vec(),
            states: vec![ViewSlotState {
                group_id: "all".into(),
                measure_id: "corr".into(),
                hyp_id: "kw:SELECT".into(),
                state: vec![1, 2, 3, 255, 0],
            }],
            rows: vec![ViewRow {
                model_id: "m".into(),
                group_id: "all".into(),
                measure_id: "corr".into(),
                hyp_id: "kw:SELECT".into(),
                unit: 7,
                unit_score_bits: f32::NAN.to_bits(),
                group_score_bits: (-0.0f32).to_bits(),
            }],
        }
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let root = temp_root("roundtrip");
        let catalog = ViewCatalog::open(&root, false);
        let doc = sample_doc("my view/1", &[5, 6]);
        let bytes = catalog.save(&doc).expect("save");
        assert!(bytes > 0);
        let back = catalog.load("my view/1").expect("load").expect("present");
        assert_eq!(*back, doc, "round trip must preserve every field");
        // NaN bits survive exactly.
        assert_eq!(back.rows[0].unit_score_bits, f32::NAN.to_bits());
        assert_eq!(catalog.list(), vec!["my view/1".to_string()]);
        assert!(catalog.contains("my view/1"));
        assert!(!catalog.contains("other"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn cache_follows_file_identity_and_removal() {
        let root = temp_root("cache");
        let catalog = ViewCatalog::open(&root, false);
        catalog.save(&sample_doc("v", &[1])).unwrap();
        let first = catalog.load("v").unwrap().unwrap();
        assert_eq!(first.segment_fps, vec![1]);
        catalog.save(&sample_doc("v", &[1, 2])).unwrap();
        let second = catalog.load("v").unwrap().unwrap();
        assert_eq!(second.segment_fps, vec![1, 2], "save refreshes the cache");
        assert!(catalog.remove("v").unwrap());
        assert!(!catalog.remove("v").unwrap(), "second remove is a no-op");
        assert!(catalog.load("v").unwrap().is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_is_detected_never_misread() {
        let root = temp_root("corrupt");
        let catalog = ViewCatalog::open(&root, false);
        catalog.save(&sample_doc("v", &[1])).unwrap();
        let path = catalog.path_of("v");
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit in the middle of the body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        // A fresh catalog (no warm cache) must refuse the bytes.
        let cold = ViewCatalog::open(&root, false);
        assert!(matches!(cold.load("v"), Err(StoreError::Corrupt(_))));
        // Truncation is also detected.
        bytes.truncate(bytes.len() - 7);
        fs::write(&path, &bytes).unwrap();
        let cold = ViewCatalog::open(&root, false);
        assert!(matches!(cold.load("v"), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn crashed_refresh_leaves_the_old_entry_intact() {
        let root = temp_root("crash");
        let catalog = ViewCatalog::open(&root, false);
        let doc = sample_doc("v", &[1]);
        catalog.save(&doc).unwrap();
        // Simulate a refresh killed mid-write: a half-written temp file
        // next to the completed entry, never renamed.
        let tmp = catalog
            .path_of("v")
            .with_extension(format!("{VIEW_EXT}.tmp.99999"));
        fs::write(&tmp, b"half-written garbage").unwrap();
        // Reopen: the temp is swept, the old entry reads back bit-exact.
        let reopened = ViewCatalog::open(&root, false);
        assert!(!tmp.exists(), "abandoned temp must be swept on open");
        let back = reopened.load("v").unwrap().unwrap();
        assert_eq!(*back, doc);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn read_only_catalog_refuses_writes_but_serves_reads() {
        let root = temp_root("ro");
        let rw = ViewCatalog::open(&root, false);
        rw.save(&sample_doc("v", &[1])).unwrap();
        let ro = ViewCatalog::open(&root, true);
        assert!(ro.load("v").unwrap().is_some());
        assert!(ro.save(&sample_doc("w", &[1])).is_err());
        assert!(ro.remove("v").is_err());
        assert!(rw.load("v").unwrap().is_some(), "nothing was deleted");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn freshness_classifies_prefix_growth_and_changes() {
        let doc = sample_doc("v", &[10, 20]);
        let fresh = |segs: &[u64]| {
            doc.freshness("DeepBase", 64, Some(0.05f32.to_bits()), 42, &[11, 22], segs)
        };
        assert_eq!(fresh(&[10, 20]), ViewFreshness::Fresh);
        assert_eq!(
            fresh(&[10, 20, 30]),
            ViewFreshness::Stale { new_segments: 1 }
        );
        assert_eq!(
            fresh(&[10, 20, 30, 40]),
            ViewFreshness::Stale { new_segments: 2 }
        );
        // Mutated prefix, shrunk dataset, reordered segments: invalid.
        assert_eq!(fresh(&[10, 21, 30]), ViewFreshness::Invalid);
        assert_eq!(fresh(&[10]), ViewFreshness::Invalid);
        assert_eq!(fresh(&[20, 10]), ViewFreshness::Invalid);
        // Any config or model change: invalid.
        assert_eq!(
            doc.freshness(
                "PyBase",
                64,
                Some(0.05f32.to_bits()),
                42,
                &[11, 22],
                &[10, 20]
            ),
            ViewFreshness::Invalid
        );
        assert_eq!(
            doc.freshness(
                "DeepBase",
                32,
                Some(0.05f32.to_bits()),
                42,
                &[11, 22],
                &[10, 20]
            ),
            ViewFreshness::Invalid
        );
        assert_eq!(
            doc.freshness("DeepBase", 64, None, 42, &[11, 22], &[10, 20]),
            ViewFreshness::Invalid
        );
        assert_eq!(
            doc.freshness(
                "DeepBase",
                64,
                Some(0.05f32.to_bits()),
                43,
                &[11, 22],
                &[10, 20]
            ),
            ViewFreshness::Invalid
        );
        assert_eq!(
            doc.freshness(
                "DeepBase",
                64,
                Some(0.05f32.to_bits()),
                42,
                &[11, 23],
                &[10, 20]
            ),
            ViewFreshness::Invalid
        );
    }

    #[test]
    fn concurrent_readers_see_old_or_new_never_torn() {
        let root = temp_root("concurrent");
        let catalog = Arc::new(ViewCatalog::open(&root, false));
        let old = sample_doc("v", &[1]);
        let new = sample_doc("v", &[1, 2]);
        catalog.save(&old).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let catalog = Arc::clone(&catalog);
                let (old, new) = (old.clone(), new.clone());
                scope.spawn(move || {
                    for _ in 0..200 {
                        // A fresh catalog per read defeats the in-memory
                        // cache, so every read exercises the file path.
                        let cold = ViewCatalog::open(catalog.dir().parent().unwrap(), true);
                        let doc = cold.load("v").expect("never torn").expect("present");
                        assert!(*doc == old || *doc == new, "reader saw a torn view");
                    }
                });
            }
            scope.spawn(|| {
                for i in 0..100 {
                    let doc = if i % 2 == 0 { &new } else { &old };
                    catalog.save(doc).unwrap();
                }
            });
        });
        let _ = fs::remove_dir_all(&root);
    }
}
