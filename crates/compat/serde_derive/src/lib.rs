//! Offline stub of `serde_derive`.
//!
//! The build container has no network access, so serialization is stubbed:
//! the derives emit empty impls of the marker traits in the sibling `serde`
//! stub crate. `#[serde(...)]` helper attributes are accepted and ignored.
//! Only non-generic `struct`/`enum` items are supported, which covers every
//! derived type in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item token stream.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        match tok {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "struct" || id == "enum" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        if let Some(TokenTree::Punct(p)) = tokens.peek() {
                            assert!(
                                p.as_char() != '<',
                                "serde stub derive does not support generic type `{name}`"
                            );
                        }
                        return name.to_string();
                    }
                    panic!("expected a type name after `{id}`");
                }
                // `pub`, `pub(crate)`, `union` guards etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde stub derive: no struct/enum found in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
