//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model and result
//! types so a future PR can persist them, but nothing currently calls a
//! serializer — and the build container has no network access. This stub
//! provides the two trait names as empty marker traits plus no-op derive
//! macros, so the annotations compile unchanged and the real crate can be
//! dropped in later without touching downstream code.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
