//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, range/tuple/`Just`/vec/regex-literal
//! strategies, `prop_map`/`prop_flat_map`, `prop_oneof!`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name) and there is no
//! shrinking — a failing case reports its index and message only.

pub mod strategy;

pub mod test_runner {
    pub use crate::runner::{Config as ProptestConfig, TestCaseError, TestRng};
}

mod runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Test-runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Outcome of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic per-test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a), so each property gets a stable
        /// but distinct stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Vector length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} != {}", stringify!($left), stringify!($right)),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} == {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Rejects the current case (generates a replacement).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Declares property tests. Each accepted case regenerates all inputs;
/// failures panic with the case index (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest '{}': too many rejected cases ({} attempts)",
                        stringify!($name),
                        attempts,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            accepted,
                            msg,
                        ),
                    }
                }
            }
        )*
    };
}
