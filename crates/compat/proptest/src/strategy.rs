//! Value-generation strategies for the proptest stub.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Value` from a deterministic RNG.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Non-empty list of alternatives.
    pub fn new(options: Vec<S>) -> Union<S> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// String-literal strategies for the `[class]{m,n}` regex subset
/// (e.g. `"[a-d]{0,20}"`, `"[A-Za-z]{1,12}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self);
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{m,n}` into (alphabet, m, n). Panics on anything the
/// subset does not cover, to fail loudly rather than mis-generate.
fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bad(pattern: &str) -> ! {
        panic!("unsupported string strategy pattern: {pattern:?} (expected `[class]{{m,n}}`)")
    }
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad(pattern));
    let (class, rest) = rest.split_once(']').unwrap_or_else(|| bad(pattern));
    let rest = rest.strip_prefix('{').unwrap_or_else(|| bad(pattern));
    let counts = rest.strip_suffix('}').unwrap_or_else(|| bad(pattern));
    let (lo, hi) = counts.split_once(',').unwrap_or_else(|| bad(pattern));
    let lo: usize = lo.trim().parse().unwrap_or_else(|_| bad(pattern));
    let hi: usize = hi.trim().parse().unwrap_or_else(|_| bad(pattern));
    assert!(lo <= hi, "bad repeat bounds in {pattern:?}");

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            assert!(a <= b, "bad char range in {pattern:?}");
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    (alphabet, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (1usize..4, 0.0f32..1.0)
            .prop_flat_map(|(n, _)| crate::collection::vec(-1.0f32..1.0, n * 2));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..8).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..100 {
            let s = "[a-d]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
            let t = "[A-Za-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = crate::prop_oneof![Just('a'), Just('b')];
        for _ in 0..20 {
            assert!(matches!(strat.generate(&mut rng), 'a' | 'b'));
        }
    }
}
