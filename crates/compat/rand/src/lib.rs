//! Offline stub of `rand` (0.8-compatible API subset).
//!
//! Implements exactly the surface this workspace uses — `Rng::gen_range`
//! over half-open and inclusive numeric ranges, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}` — on top of a xoshiro256++
//! generator seeded through SplitMix64. Deterministic for a given seed
//! (though its streams differ from the real crate's ChaCha-based StdRng).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value API (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample from a range. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the workspace only seeds from `u64`).
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws a single value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t; // in [0, 1)
                let v = self.start + (self.end - self.start) * unit;
                // Guard the rare rounding-up to the open bound.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / ((1u64 << $bits) - 1) as $t; // in [0, 1]
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32 => 24, f64 => 53);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, and small; stands in for the
    /// real crate's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random slice operations (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

pub use seq::SliceRandom;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
