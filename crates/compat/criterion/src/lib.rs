//! Offline stub of `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! backed by a simple auto-calibrating wall-clock timer instead of
//! criterion's statistical machinery. Results print as
//! `group/name ... <time>/iter over <n> iters` and are also collected so
//! harnesses can read them back (see [`Criterion::take_results`]).
//!
//! Use with `harness = false` bench targets, exactly like real criterion.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark, after one calibration pass.
const TARGET: Duration = Duration::from_millis(120);

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` when grouped).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(id, f);
        self.results.push(result);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<'a>(&'a mut self, name: &str) -> BenchmarkGroup<'a> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Drains results collected so far (used by harness binaries that want
    /// to post-process timings, e.g. to emit JSON).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// Benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let result = run_bench(&full, f);
        self.criterion.results.push(result);
        self
    }

    /// Runs one benchmark with an input reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-benchmark timing driver, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) -> BenchResult {
    // Calibration pass: one iteration to estimate the per-iter cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    // Measurement pass.
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    println!(
        "bench: {id:<48} {:>12}/iter over {iters} iters",
        format_ns(ns)
    );
    BenchResult {
        id: id.to_string(),
        ns_per_iter: ns,
        iters,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_result() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "noop");
        assert!(results[0].ns_per_iter >= 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::new("f", 32), &32, |b, &n| b.iter(|| n * 2));
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results[0].id, "grp/f/32");
    }
}
