//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning `lock()`
//! signature (guard, not `Result`). Poison is recovered by taking the
//! inner value, which matches parking_lot's semantics of not propagating
//! panics through locks.

use std::sync::MutexGuard;

/// Mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn default_builds_empty() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        assert!(m.lock().is_empty());
    }
}
