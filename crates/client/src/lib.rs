//! Client library for the DeepBase inspection server.
//!
//! A thin, dependency-free wrapper around the wire protocol of
//! [`deepbase_server::wire`]: one [`Client`] per TCP connection, one
//! blocking request/response exchange per call. Engine errors arrive as
//! typed frames (stable [`DniError::code`] + display text) and are
//! reconstructed losslessly into [`ClientError::Server`]; result tables
//! decode bit-identically to the server's in-process answers (floats
//! travel as raw bits).

use deepbase::prelude::DniError;
use deepbase_relational::Table;
use deepbase_server::wire::{
    self, Request, Response, WireBudget, WirePlanStats, WireRecord, PROTOCOL_ERROR,
};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure: transport, protocol, or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(io::Error),
    /// The peer sent a frame this client could not understand (or
    /// reported a malformed frame of ours — code [`PROTOCOL_ERROR`]).
    Protocol(String),
    /// The engine rejected the request; reconstructed via
    /// [`DniError::from_wire`], so matching on the variant works exactly
    /// as it would in-process.
    Server(DniError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<wire::WireError> for ClientError {
    fn from(e: wire::WireError) -> ClientError {
        ClientError::Protocol(e.0)
    }
}

/// One INSPECT answer: the result table plus how the pass ended.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectResult {
    /// Completion-status byte (`wire::STATUS_*`).
    pub status: u8,
    /// Records the batch read before finishing.
    pub rows_read: u64,
    /// The result table.
    pub table: Table,
}

/// One BATCH answer: per-statement results plus plan counters.
#[derive(Debug)]
pub struct BatchResult {
    /// Completion-status byte (`wire::STATUS_*`), merged across passes.
    pub status: u8,
    /// Records the batch read before finishing.
    pub rows_read: u64,
    /// Plan-pipeline counters (cache hits, admission waves) — lets a
    /// remote client assert plan behavior without an in-process session.
    pub plan: WirePlanStats,
    /// Per statement, in input order: the table or its typed error.
    pub results: Vec<Result<Table, DniError>>,
}

/// A connection to an inspection server.
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame_bytes: wire::MAX_FRAME_BYTES,
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, &wire::encode_request(request))?;
        let payload = wire::read_frame(&mut self.stream, self.max_frame_bytes)?;
        let response = wire::decode_response(&payload)?;
        if let Response::Error { code, message } = &response {
            return Err(if *code == PROTOCOL_ERROR {
                ClientError::Protocol(message.clone())
            } else {
                ClientError::Server(DniError::from_wire(*code, message))
            });
        }
        Ok(response)
    }

    /// Executes one INSPECT statement with no budget.
    pub fn inspect(&mut self, statement: &str) -> Result<InspectResult, ClientError> {
        self.inspect_with_budget(statement, WireBudget::default())
    }

    /// Executes one INSPECT statement under a per-request budget
    /// (deadline / row cap / block cap; zeros mean unlimited).
    pub fn inspect_with_budget(
        &mut self,
        statement: &str,
        budget: WireBudget,
    ) -> Result<InspectResult, ClientError> {
        match self.call(&Request::Inspect {
            statement: statement.to_string(),
            budget,
        })? {
            Response::Result {
                status,
                rows_read,
                table,
            } => Ok(InspectResult {
                status,
                rows_read,
                table,
            }),
            other => Err(unexpected("RESULT", &other)),
        }
    }

    /// Executes several statements as one batch (shared extraction on
    /// the server; per-query error routing).
    pub fn batch(
        &mut self,
        statements: &[&str],
        budget: WireBudget,
    ) -> Result<BatchResult, ClientError> {
        match self.call(&Request::Batch {
            statements: statements.iter().map(|s| s.to_string()).collect(),
            budget,
        })? {
            Response::Batch {
                status,
                rows_read,
                plan,
                results,
            } => Ok(BatchResult {
                status,
                rows_read,
                plan,
                results: results
                    .into_iter()
                    .map(|r| r.map_err(|(code, msg)| DniError::from_wire(code, &msg)))
                    .collect(),
            }),
            other => Err(unexpected("BATCH", &other)),
        }
    }

    /// Renders the server-side physical plan for a statement.
    pub fn explain(&mut self, statement: &str) -> Result<String, ClientError> {
        match self.call(&Request::Explain {
            statement: statement.to_string(),
        })? {
            Response::Text(text) => Ok(text),
            other => Err(unexpected("TEXT", &other)),
        }
    }

    /// Appends records to a registered dataset as one sealed segment;
    /// returns the record count acknowledged by the server. Every
    /// connection sees the grown dataset afterwards.
    pub fn append(&mut self, dataset: &str, records: Vec<WireRecord>) -> Result<u64, ClientError> {
        match self.call(&Request::Append {
            dataset: dataset.to_string(),
            records,
        })? {
            Response::Done(count) => Ok(count),
            other => Err(unexpected("OK", &other)),
        }
    }

    /// Server + scheduler counters, rendered as text.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Text(text) => Ok(text),
            other => Err(unexpected("TEXT", &other)),
        }
    }

    /// Asks the server to drain and shut down; returns once the server
    /// acknowledged (the drain completes server-side after the ack).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Done(_) => Ok(()),
            other => Err(unexpected("OK", &other)),
        }
    }

    /// Materializes one INSPECT statement as a named durable view on the
    /// server (full segmented pass; replaces an existing view of the
    /// same name).
    pub fn create_view(&mut self, name: &str, statement: &str) -> Result<(), ClientError> {
        match self.call(&Request::ViewCreate {
            name: name.to_string(),
            statement: statement.to_string(),
        })? {
            Response::Done(_) => Ok(()),
            other => Err(unexpected("OK", &other)),
        }
    }

    /// Replays a fresh view's stored frame — zero extraction, zero store
    /// scans server-side; bit-identical to executing the statement cold.
    /// A stale view comes back as `ClientError::Server(DniError::ViewStale)`.
    pub fn read_view(&mut self, name: &str) -> Result<Table, ClientError> {
        match self.call(&Request::ViewRead {
            name: name.to_string(),
        })? {
            Response::Result { table, .. } => Ok(table),
            other => Err(unexpected("RESULT", &other)),
        }
    }

    /// Brings a view up to date. The answer distinguishes the three
    /// outcomes: already fresh ([`ViewRefreshOutcome::Noop`]), appended
    /// segments folded in incrementally, or a full rebuild.
    pub fn refresh_view(&mut self, name: &str) -> Result<ViewRefreshOutcome, ClientError> {
        match self.call(&Request::ViewRefresh {
            name: name.to_string(),
        })? {
            Response::Done(wire::REFRESH_NOOP) => Ok(ViewRefreshOutcome::Noop),
            Response::Done(wire::REFRESH_REBUILT) => Ok(ViewRefreshOutcome::Rebuilt),
            Response::Done(n) => Ok(ViewRefreshOutcome::Incremental { new_segments: n }),
            other => Err(unexpected("OK", &other)),
        }
    }

    /// Deletes a view; returns whether one existed.
    pub fn drop_view(&mut self, name: &str) -> Result<bool, ClientError> {
        match self.call(&Request::ViewDrop {
            name: name.to_string(),
        })? {
            Response::Done(existed) => Ok(existed != 0),
            other => Err(unexpected("OK", &other)),
        }
    }

    /// Lists every view with its freshness: `(name, freshness,
    /// normalized statement)` per entry, decoded from the server's
    /// tab-separated rendering.
    pub fn list_views(&mut self) -> Result<Vec<(String, String, String)>, ClientError> {
        match self.call(&Request::ViewList)? {
            Response::Text(text) => Ok(text
                .lines()
                .filter(|line| !line.is_empty())
                .map(|line| {
                    let mut parts = line.splitn(3, '\t');
                    (
                        parts.next().unwrap_or_default().to_string(),
                        parts.next().unwrap_or_default().to_string(),
                        parts.next().unwrap_or_default().to_string(),
                    )
                })
                .collect()),
            other => Err(unexpected("TEXT", &other)),
        }
    }
}

/// How a [`Client::refresh_view`] call was satisfied server-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewRefreshOutcome {
    /// Every input was unchanged; nothing ran.
    Noop,
    /// Only the appended segments were streamed and folded in.
    Incremental {
        /// Number of new segments folded into the stored states.
        new_segments: u64,
    },
    /// An input other than dataset growth changed; full rebuild.
    Rebuilt,
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    let kind = match got {
        Response::Result { .. } => "RESULT",
        Response::Text(_) => "TEXT",
        Response::Error { .. } => "ERROR",
        Response::Done(_) => "OK",
        Response::Batch { .. } => "BATCH",
    };
    ClientError::Protocol(format!("expected a {wanted} frame, got {kind}"))
}
