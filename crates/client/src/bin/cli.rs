//! `deepbase-cli`: command-line client for the inspection server.
//!
//! ```text
//! deepbase-cli ADDR inspect STATEMENT [--deadline-ms N]
//!                                     [--max-records N] [--max-blocks N]
//! deepbase-cli ADDR explain STATEMENT
//! deepbase-cli ADDR view-create NAME STATEMENT
//! deepbase-cli ADDR view-read NAME
//! deepbase-cli ADDR view-refresh NAME
//! deepbase-cli ADDR view-drop NAME
//! deepbase-cli ADDR view-list
//! deepbase-cli ADDR stats
//! deepbase-cli ADDR shutdown
//! ```

use deepbase_client::{Client, ViewRefreshOutcome};
use deepbase_server::wire::{status_name, WireBudget};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: deepbase-cli ADDR COMMAND\n\
         commands:\n  \
         inspect STATEMENT [--deadline-ms N] [--max-records N] [--max-blocks N]\n  \
         explain STATEMENT\n  \
         view-create NAME STATEMENT\n  \
         view-read NAME\n  \
         view-refresh NAME\n  \
         view-drop NAME\n  \
         view-list\n  \
         stats\n  \
         shutdown"
    );
    exit(2)
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("deepbase-cli: {message}");
    exit(1)
}

fn num(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => fail(format!("{flag} needs a numeric argument")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(addr), Some(command)) = (args.next(), args.next()) else {
        usage()
    };
    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => fail(format!("could not connect to {addr}: {e}")),
    };
    match command.as_str() {
        "inspect" => {
            let Some(statement) = args.next() else {
                usage()
            };
            let mut budget = WireBudget::default();
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--deadline-ms" => budget.deadline_ms = num(&flag, args.next()),
                    "--max-records" => budget.max_records = num(&flag, args.next()),
                    "--max-blocks" => budget.max_blocks = num(&flag, args.next()),
                    other => fail(format!("unknown inspect flag {other}")),
                }
            }
            match client.inspect_with_budget(&statement, budget) {
                Ok(result) => {
                    print!("{}", result.table.render(50));
                    println!(
                        "-- {} rows, {} records read, {}",
                        result.table.len(),
                        result.rows_read,
                        status_name(result.status)
                    );
                }
                Err(e) => fail(e),
            }
        }
        "explain" => {
            let Some(statement) = args.next() else {
                usage()
            };
            match client.explain(&statement) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(e),
            }
        }
        "view-create" => {
            let (Some(name), Some(statement)) = (args.next(), args.next()) else {
                usage()
            };
            match client.create_view(&name, &statement) {
                Ok(()) => println!("view {name} materialized"),
                Err(e) => fail(e),
            }
        }
        "view-read" => {
            let Some(name) = args.next() else { usage() };
            match client.read_view(&name) {
                Ok(table) => {
                    print!("{}", table.render(50));
                    println!("-- {} rows, replayed from view {name}", table.len());
                }
                Err(e) => fail(e),
            }
        }
        "view-refresh" => {
            let Some(name) = args.next() else { usage() };
            match client.refresh_view(&name) {
                Ok(ViewRefreshOutcome::Noop) => println!("view {name} already fresh"),
                Ok(ViewRefreshOutcome::Incremental { new_segments }) => {
                    println!("view {name} folded {new_segments} new segments")
                }
                Ok(ViewRefreshOutcome::Rebuilt) => println!("view {name} rebuilt"),
                Err(e) => fail(e),
            }
        }
        "view-drop" => {
            let Some(name) = args.next() else { usage() };
            match client.drop_view(&name) {
                Ok(true) => println!("view {name} dropped"),
                Ok(false) => println!("view {name} did not exist"),
                Err(e) => fail(e),
            }
        }
        "view-list" => match client.list_views() {
            Ok(views) if views.is_empty() => println!("no views"),
            Ok(views) => {
                for (name, freshness, statement) in views {
                    println!("{name} [{freshness}] {statement}");
                }
            }
            Err(e) => fail(e),
        },
        "stats" => match client.stats() {
            Ok(text) => print!("{text}"),
            Err(e) => fail(e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => println!("server draining"),
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}
