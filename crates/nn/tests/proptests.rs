//! Property-based tests for the NN substrate: output invariants that must
//! hold for arbitrary inputs and seeds (probability simplexes, bounded
//! activations, determinism, extraction layout).

use deepbase_nn::{one_hot_batch, CharLstmModel, OutputMode, Seq2Seq};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn char_model_proba_is_distribution(
        seed in 0u64..1000,
        ids in proptest::collection::vec(0u32..5, 1..12),
    ) {
        let model = CharLstmModel::new(5, 6, OutputMode::LastStep, seed);
        let p = model.predict_proba(&ids);
        prop_assert_eq!(p.len(), 5);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn lstm_activations_bounded(
        seed in 0u64..1000,
        ids in proptest::collection::vec(0u32..4, 2..16),
    ) {
        let model = CharLstmModel::new(4, 8, OutputMode::LastStep, seed);
        let acts = model.extract_activations(std::slice::from_ref(&ids));
        prop_assert_eq!(acts.shape(), (ids.len(), 8));
        // h = o * tanh(c) is bounded by 1 in magnitude.
        prop_assert!(acts.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn extraction_is_deterministic(seed in 0u64..500) {
        let model = CharLstmModel::new(4, 6, OutputMode::EveryStep, seed);
        let inputs = vec![vec![0u32, 1, 2, 3], vec![3u32, 2, 1, 0]];
        let a = model.extract_activations(&inputs);
        let b = model.extract_activations(&inputs);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn extraction_row_layout_is_record_major(
        seed in 0u64..200,
        n_records in 1usize..4,
    ) {
        let model = CharLstmModel::new(3, 5, OutputMode::LastStep, seed);
        let inputs: Vec<Vec<u32>> =
            (0..n_records).map(|i| (0..6).map(|t| ((i + t) % 3) as u32).collect()).collect();
        let all = model.extract_activations(&inputs);
        // Extracting one record alone gives the same rows.
        for (i, input) in inputs.iter().enumerate() {
            let single = model.extract_activations(std::slice::from_ref(input));
            for t in 0..6 {
                prop_assert_eq!(single.row(t), all.row(i * 6 + t));
            }
        }
    }

    #[test]
    fn one_hot_rows_sum_to_one(ids in proptest::collection::vec(0u32..7, 1..20)) {
        let m = one_hot_batch(&ids, 7);
        for r in 0..m.rows() {
            prop_assert_eq!(m.row(r).iter().sum::<f32>(), 1.0);
        }
    }

    #[test]
    fn seq2seq_translate_is_bounded_and_deterministic(
        seed in 0u64..200,
        src in proptest::collection::vec(4u32..10, 1..6),
    ) {
        let model = Seq2Seq::new(12, 12, 4, 4, seed);
        let a = model.translate(&src, 8);
        let b = model.translate(&src, 8);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() <= 8);
        prop_assert!(a.iter().all(|&t| t < 12));
    }

    #[test]
    fn encoder_activation_shape_matches_source(
        seed in 0u64..200,
        src in proptest::collection::vec(4u32..10, 1..8),
    ) {
        let model = Seq2Seq::new(12, 12, 4, 5, seed);
        let acts = model.encoder_activations_all(&src);
        prop_assert_eq!(acts.shape(), (src.len(), 10));
        prop_assert!(acts.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_step_keeps_parameters_finite(
        seed in 0u64..100,
        ids in proptest::collection::vec(0u32..4, 4..10),
    ) {
        let mut model = CharLstmModel::new(4, 6, OutputMode::LastStep, seed);
        let target = ids[0];
        let loss = model.train_batch_last(std::slice::from_ref(&ids), &[target], 0.05);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        let acts = model.extract_activations(&[ids]);
        prop_assert!(acts.as_slice().iter().all(|v| v.is_finite()));
    }
}
