//! Adam optimizer state for a single parameter matrix.
//!
//! Each layer owns one `Adam` per parameter; the training loops call
//! `step` with the accumulated gradient. Keras' default hyper-parameters
//! (β₁ = 0.9, β₂ = 0.999, ε = 1e-8) are baked in, matching the paper's
//! training setup.

use deepbase_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Adam moment estimates for one parameter matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    m: Matrix,
    v: Matrix,
    t: u64,
}

impl Adam {
    /// Creates zeroed state for a `rows x cols` parameter.
    pub fn new(rows: usize, cols: usize) -> Self {
        Adam {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
        }
    }

    /// Applies one Adam update of `param` using `grad`.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix, lr: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        debug_assert_eq!(param.shape(), grad.shape(), "adam shape mismatch");
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - B1.powf(t);
        let bias2 = 1.0 - B2.powf(t);
        let (ms, vs) = (self.m.as_mut_slice(), self.v.as_mut_slice());
        let ps = param.as_mut_slice();
        let gs = grad.as_slice();
        for i in 0..gs.len() {
            ms[i] = B1 * ms[i] + (1.0 - B1) * gs[i];
            vs[i] = B2 * vs[i] + (1.0 - B2) * gs[i] * gs[i];
            ps[i] -= lr * (ms[i] / bias1) / ((vs[i] / bias2).sqrt() + EPS);
        }
    }

    /// Number of updates applied.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize f(w) = (w - 3)^2 elementwise; gradient 2(w - 3).
        let mut w = Matrix::full(2, 2, 10.0);
        let mut opt = Adam::new(2, 2);
        for _ in 0..2000 {
            let grad = w.map(|x| 2.0 * (x - 3.0));
            opt.step(&mut w, &grad, 0.05);
        }
        for &v in w.as_slice() {
            assert!((v - 3.0).abs() < 0.05, "converged to {v}");
        }
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Adam's bias correction makes the first step ≈ lr * sign(grad).
        let mut w = Matrix::zeros(1, 1);
        let mut opt = Adam::new(1, 1);
        let grad = Matrix::full(1, 1, 123.0);
        opt.step(&mut w, &grad, 0.01);
        assert!(
            (w.get(0, 0) + 0.01).abs() < 1e-4,
            "step was {}",
            w.get(0, 0)
        );
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn zero_gradient_keeps_param() {
        let mut w = Matrix::full(1, 3, 5.0);
        let mut opt = Adam::new(1, 3);
        opt.step(&mut w, &Matrix::zeros(1, 3), 0.1);
        for &v in w.as_slice() {
            assert!((v - 5.0).abs() < 1e-6);
        }
    }
}
