//! Sequence-to-sequence encoder–decoder with dot-product attention: the
//! stand-in for the OpenNMT English→German model of paper §6.3.
//!
//! The architecture mirrors the paper's description: two LSTM layers in
//! the encoder, two in the decoder, plus an attention module on the
//! decoder (Luong-style dot-product attention over the top encoder layer).
//! DeepBase's NMT analyses probe the *encoder* hidden states, which
//! [`Seq2Seq::encoder_activations`] exposes per layer.

use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::lstm::{Lstm, LstmCache};
use deepbase_tensor::{init, ops, Matrix};
use serde::{Deserialize, Serialize};

/// Encoder–decoder translation model (trained one sentence pair at a time,
/// which suits the short synthetic corpus).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Seq2Seq {
    hidden: usize,
    /// Construction-time metadata, retained for future serialization.
    #[allow(dead_code)]
    emb_dim: usize,
    /// Construction-time metadata, retained for future serialization.
    #[allow(dead_code)]
    tgt_vocab: usize,
    src_emb: Embedding,
    tgt_emb: Embedding,
    enc1: Lstm,
    enc2: Lstm,
    dec1: Lstm,
    dec2: Lstm,
    /// Combines `[h_t | context]` into the attentional hidden state.
    attn_combine: Dense,
    out: Dense,
}

/// Beginning-of-sequence id fed to the decoder (matches
/// `deepbase_lang::corpus::BOS_ID`).
pub const BOS: u32 = 1;
/// End-of-sequence id (matches `deepbase_lang::corpus::EOS_ID`).
pub const EOS: u32 = 2;

impl Seq2Seq {
    /// Creates a model. `hidden` is the per-layer unit count the paper's
    /// probes inspect (500 in the paper; scale down for experiments).
    pub fn new(
        src_vocab: usize,
        tgt_vocab: usize,
        emb_dim: usize,
        hidden: usize,
        seed: u64,
    ) -> Self {
        let mut rng = init::seeded_rng(seed);
        Seq2Seq {
            hidden,
            emb_dim,
            tgt_vocab,
            src_emb: Embedding::new(src_vocab, emb_dim, &mut rng),
            tgt_emb: Embedding::new(tgt_vocab, emb_dim, &mut rng),
            enc1: Lstm::new(emb_dim, hidden, &mut rng),
            enc2: Lstm::new(hidden, hidden, &mut rng),
            dec1: Lstm::new(emb_dim, hidden, &mut rng),
            dec2: Lstm::new(hidden, hidden, &mut rng),
            attn_combine: Dense::new(2 * hidden, hidden, &mut rng),
            out: Dense::new(hidden, tgt_vocab, &mut rng),
        }
    }

    /// Hidden width per layer.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the encoder stack, returning both layer caches.
    fn encode(&self, src: &[u32]) -> (LstmCache, LstmCache) {
        let xs: Vec<Matrix> = src.iter().map(|&id| self.src_emb.forward(&[id])).collect();
        let enc1 = self.enc1.forward(&xs);
        let enc2 = self.enc2.forward(&enc1.hs);
        (enc1, enc2)
    }

    /// Encoder hidden states per layer for a source sentence: two
    /// `src_len x hidden` matrices (layer 0, layer 1). These are the unit
    /// behaviors the paper's POS probes consume (§6.3.1: "trained from the
    /// encoder's hidden layer activations").
    pub fn encoder_activations(&self, src: &[u32]) -> (Matrix, Matrix) {
        let (enc1, enc2) = self.encode(src);
        (stack_states(&enc1.hs), stack_states(&enc2.hs))
    }

    /// Both encoder layers side by side (`src_len x 2*hidden`), the "all
    /// 1000 units" view of Fig. 12.
    pub fn encoder_activations_all(&self, src: &[u32]) -> Matrix {
        let (l0, l1) = self.encoder_activations(src);
        l0.hstack(&l1).expect("encoder layers share src_len")
    }

    /// One training step (teacher forcing) on a sentence pair; returns the
    /// mean cross-entropy per target token.
    pub fn train_pair(&mut self, src: &[u32], tgt: &[u32], lr: f32) -> f32 {
        assert!(!src.is_empty() && !tgt.is_empty(), "empty sentence");
        let (enc1, enc2) = self.encode(src);
        let src_len = src.len();
        let tgt_len = tgt.len();

        // Decoder inputs: BOS followed by all but the last target token.
        let dec_ids: Vec<u32> = std::iter::once(BOS)
            .chain(tgt.iter().copied().take(tgt_len - 1))
            .collect();
        let dec_xs: Vec<Matrix> = dec_ids
            .iter()
            .map(|&id| self.tgt_emb.forward(&[id]))
            .collect();
        let dec1 = self
            .dec1
            .forward_from(&dec_xs, enc1.final_h().clone(), enc1.final_c().clone());
        let dec2 = self
            .dec2
            .forward_from(&dec1.hs, enc2.final_h().clone(), enc2.final_c().clone());

        // Attention + output per decoder step, caching what backward needs.
        let mut total_loss = 0.0f32;
        let mut dh_dec2 = vec![Matrix::zeros(1, self.hidden); tgt_len];
        let mut denc2_hs = vec![Matrix::zeros(1, self.hidden); src_len];
        let inv_t = 1.0 / tgt_len as f32;

        for t in 0..tgt_len {
            let h_t = &dec2.hs[t];
            // Dot-product attention over the top encoder layer.
            let mut scores = vec![0.0f32; src_len];
            for (j, enc_h) in enc2.hs.iter().enumerate() {
                scores[j] = dot(h_t.row(0), enc_h.row(0));
            }
            let mut alpha = scores.clone();
            ops::softmax_slice(&mut alpha);
            let mut ctx = Matrix::zeros(1, self.hidden);
            for (j, enc_h) in enc2.hs.iter().enumerate() {
                ctx.add_scaled(enc_h, alpha[j]);
            }
            let concat = h_t.hstack(&ctx).expect("attention concat");
            let comb_pre = self.attn_combine.forward(&concat);
            let comb = comb_pre.map(f32::tanh);
            let logits = self.out.forward(&comb);
            let probs = ops::softmax_rows(&logits);
            let target = tgt[t] as usize;
            total_loss += -probs.get(0, target).max(1e-12).ln();

            // ---- backward through this step's head ----
            let mut dlogits = probs;
            let v = dlogits.get(0, target);
            dlogits.set(0, target, v - 1.0);
            dlogits.scale_inplace(inv_t);
            let dcomb = self.out.backward(&comb, &dlogits);
            let dcomb_pre = dcomb
                .zip_map(&comb, |d, c| d * (1.0 - c * c))
                .expect("tanh grad");
            let dconcat = self.attn_combine.backward(&concat, &dcomb_pre);
            let mut dh_t = Matrix::zeros(1, self.hidden);
            let mut dctx = Matrix::zeros(1, self.hidden);
            for k in 0..self.hidden {
                dh_t.set(0, k, dconcat.get(0, k));
                dctx.set(0, k, dconcat.get(0, self.hidden + k));
            }
            // ctx = sum_j alpha_j enc_j.
            let mut dalpha = vec![0.0f32; src_len];
            for (j, enc_h) in enc2.hs.iter().enumerate() {
                dalpha[j] = dot(dctx.row(0), enc_h.row(0));
                denc2_hs[j].add_scaled(&dctx, alpha[j]);
            }
            // Softmax backward: dscore_j = alpha_j (dalpha_j - sum_k alpha_k dalpha_k).
            let dot_ad: f32 = alpha.iter().zip(dalpha.iter()).map(|(a, d)| a * d).sum();
            for j in 0..src_len {
                let dscore = alpha[j] * (dalpha[j] - dot_ad);
                dh_t.add_scaled(&enc2.hs[j], dscore);
                denc2_hs[j].add_scaled(h_t, dscore);
            }
            dh_dec2[t] = dh_t;
        }

        // ---- backward through the recurrent stacks ----
        let (d_dec1_hs, dh0_dec2, dc0_dec2) = self.dec2.backward(&dec2, &dh_dec2, None);
        let (d_dec_xs, dh0_dec1, dc0_dec1) = self.dec1.backward(&dec1, &d_dec1_hs, None);
        for (t, dx) in d_dec_xs.iter().enumerate() {
            self.tgt_emb.backward(&[dec_ids[t]], dx);
        }
        // Decoder initial states came from encoder finals.
        let (d_enc1_hs, _, _) = self
            .enc2
            .backward(&enc2, &denc2_hs, Some((&dh0_dec2, &dc0_dec2)));
        let (d_src_xs, _, _) = self
            .enc1
            .backward(&enc1, &d_enc1_hs, Some((&dh0_dec1, &dc0_dec1)));
        for (t, dx) in d_src_xs.iter().enumerate() {
            self.src_emb.backward(&[src[t]], dx);
        }

        let scale = 1.0;
        self.src_emb.apply_grads(lr, scale);
        self.tgt_emb.apply_grads(lr, scale);
        self.enc1.apply_grads(lr, scale);
        self.enc2.apply_grads(lr, scale);
        self.dec1.apply_grads(lr, scale);
        self.dec2.apply_grads(lr, scale);
        self.attn_combine.apply_grads(lr, scale);
        self.out.apply_grads(lr, scale);

        total_loss * inv_t
    }

    /// Greedy decoding up to `max_len` tokens (stops at EOS).
    pub fn translate(&self, src: &[u32], max_len: usize) -> Vec<u32> {
        let (enc1, enc2) = self.encode(src);
        let mut h1 = enc1.final_h().clone();
        let mut c1 = enc1.final_c().clone();
        let mut h2 = enc2.final_h().clone();
        let mut c2 = enc2.final_c().clone();
        let mut output = Vec::new();
        let mut prev = BOS;
        for _ in 0..max_len {
            let x = self.tgt_emb.forward(&[prev]);
            let step1 = self.dec1.forward_from(&[x], h1, c1);
            let step2 = self.dec2.forward_from(&[step1.hs[0].clone()], h2, c2);
            let h_t = &step2.hs[0];
            // Attention, as in training.
            let mut scores: Vec<f32> = enc2.hs.iter().map(|e| dot(h_t.row(0), e.row(0))).collect();
            ops::softmax_slice(&mut scores);
            let mut ctx = Matrix::zeros(1, self.hidden);
            for (j, enc_h) in enc2.hs.iter().enumerate() {
                ctx.add_scaled(enc_h, scores[j]);
            }
            let concat = h_t.hstack(&ctx).expect("attention concat");
            let comb = self.attn_combine.forward(&concat).map(f32::tanh);
            let logits = self.out.forward(&comb);
            let next = logits.argmax_rows()[0] as u32;
            h1 = step1.final_h().clone();
            c1 = step1.final_c().clone();
            h2 = step2.final_h().clone();
            c2 = step2.final_c().clone();
            if next == EOS {
                break;
            }
            output.push(next);
            prev = next;
        }
        output
    }

    /// Mean per-token loss without updating parameters (validation).
    pub fn evaluate_pair(&self, src: &[u32], tgt: &[u32]) -> f32 {
        let (enc1, enc2) = self.encode(src);
        let dec_ids: Vec<u32> = std::iter::once(BOS)
            .chain(tgt.iter().copied().take(tgt.len() - 1))
            .collect();
        let dec_xs: Vec<Matrix> = dec_ids
            .iter()
            .map(|&id| self.tgt_emb.forward(&[id]))
            .collect();
        let dec1 = self
            .dec1
            .forward_from(&dec_xs, enc1.final_h().clone(), enc1.final_c().clone());
        let dec2 = self
            .dec2
            .forward_from(&dec1.hs, enc2.final_h().clone(), enc2.final_c().clone());
        let mut total = 0.0f32;
        for (t, &tgt_tok) in tgt.iter().enumerate() {
            let h_t = &dec2.hs[t];
            let mut scores: Vec<f32> = enc2.hs.iter().map(|e| dot(h_t.row(0), e.row(0))).collect();
            ops::softmax_slice(&mut scores);
            let mut ctx = Matrix::zeros(1, self.hidden);
            for (j, enc_h) in enc2.hs.iter().enumerate() {
                ctx.add_scaled(enc_h, scores[j]);
            }
            let concat = h_t.hstack(&ctx).expect("attention concat");
            let comb = self.attn_combine.forward(&concat).map(f32::tanh);
            let probs = ops::softmax_rows(&self.out.forward(&comb));
            total += -probs.get(0, tgt_tok as usize).max(1e-12).ln();
        }
        total / tgt.len() as f32
    }
}

fn stack_states(hs: &[Matrix]) -> Matrix {
    let hidden = hs.first().map(|h| h.cols()).unwrap_or(0);
    let mut out = Matrix::zeros(hs.len(), hidden);
    for (t, h) in hs.iter().enumerate() {
        out.row_mut(t).copy_from_slice(h.row(0));
    }
    out
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny copy-ish corpus: target is source shifted by a fixed mapping.
    fn toy_pairs() -> Vec<(Vec<u32>, Vec<u32>)> {
        // Vocab: 0..10 (0=pad,1=bos,2=eos reserved); map token k -> k+1.
        (0..8)
            .map(|s| {
                let src: Vec<u32> = (0..4).map(|i| 4 + ((s + i) % 5) as u32).collect();
                let mut tgt: Vec<u32> = src.iter().map(|&t| t + 1).collect();
                tgt.push(EOS);
                (src, tgt)
            })
            .collect()
    }

    #[test]
    fn encoder_activation_shapes() {
        let model = Seq2Seq::new(12, 12, 8, 6, 0);
        let (l0, l1) = model.encoder_activations(&[4, 5, 6]);
        assert_eq!(l0.shape(), (3, 6));
        assert_eq!(l1.shape(), (3, 6));
        assert_eq!(model.encoder_activations_all(&[4, 5, 6]).shape(), (3, 12));
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = Seq2Seq::new(12, 12, 8, 16, 1);
        let pairs = toy_pairs();
        let first: f32 = pairs
            .iter()
            .map(|(s, t)| model.evaluate_pair(s, t))
            .sum::<f32>()
            / pairs.len() as f32;
        for _ in 0..60 {
            for (s, t) in &pairs {
                model.train_pair(s, t, 0.01);
            }
        }
        let last: f32 = pairs
            .iter()
            .map(|(s, t)| model.evaluate_pair(s, t))
            .sum::<f32>()
            / pairs.len() as f32;
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn learns_token_mapping() {
        let mut model = Seq2Seq::new(12, 12, 8, 16, 2);
        let pairs = toy_pairs();
        for _ in 0..150 {
            for (s, t) in &pairs {
                model.train_pair(s, t, 0.01);
            }
        }
        // Greedy decode of a training pair should reproduce the target.
        let (src, tgt) = &pairs[0];
        let hyp = model.translate(src, 10);
        let expect: Vec<u32> = tgt.iter().copied().filter(|&t| t != EOS).collect();
        let correct = hyp
            .iter()
            .zip(expect.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            correct * 2 >= expect.len(),
            "decode {hyp:?} vs {expect:?} ({correct} correct)"
        );
    }

    #[test]
    fn translate_stops_at_eos_or_limit() {
        let model = Seq2Seq::new(12, 12, 4, 4, 3);
        let out = model.translate(&[4, 5], 7);
        assert!(out.len() <= 7);
        assert!(out.iter().all(|&t| t != EOS));
    }

    #[test]
    fn trained_and_untrained_activations_differ() {
        let mut trained = Seq2Seq::new(12, 12, 8, 8, 4);
        let untrained = Seq2Seq::new(12, 12, 8, 8, 4);
        for _ in 0..20 {
            for (s, t) in &toy_pairs() {
                trained.train_pair(s, t, 0.02);
            }
        }
        let src = vec![4u32, 5, 6];
        let a = trained.encoder_activations_all(&src);
        let b = untrained.encoder_activations_all(&src);
        assert!(
            !a.approx_eq(&b, 1e-3),
            "training must change encoder activations"
        );
    }

    #[test]
    fn deterministic_construction() {
        let a = Seq2Seq::new(10, 10, 4, 4, 7);
        let b = Seq2Seq::new(10, 10, 4, 4, 7);
        let src = vec![3u32, 4];
        assert_eq!(
            a.encoder_activations_all(&src).as_slice(),
            b.encoder_activations_all(&src).as_slice()
        );
    }
}
