//! The character-level recurrent language model of the paper's running
//! example (§2.1): a one-hot input layer, one LSTM layer, and a dense
//! softmax output that predicts the next character of a fixed-length
//! window. Also implements the Appendix C *specialized* training mode,
//! where an auxiliary loss forces a chosen subset of hidden units to track
//! a hypothesis behavior (`loss = w * aux + (1 - w) * task`).

use crate::dense::Dense;
use crate::embedding::one_hot_batch;
use crate::lstm::{Lstm, LstmCache};
use deepbase_tensor::{init, ops, Matrix};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Where the prediction loss applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputMode {
    /// Predict a single next character from the final hidden state (the
    /// SQL auto-completion setup: window in, next char out).
    LastStep,
    /// Predict the next character at every position (char-level LM, used
    /// by the Appendix C parentheses model).
    EveryStep,
}

/// The char-RNN model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharLstmModel {
    vocab_size: usize,
    hidden: usize,
    mode: OutputMode,
    lstm: Lstm,
    out: Dense,
}

/// Auxiliary-loss specification for Appendix C unit specialization.
#[derive(Debug, Clone)]
pub struct Specialization {
    /// Indices of the specialized hidden units `S ⊆ M`.
    pub units: Vec<usize>,
    /// Mixing weight `w` of the auxiliary loss (0 = pure task loss).
    pub weight: f32,
}

impl CharLstmModel {
    /// Creates a model with the given vocabulary and hidden width.
    pub fn new(vocab_size: usize, hidden: usize, mode: OutputMode, seed: u64) -> Self {
        let mut rng = init::seeded_rng(seed);
        CharLstmModel {
            vocab_size,
            hidden,
            mode,
            lstm: Lstm::new(vocab_size, hidden, &mut rng),
            out: Dense::new(hidden, vocab_size, &mut rng),
        }
    }

    /// Hidden width (number of inspectable units).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Output mode.
    pub fn mode(&self) -> OutputMode {
        self.mode
    }

    /// Visits every trainable parameter matrix in a fixed order (LSTM
    /// projections and bias, then the output layer). Used to fingerprint
    /// the model's weights for the persistent behavior store: two models
    /// visit identical sequences iff their parameters are bit-identical.
    pub fn visit_params(&self, mut f: impl FnMut(&Matrix)) {
        for m in self.lstm.params() {
            f(m);
        }
        f(self.out.weights());
        f(self.out.bias());
    }

    /// Runs the recurrent stack over a batch of equal-length id sequences,
    /// returning the LSTM cache (whose `hs` are the unit behaviors).
    pub fn run(&self, inputs: &[Vec<u32>]) -> LstmCache {
        let steps = inputs.first().map(|s| s.len()).unwrap_or(0);
        debug_assert!(inputs.iter().all(|s| s.len() == steps), "ragged batch");
        let xs: Vec<Matrix> = (0..steps)
            .map(|t| {
                let ids: Vec<u32> = inputs.iter().map(|s| s[t]).collect();
                one_hot_batch(&ids, self.vocab_size)
            })
            .collect();
        self.lstm.forward(&xs)
    }

    /// Hidden-unit activations for a batch, flattened record-major:
    /// row `r * steps + t` holds the activations of record `r` at symbol
    /// `t`. This is the `|D|·ns x |U|` behavior matrix of paper §5.1.2.
    pub fn extract_activations(&self, inputs: &[Vec<u32>]) -> Matrix {
        let cache = self.run(inputs);
        let steps = cache.len();
        let batch = inputs.len();
        let mut out = Matrix::zeros(batch * steps, self.hidden);
        for (t, h) in cache.hs.iter().enumerate() {
            for r in 0..batch {
                out.row_mut(r * steps + t).copy_from_slice(h.row(r));
            }
        }
        out
    }

    /// Next-character distribution for one input window.
    pub fn predict_proba(&self, input: &[u32]) -> Vec<f32> {
        let cache = self.run(&[input.to_vec()]);
        let logits = self.out.forward(cache.final_h());
        ops::softmax_rows(&logits).row(0).to_vec()
    }

    /// Greedy next-character prediction.
    pub fn predict(&self, input: &[u32]) -> u32 {
        let proba = self.predict_proba(input);
        proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Classification accuracy on `(window, next_char)` pairs
    /// ([`OutputMode::LastStep`] semantics).
    pub fn accuracy(&self, inputs: &[Vec<u32>], targets: &[u32]) -> f32 {
        assert_eq!(inputs.len(), targets.len());
        if inputs.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for chunk_start in (0..inputs.len()).step_by(256) {
            let end = (chunk_start + 256).min(inputs.len());
            let cache = self.run(&inputs[chunk_start..end]);
            let logits = self.out.forward(cache.final_h());
            let preds = logits.argmax_rows();
            for (p, &t) in preds.iter().zip(&targets[chunk_start..end]) {
                if *p == t as usize {
                    correct += 1;
                }
            }
        }
        correct as f32 / inputs.len() as f32
    }

    /// One gradient step on a [`OutputMode::LastStep`] batch; returns the
    /// mean cross-entropy loss.
    pub fn train_batch_last(&mut self, inputs: &[Vec<u32>], targets: &[u32], lr: f32) -> f32 {
        assert_eq!(self.mode, OutputMode::LastStep, "wrong output mode");
        assert_eq!(inputs.len(), targets.len());
        let batch = inputs.len();
        let steps = inputs[0].len();
        let cache = self.run(inputs);
        let logits = self.out.forward(cache.final_h());
        let probs = ops::softmax_rows(&logits);
        let target_idx: Vec<usize> = targets.iter().map(|&t| t as usize).collect();
        let loss = ops::cross_entropy_rows(&probs, &target_idx);

        let mut dlogits = probs;
        for (r, &t) in target_idx.iter().enumerate() {
            let v = dlogits.get(r, t);
            dlogits.set(r, t, v - 1.0);
        }
        let dh_last = self.out.backward(cache.final_h(), &dlogits);
        let mut dh = vec![Matrix::zeros(0, 0); steps];
        dh[steps - 1] = dh_last;
        self.lstm.backward(&cache, &dh, None);
        let scale = 1.0 / batch as f32;
        self.lstm.apply_grads(lr, scale);
        self.out.apply_grads(lr, scale);
        loss
    }

    /// One gradient step on an [`OutputMode::EveryStep`] batch, optionally
    /// with Appendix C specialization. `aux_targets[r][t]` is the
    /// hypothesis behavior the specialized units should emit. Returns the
    /// mean combined loss.
    pub fn train_batch_every(
        &mut self,
        inputs: &[Vec<u32>],
        targets: &[Vec<u32>],
        specialization: Option<(&Specialization, &[Vec<f32>])>,
        lr: f32,
    ) -> f32 {
        assert_eq!(self.mode, OutputMode::EveryStep, "wrong output mode");
        assert_eq!(inputs.len(), targets.len());
        let batch = inputs.len();
        let steps = inputs[0].len();
        let cache = self.run(inputs);

        let (task_w, aux_w) = match &specialization {
            Some((spec, _)) => (1.0 - spec.weight, spec.weight),
            None => (1.0, 0.0),
        };

        let mut total_loss = 0.0f32;
        let mut dh: Vec<Matrix> = Vec::with_capacity(steps);
        for t in 0..steps {
            let h = &cache.hs[t];
            let logits = self.out.forward(h);
            let probs = ops::softmax_rows(&logits);
            let target_idx: Vec<usize> = targets.iter().map(|s| s[t] as usize).collect();
            total_loss += task_w * ops::cross_entropy_rows(&probs, &target_idx);

            let mut dlogits = probs;
            for (r, &tt) in target_idx.iter().enumerate() {
                let v = dlogits.get(r, tt);
                dlogits.set(r, tt, v - 1.0);
            }
            dlogits.scale_inplace(task_w / steps as f32);
            let mut dh_t = self.out.backward(h, &dlogits);

            // Auxiliary specialization loss: MSE between the chosen units'
            // activations and the hypothesis behavior at this symbol.
            // Gradients here are per-example sums; apply_grads divides by
            // the batch size, completing the mean.
            if let Some((spec, aux)) = &specialization {
                let denom = (steps * spec.units.len().max(1)) as f32;
                for r in 0..batch {
                    let b_target = aux[r][t];
                    for &u in &spec.units {
                        let diff = h.get(r, u) - b_target;
                        total_loss += aux_w * diff * diff / (denom * batch as f32);
                        let v = dh_t.get(r, u);
                        dh_t.set(r, u, v + aux_w * 2.0 * diff / denom);
                    }
                }
            }
            dh.push(dh_t);
        }

        self.lstm.backward(&cache, &dh, None);
        let scale = 1.0 / batch as f32;
        self.lstm.apply_grads(lr, scale);
        self.out.apply_grads(lr, scale);
        total_loss
    }

    /// Per-position prediction accuracy for [`OutputMode::EveryStep`].
    pub fn accuracy_every(&self, inputs: &[Vec<u32>], targets: &[Vec<u32>]) -> f32 {
        let cache = self.run(inputs);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (t, h) in cache.hs.iter().enumerate() {
            let preds = self.out.forward(h).argmax_rows();
            for (r, &p) in preds.iter().enumerate() {
                if p == targets[r][t] as usize {
                    correct += 1;
                }
                total += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }
}

/// One epoch of mini-batch training for `LastStep` examples; returns the
/// mean batch loss. Shuffling is seeded for reproducibility.
pub fn train_epoch_last(
    model: &mut CharLstmModel,
    inputs: &[Vec<u32>],
    targets: &[u32],
    batch_size: usize,
    lr: f32,
    seed: u64,
) -> f32 {
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut rng = init::seeded_rng(seed);
    order.shuffle(&mut rng);
    let mut losses = Vec::new();
    for chunk in order.chunks(batch_size.max(1)) {
        let xb: Vec<Vec<u32>> = chunk.iter().map(|&i| inputs[i].clone()).collect();
        let yb: Vec<u32> = chunk.iter().map(|&i| targets[i]).collect();
        losses.push(model.train_batch_last(&xb, &yb, lr));
    }
    if losses.is_empty() {
        0.0
    } else {
        losses.iter().sum::<f32>() / losses.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic task: next char of a repeating "abcabc..." string.
    fn cyclic_dataset(n: usize, len: usize) -> (Vec<Vec<u32>>, Vec<u32>) {
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for start in 0..n {
            let seq: Vec<u32> = (0..len).map(|i| ((start + i) % 3) as u32).collect();
            let target = ((start + len) % 3) as u32;
            inputs.push(seq);
            targets.push(target);
        }
        (inputs, targets)
    }

    #[test]
    fn extract_activations_is_record_major() {
        let model = CharLstmModel::new(3, 4, OutputMode::LastStep, 0);
        let inputs = vec![vec![0u32, 1, 2], vec![2u32, 1, 0]];
        let acts = model.extract_activations(&inputs);
        assert_eq!(acts.shape(), (6, 4));
        // Row 0..3 = record 0 steps 0..3; compare with direct run.
        let cache = model.run(&inputs);
        assert_eq!(acts.row(0), cache.hs[0].row(0));
        assert_eq!(acts.row(1), cache.hs[1].row(0));
        assert_eq!(acts.row(3), cache.hs[0].row(1));
    }

    #[test]
    fn learns_cyclic_next_char() {
        let (inputs, targets) = cyclic_dataset(30, 6);
        let mut model = CharLstmModel::new(3, 12, OutputMode::LastStep, 1);
        let before = model.accuracy(&inputs, &targets);
        for epoch in 0..40 {
            train_epoch_last(&mut model, &inputs, &targets, 10, 0.02, epoch as u64);
        }
        let after = model.accuracy(&inputs, &targets);
        assert!(after > 0.95, "accuracy {before} -> {after}");
    }

    #[test]
    fn loss_decreases_under_training() {
        let (inputs, targets) = cyclic_dataset(24, 5);
        let mut model = CharLstmModel::new(3, 8, OutputMode::LastStep, 2);
        let first = model.train_batch_last(&inputs, &targets, 0.02);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_batch_last(&inputs, &targets, 0.02);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn every_step_mode_learns_language_model() {
        // Predict next char of "010101..." at every position.
        let inputs: Vec<Vec<u32>> = (0..16)
            .map(|s| (0..8).map(|i| ((s + i) % 2) as u32).collect())
            .collect();
        let targets: Vec<Vec<u32>> = (0..16)
            .map(|s| (0..8).map(|i| ((s + i + 1) % 2) as u32).collect())
            .collect();
        let mut model = CharLstmModel::new(2, 8, OutputMode::EveryStep, 3);
        for _ in 0..60 {
            model.train_batch_every(&inputs, &targets, None, 0.02);
        }
        assert!(model.accuracy_every(&inputs, &targets) > 0.95);
    }

    #[test]
    fn specialization_forces_units_toward_hypothesis() {
        // Aux target: 1 when current char is '1' (id 1), else 0. With a
        // large weight, the specialized unit's activation must correlate
        // strongly with the behavior.
        let inputs: Vec<Vec<u32>> = (0..16)
            .map(|s| (0..8).map(|i| (((s * 7 + i * 3) / 2) % 2) as u32).collect())
            .collect();
        let targets: Vec<Vec<u32>> = inputs
            .iter()
            .map(|seq| {
                let mut t: Vec<u32> = seq[1..].to_vec();
                t.push(0);
                t
            })
            .collect();
        let aux: Vec<Vec<f32>> = inputs
            .iter()
            .map(|seq| {
                seq.iter()
                    .map(|&c| if c == 1 { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        let spec = Specialization {
            units: vec![0],
            weight: 0.9,
        };
        let mut model = CharLstmModel::new(2, 8, OutputMode::EveryStep, 4);
        for _ in 0..150 {
            model.train_batch_every(&inputs, &targets, Some((&spec, &aux)), 0.05);
        }
        // Collect unit-0 activations and the aux behavior; correlate.
        let acts = model.extract_activations(&inputs);
        let unit0: Vec<f32> = acts.col(0);
        let behavior: Vec<f32> = aux.iter().flat_map(|b| b.iter().copied()).collect();
        let r = deepbase_stats::pearson(&unit0, &behavior);
        assert!(r > 0.8, "specialized unit correlation {r}");
    }

    #[test]
    fn predict_returns_valid_symbol() {
        let model = CharLstmModel::new(5, 4, OutputMode::LastStep, 5);
        let p = model.predict(&[0, 1, 2, 3]);
        assert!(p < 5);
        let proba = model.predict_proba(&[0, 1, 2, 3]);
        assert_eq!(proba.len(), 5);
        assert!((proba.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn untrained_models_with_same_seed_agree() {
        let a = CharLstmModel::new(4, 6, OutputMode::LastStep, 9);
        let b = CharLstmModel::new(4, 6, OutputMode::LastStep, 9);
        let input = vec![vec![1u32, 2, 3]];
        assert_eq!(a.extract_activations(&input), b.extract_activations(&input));
    }
}
