//! # deepbase-nn
//!
//! Trainable neural-network substrate for the DeepBase reproduction — the
//! role Keras/TensorFlow/PyTorch play in the paper, built from scratch on
//! `deepbase-tensor`.
//!
//! * [`adam`] — Adam optimizer state per parameter matrix.
//! * [`dense`] — fully-connected layer with exact backward.
//! * [`lstm`] — LSTM layer with full back-propagation through time; its
//!   cached hidden states are the unit behaviors DeepBase inspects.
//! * [`embedding`] — token embeddings and one-hot encoding.
//! * [`charmodel`] — the SQL auto-completion char-RNN (paper §2.1) and the
//!   Appendix C specialization training mode (auxiliary unit loss).
//! * [`seq2seq`] — two-layer encoder–decoder with dot-product attention,
//!   the OpenNMT stand-in of §6.3, exposing per-layer encoder activations.
//! * [`conv`] — Conv2d/ReLU/MaxPool volumes and a small CNN classifier for
//!   the NetDissect comparison (Appendix E).
//!
//! Every layer's backward pass is verified against finite differences in
//! its module tests; training loops are deterministic given a seed.

pub mod adam;
pub mod charmodel;
pub mod conv;
pub mod dense;
pub mod embedding;
pub mod lstm;
pub mod seq2seq;

pub use charmodel::{train_epoch_last, CharLstmModel, OutputMode, Specialization};
pub use conv::{SmallCnn, Tensor3};
pub use dense::Dense;
pub use embedding::{one_hot_batch, Embedding};
pub use lstm::{Lstm, LstmCache};
pub use seq2seq::Seq2Seq;
