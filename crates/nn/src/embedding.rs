//! Token-embedding layer (gather forward, scatter-add backward), used by
//! the word-level seq2seq models of §6.3. The char-level models feed
//! one-hot inputs directly, for which [`one_hot_batch`] is provided.

use crate::adam::Adam;
use deepbase_tensor::{init, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Embedding table `V x D`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    table: Matrix,
    adam: Adam,
    grad: Matrix,
}

impl Embedding {
    /// Creates a table with small-normal initialization.
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Embedding {
            table: init::normal(vocab, dim, 0.1, rng),
            adam: Adam::new(vocab, dim),
            grad: Matrix::zeros(vocab, dim),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Looks up a batch of token ids, producing `B x D`.
    pub fn forward(&self, ids: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.dim());
        for (r, &id) in ids.iter().enumerate() {
            let id = (id as usize).min(self.vocab() - 1);
            out.row_mut(r).copy_from_slice(self.table.row(id));
        }
        out
    }

    /// Scatter-adds `dout` rows into the gradient of the looked-up ids.
    pub fn backward(&mut self, ids: &[u32], dout: &Matrix) {
        assert_eq!(ids.len(), dout.rows(), "embedding backward batch mismatch");
        for (r, &id) in ids.iter().enumerate() {
            let id = (id as usize).min(self.vocab() - 1);
            let src = dout.row(r);
            let dst = self.grad.row_mut(id);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }

    /// Applies accumulated gradients with Adam and clears them.
    pub fn apply_grads(&mut self, lr: f32, scale: f32) {
        self.grad.scale_inplace(scale);
        self.adam.step(&mut self.table, &self.grad, lr);
        self.grad.scale_inplace(0.0);
    }
}

/// Builds a one-hot `B x V` matrix from token ids (char-model input layer).
pub fn one_hot_batch(ids: &[u32], vocab: usize) -> Matrix {
    let mut out = Matrix::zeros(ids.len(), vocab);
    for (r, &id) in ids.iter().enumerate() {
        let id = (id as usize).min(vocab.saturating_sub(1));
        out.set(r, id, 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepbase_tensor::init::seeded_rng;

    #[test]
    fn forward_gathers_rows() {
        let mut rng = seeded_rng(1);
        let emb = Embedding::new(5, 3, &mut rng);
        let out = emb.forward(&[2, 0, 2]);
        assert_eq!(out.row(0), emb.table.row(2));
        assert_eq!(out.row(1), emb.table.row(0));
        assert_eq!(out.row(0), out.row(2));
    }

    #[test]
    fn out_of_range_ids_clamp() {
        let mut rng = seeded_rng(2);
        let emb = Embedding::new(3, 2, &mut rng);
        let out = emb.forward(&[99]);
        assert_eq!(out.row(0), emb.table.row(2));
    }

    #[test]
    fn backward_scatter_adds() {
        let mut rng = seeded_rng(3);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let dout = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        emb.backward(&[1, 1, 3], &dout);
        assert_eq!(emb.grad.row(1), &[3.0, 3.0]); // rows 0 and 1 summed
        assert_eq!(emb.grad.row(3), &[3.0, 3.0]);
        assert_eq!(emb.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn training_moves_used_embeddings_only() {
        let mut rng = seeded_rng(4);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let before = emb.table.clone();
        let dout = Matrix::full(1, 2, 1.0);
        emb.backward(&[2], &dout);
        emb.apply_grads(0.1, 1.0);
        assert_ne!(emb.table.row(2), before.row(2));
        assert_eq!(emb.table.row(0), before.row(0));
    }

    #[test]
    fn one_hot_layout() {
        let m = one_hot_batch(&[1, 0, 2], 3);
        assert_eq!(m.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 1.0]);
    }
}
