//! Convolutional layers and a small image classifier: the substrate for
//! the NetDissect comparison of paper Appendix E (which probes CNN channel
//! activations against pixel-level concept masks).
//!
//! Dimensions here are small (synthetic 16–32 px images), so the kernels
//! are plain loops; clarity and correct gradients matter more than SIMD.

use crate::adam::Adam;
use crate::dense::Dense;
use deepbase_tensor::{init, ops, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A `channels x height x width` activation volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    /// Channel count.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f32>,
}

impl Tensor3 {
    /// Zero-filled volume.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Tensor3 {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Builds from a closure over `(channel, y, x)`.
    pub fn from_fn(
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(c * h * w);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    data.push(f(ci, y, x));
                }
            }
        }
        Tensor3 { c, h, w, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[(c * self.h + y) * self.w + x]
    }

    /// Element update.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data[(c * self.h + y) * self.w + x] = v;
    }

    /// Adds to an element.
    #[inline]
    pub fn add(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data[(c * self.h + y) * self.w + x] += v;
    }

    /// One channel as an `h x w` matrix (an "activation map").
    pub fn channel(&self, c: usize) -> Matrix {
        let start = c * self.h * self.w;
        Matrix::from_vec(
            self.h,
            self.w,
            self.data[start..start + self.h * self.w].to_vec(),
        )
        .expect("channel shape")
    }

    /// Flattens to a `1 x (c*h*w)` row for a dense head.
    pub fn flatten_row(&self) -> Matrix {
        Matrix::from_vec(1, self.data.len(), self.data.clone()).expect("flatten shape")
    }

    /// Raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// 2-D convolution with 3x3 kernels and same-padding (pad = 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    /// Weights as `out_ch x (in_ch * 9)` rows.
    w: Matrix,
    b: Matrix,
    adam_w: Adam,
    adam_b: Adam,
    grad_w: Matrix,
    grad_b: Matrix,
}

const K: usize = 3;
const PAD: i64 = 1;

impl Conv2d {
    /// Creates a layer with Glorot-style init.
    pub fn new(in_ch: usize, out_ch: usize, rng: &mut impl Rng) -> Self {
        let fan = in_ch * K * K;
        Conv2d {
            in_ch,
            out_ch,
            w: init::glorot_uniform(out_ch, fan, rng),
            b: Matrix::zeros(1, out_ch),
            adam_w: Adam::new(out_ch, fan),
            adam_b: Adam::new(1, out_ch),
            grad_w: Matrix::zeros(out_ch, fan),
            grad_b: Matrix::zeros(1, out_ch),
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Forward pass (same spatial size thanks to padding).
    pub fn forward(&self, x: &Tensor3) -> Tensor3 {
        assert_eq!(x.c, self.in_ch, "conv input channels");
        let mut y = Tensor3::zeros(self.out_ch, x.h, x.w);
        for oc in 0..self.out_ch {
            let wrow = self.w.row(oc);
            let bias = self.b.get(0, oc);
            for yy in 0..x.h {
                for xx in 0..x.w {
                    let mut acc = bias;
                    for ic in 0..self.in_ch {
                        for ky in 0..K {
                            let sy = yy as i64 + ky as i64 - PAD;
                            if sy < 0 || sy >= x.h as i64 {
                                continue;
                            }
                            for kx in 0..K {
                                let sx = xx as i64 + kx as i64 - PAD;
                                if sx < 0 || sx >= x.w as i64 {
                                    continue;
                                }
                                acc += wrow[(ic * K + ky) * K + kx]
                                    * x.get(ic, sy as usize, sx as usize);
                            }
                        }
                    }
                    y.set(oc, yy, xx, acc);
                }
            }
        }
        y
    }

    /// Backward pass: accumulates parameter grads, returns `dL/dx`.
    pub fn backward(&mut self, x: &Tensor3, dy: &Tensor3) -> Tensor3 {
        let mut dx = Tensor3::zeros(x.c, x.h, x.w);
        for oc in 0..self.out_ch {
            let mut db = 0.0f32;
            for yy in 0..x.h {
                for xx in 0..x.w {
                    let g = dy.get(oc, yy, xx);
                    if g == 0.0 {
                        continue;
                    }
                    db += g;
                    for ic in 0..self.in_ch {
                        for ky in 0..K {
                            let sy = yy as i64 + ky as i64 - PAD;
                            if sy < 0 || sy >= x.h as i64 {
                                continue;
                            }
                            for kx in 0..K {
                                let sx = xx as i64 + kx as i64 - PAD;
                                if sx < 0 || sx >= x.w as i64 {
                                    continue;
                                }
                                let widx = (ic * K + ky) * K + kx;
                                let xv = x.get(ic, sy as usize, sx as usize);
                                let wv = self.w.get(oc, widx);
                                let cur = self.grad_w.get(oc, widx);
                                self.grad_w.set(oc, widx, cur + g * xv);
                                dx.add(ic, sy as usize, sx as usize, g * wv);
                            }
                        }
                    }
                }
            }
            let cur = self.grad_b.get(0, oc);
            self.grad_b.set(0, oc, cur + db);
        }
        dx
    }

    /// Applies accumulated gradients with Adam.
    pub fn apply_grads(&mut self, lr: f32, scale: f32) {
        self.grad_w.scale_inplace(scale);
        self.grad_b.scale_inplace(scale);
        self.adam_w.step(&mut self.w, &self.grad_w, lr);
        self.adam_b.step(&mut self.b, &self.grad_b, lr);
        self.grad_w.scale_inplace(0.0);
        self.grad_b.scale_inplace(0.0);
    }
}

/// ReLU on a volume, returning output and a mask for backward.
pub fn relu_volume(x: &Tensor3) -> (Tensor3, Tensor3) {
    let mut y = x.clone();
    let mut mask = Tensor3::zeros(x.c, x.h, x.w);
    for c in 0..x.c {
        for yy in 0..x.h {
            for xx in 0..x.w {
                let v = x.get(c, yy, xx);
                if v > 0.0 {
                    mask.set(c, yy, xx, 1.0);
                } else {
                    y.set(c, yy, xx, 0.0);
                }
            }
        }
    }
    (y, mask)
}

/// 2x2 max-pool with stride 2; returns pooled volume and argmax indices.
pub fn maxpool2(x: &Tensor3) -> (Tensor3, Vec<usize>) {
    let oh = x.h / 2;
    let ow = x.w / 2;
    let mut y = Tensor3::zeros(x.c, oh, ow);
    let mut argmax = vec![0usize; x.c * oh * ow];
    for c in 0..x.c {
        for yy in 0..oh {
            for xx in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let sy = yy * 2 + dy;
                        let sx = xx * 2 + dx;
                        let v = x.get(c, sy, sx);
                        if v > best {
                            best = v;
                            best_idx = (c * x.h + sy) * x.w + sx;
                        }
                    }
                }
                y.set(c, yy, xx, best);
                argmax[(c * oh + yy) * ow + xx] = best_idx;
            }
        }
    }
    (y, argmax)
}

/// Backward of [`maxpool2`]: routes gradients to the argmax positions.
pub fn maxpool2_backward(
    dy: &Tensor3,
    argmax: &[usize],
    in_shape: (usize, usize, usize),
) -> Tensor3 {
    let (c, h, w) = in_shape;
    let mut dx = Tensor3::zeros(c, h, w);
    for (i, &src) in argmax.iter().enumerate() {
        dx.data[src] += dy.data[i];
    }
    dx
}

/// Nearest-neighbour upsampling of an activation map to `(h, w)` — the
/// alignment step NetDissect applies before computing IoU against
/// pixel-level masks.
pub fn upsample_nearest(map: &Matrix, h: usize, w: usize) -> Matrix {
    let sh = map.rows().max(1);
    let sw = map.cols().max(1);
    Matrix::from_fn(h, w, |y, x| {
        let sy = (y * sh / h).min(sh - 1);
        let sx = (x * sw / w).min(sw - 1);
        map.get(sy, sx)
    })
}

/// A small two-conv-block CNN classifier over `C x S x S` images.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmallCnn {
    conv1: Conv2d,
    conv2: Conv2d,
    head: Dense,
    input_size: usize,
    /// Construction-time metadata, retained for future serialization.
    #[allow(dead_code)]
    classes: usize,
}

impl SmallCnn {
    /// Builds the network for `input_size`-pixel square images with
    /// `in_ch` channels, `c1`/`c2` conv channels and `classes` outputs.
    pub fn new(
        in_ch: usize,
        input_size: usize,
        c1: usize,
        c2: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        assert!(
            input_size.is_multiple_of(4),
            "input must be divisible by 4 (two pools)"
        );
        let mut rng = init::seeded_rng(seed);
        let feat = c2 * (input_size / 4) * (input_size / 4);
        SmallCnn {
            conv1: Conv2d::new(in_ch, c1, &mut rng),
            conv2: Conv2d::new(c1, c2, &mut rng),
            head: Dense::new(feat, classes, &mut rng),
            input_size,
            classes,
        }
    }

    /// Number of channels in the inspected (second) conv layer.
    pub fn units(&self) -> usize {
        self.conv2.out_channels()
    }

    /// Post-ReLU activation maps of the second conv layer — the "units"
    /// NetDissect inspects — upsampled to the input resolution.
    pub fn unit_maps(&self, img: &Tensor3) -> Vec<Matrix> {
        let (a1, _) = relu_volume(&self.conv1.forward(img));
        let (p1, _) = maxpool2(&a1);
        let (a2, _) = relu_volume(&self.conv2.forward(&p1));
        (0..a2.c)
            .map(|c| upsample_nearest(&a2.channel(c), self.input_size, self.input_size))
            .collect()
    }

    /// Class probabilities for one image.
    pub fn predict_proba(&self, img: &Tensor3) -> Vec<f32> {
        let (a1, _) = relu_volume(&self.conv1.forward(img));
        let (p1, _) = maxpool2(&a1);
        let (a2, _) = relu_volume(&self.conv2.forward(&p1));
        let (p2, _) = maxpool2(&a2);
        let logits = self.head.forward(&p2.flatten_row());
        ops::softmax_rows(&logits).row(0).to_vec()
    }

    /// Greedy class prediction.
    pub fn predict(&self, img: &Tensor3) -> usize {
        let p = self.predict_proba(img);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// One SGD step on a single labelled image; returns the loss.
    pub fn train_example(&mut self, img: &Tensor3, label: usize, lr: f32) -> f32 {
        let z1 = self.conv1.forward(img);
        let (a1, m1) = relu_volume(&z1);
        let (p1, arg1) = maxpool2(&a1);
        let z2 = self.conv2.forward(&p1);
        let (a2, m2) = relu_volume(&z2);
        let (p2, arg2) = maxpool2(&a2);
        let flat = p2.flatten_row();
        let logits = self.head.forward(&flat);
        let probs = ops::softmax_rows(&logits);
        let loss = -probs.get(0, label).max(1e-12).ln();

        let mut dlogits = probs;
        let v = dlogits.get(0, label);
        dlogits.set(0, label, v - 1.0);
        let dflat = self.head.backward(&flat, &dlogits);
        let mut dp2 = Tensor3::zeros(p2.c, p2.h, p2.w);
        dp2.data.copy_from_slice(dflat.as_slice());
        let mut da2 = maxpool2_backward(&dp2, &arg2, (a2.c, a2.h, a2.w));
        for (d, m) in da2.data.iter_mut().zip(m2.data.iter()) {
            *d *= m;
        }
        let dp1 = self.conv2.backward(&p1, &da2);
        let mut da1 = maxpool2_backward(&dp1, &arg1, (a1.c, a1.h, a1.w));
        for (d, m) in da1.data.iter_mut().zip(m1.data.iter()) {
            *d *= m;
        }
        self.conv1.backward(img, &da1);

        self.conv1.apply_grads(lr, 1.0);
        self.conv2.apply_grads(lr, 1.0);
        self.head.apply_grads(lr, 1.0);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepbase_tensor::init::seeded_rng;

    #[test]
    fn tensor3_indexing() {
        let t = Tensor3::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.get(1, 2, 3), 123.0);
        assert_eq!(t.channel(1).get(2, 3), 123.0);
        assert_eq!(t.flatten_row().cols(), 24);
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = seeded_rng(1);
        let mut conv = Conv2d::new(1, 1, &mut rng);
        // Zero all weights, set the center tap to 1: output == input.
        conv.w.scale_inplace(0.0);
        conv.w.set(0, 4, 1.0); // (ic=0, ky=1, kx=1)
        let img = Tensor3::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let out = conv.forward(&img);
        assert_eq!(out, img);
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = seeded_rng(2);
        let mut conv = Conv2d::new(2, 2, &mut rng);
        let img = Tensor3::from_fn(2, 4, 4, |c, y, x| {
            ((c + 2 * y + 3 * x) % 5) as f32 * 0.3 - 0.5
        });
        let y = conv.forward(&img);
        let dy = y.clone(); // L = sum(y^2)/2
        let dx = conv.backward(&img, &dy);
        let analytic_w = conv.grad_w.clone();

        let loss = |conv: &Conv2d, img: &Tensor3| -> f32 {
            conv.forward(img)
                .as_slice()
                .iter()
                .map(|v| v * v / 2.0)
                .sum()
        };
        let eps = 1e-2;
        for oc in 0..2 {
            for k in 0..6 {
                let orig = conv.w.get(oc, k);
                conv.w.set(oc, k, orig + eps);
                let lp = loss(&conv, &img);
                conv.w.set(oc, k, orig - eps);
                let lm = loss(&conv, &img);
                conv.w.set(oc, k, orig);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic_w.get(oc, k);
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                    "dW[{oc},{k}] {fd} vs {an}"
                );
            }
        }
        // Input gradient at a few positions.
        for (c, yy, xx) in [(0, 0, 0), (1, 2, 3), (0, 3, 1)] {
            let mut imgp = img.clone();
            imgp.set(c, yy, xx, img.get(c, yy, xx) + eps);
            let lp = loss(&conv, &imgp);
            let mut imgm = img.clone();
            imgm.set(c, yy, xx, img.get(c, yy, xx) - eps);
            let lm = loss(&conv, &imgm);
            let fd = (lp - lm) / (2.0 * eps);
            let an = dx.get(c, yy, xx);
            assert!(
                (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                "dx[{c},{yy},{xx}] {fd} vs {an}"
            );
        }
    }

    #[test]
    fn maxpool_and_backward() {
        let x = Tensor3::from_fn(1, 4, 4, |_, y, xx| (y * 4 + xx) as f32);
        let (y, arg) = maxpool2(&x);
        assert_eq!(y.get(0, 0, 0), 5.0);
        assert_eq!(y.get(0, 1, 1), 15.0);
        let dy = Tensor3::from_fn(1, 2, 2, |_, _, _| 1.0);
        let dx = maxpool2_backward(&dy, &arg, (1, 4, 4));
        assert_eq!(dx.get(0, 1, 1), 1.0); // position of the 5
        assert_eq!(dx.get(0, 0, 0), 0.0);
        assert_eq!(dx.as_slice().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn relu_volume_masks() {
        let x = Tensor3::from_fn(
            1,
            2,
            2,
            |_, y, xx| if (y + xx) % 2 == 0 { 1.5 } else { -1.5 },
        );
        let (y, mask) = relu_volume(&x);
        assert_eq!(y.get(0, 0, 1), 0.0);
        assert_eq!(y.get(0, 0, 0), 1.5);
        assert_eq!(mask.get(0, 0, 0), 1.0);
        assert_eq!(mask.get(0, 0, 1), 0.0);
    }

    #[test]
    fn upsample_nearest_tiles() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let up = upsample_nearest(&m, 4, 4);
        assert_eq!(up.get(0, 0), 1.0);
        assert_eq!(up.get(0, 3), 2.0);
        assert_eq!(up.get(3, 0), 3.0);
        assert_eq!(up.get(3, 3), 4.0);
    }

    #[test]
    fn cnn_learns_quadrant_classification() {
        // Class = which quadrant holds the bright square.
        let mut cnn = SmallCnn::new(1, 8, 4, 4, 4, 3);
        let make = |q: usize| {
            Tensor3::from_fn(1, 8, 8, |_, y, x| {
                let (qy, qx) = (q / 2, q % 2);
                if (qy * 4..qy * 4 + 4).contains(&y) && (qx * 4..qx * 4 + 4).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            })
        };
        for _ in 0..60 {
            for q in 0..4 {
                cnn.train_example(&make(q), q, 0.01);
            }
        }
        for q in 0..4 {
            assert_eq!(cnn.predict(&make(q)), q, "quadrant {q}");
        }
    }

    #[test]
    fn unit_maps_have_input_resolution() {
        let cnn = SmallCnn::new(1, 8, 3, 5, 2, 4);
        let img = Tensor3::zeros(1, 8, 8);
        let maps = cnn.unit_maps(&img);
        assert_eq!(maps.len(), 5);
        for m in maps {
            assert_eq!(m.shape(), (8, 8));
        }
    }
}
