//! LSTM layer with full back-propagation through time.
//!
//! This is the recurrent workhorse behind every model in the paper: the
//! SQL auto-completion model (one LSTM layer, §2.1), the Appendix C
//! 16-unit specialization model, and both stacks of the OpenNMT-style
//! encoder–decoder (§6.3). The hidden-state sequence `h_t` is exactly what
//! DeepBase extracts as unit behaviors, so the forward pass retains it.
//!
//! Gate layout in the packed `4H` dimension: `[i | f | g | o]`
//! (input, forget, candidate, output).

use crate::adam::Adam;
use deepbase_tensor::{init, ops, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// LSTM parameters and accumulated gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input_dim: usize,
    hidden: usize,
    /// `input_dim x 4H` input projection.
    wx: Matrix,
    /// `H x 4H` recurrent projection.
    wh: Matrix,
    /// `1 x 4H` bias (forget-gate slice initialized to 1).
    b: Matrix,
    adam_wx: Adam,
    adam_wh: Adam,
    adam_b: Adam,
    grad_wx: Matrix,
    grad_wh: Matrix,
    grad_b: Matrix,
}

/// Everything the backward pass needs, plus the activations DeepBase
/// extracts. Index `t` refers to timestep `t` (0-based).
#[derive(Debug, Clone)]
pub struct LstmCache {
    /// Input at each step (`B x input_dim`).
    pub xs: Vec<Matrix>,
    /// Hidden state after each step (`B x H`) — the unit behaviors.
    pub hs: Vec<Matrix>,
    /// Cell state after each step.
    pub cs: Vec<Matrix>,
    /// Post-activation gates `[i|f|g|o]` at each step (`B x 4H`).
    gates: Vec<Matrix>,
    /// `tanh(c_t)` at each step.
    tanhc: Vec<Matrix>,
    /// Initial hidden state (for stacked/decoder use).
    h0: Matrix,
    /// Initial cell state.
    c0: Matrix,
}

impl LstmCache {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.hs.len()
    }

    /// True for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.hs.is_empty()
    }

    /// Final hidden state (initial state when the sequence is empty).
    pub fn final_h(&self) -> &Matrix {
        self.hs.last().unwrap_or(&self.h0)
    }

    /// Final cell state.
    pub fn final_c(&self) -> &Matrix {
        self.cs.last().unwrap_or(&self.c0)
    }
}

impl Lstm {
    /// Creates an LSTM with Glorot-uniform projections, zero bias and the
    /// customary forget-gate bias of 1.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        for h in hidden..2 * hidden {
            b.set(0, h, 1.0);
        }
        Lstm {
            input_dim,
            hidden,
            wx: init::glorot_uniform(input_dim, 4 * hidden, rng),
            wh: init::glorot_uniform(hidden, 4 * hidden, rng),
            b,
            adam_wx: Adam::new(input_dim, 4 * hidden),
            adam_wh: Adam::new(hidden, 4 * hidden),
            adam_b: Adam::new(1, 4 * hidden),
            grad_wx: Matrix::zeros(input_dim, 4 * hidden),
            grad_wh: Matrix::zeros(hidden, 4 * hidden),
            grad_b: Matrix::zeros(1, 4 * hidden),
        }
    }

    /// Hidden width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Runs the layer over a sequence starting from zero state.
    /// `xs[t]` is the `B x input_dim` input at step `t`.
    pub fn forward(&self, xs: &[Matrix]) -> LstmCache {
        let batch = xs.first().map(|m| m.rows()).unwrap_or(0);
        let h0 = Matrix::zeros(batch, self.hidden);
        let c0 = Matrix::zeros(batch, self.hidden);
        self.forward_from(xs, h0, c0)
    }

    /// Runs the layer from a given initial state (decoder use).
    pub fn forward_from(&self, xs: &[Matrix], h0: Matrix, c0: Matrix) -> LstmCache {
        let mut cache = LstmCache {
            xs: xs.to_vec(),
            hs: Vec::with_capacity(xs.len()),
            cs: Vec::with_capacity(xs.len()),
            gates: Vec::with_capacity(xs.len()),
            tanhc: Vec::with_capacity(xs.len()),
            h0,
            c0,
        };
        let hsz = self.hidden;
        for x in xs {
            let h_prev = cache.hs.last().unwrap_or(&cache.h0);
            let c_prev = cache.cs.last().unwrap_or(&cache.c0);
            debug_assert_eq!(x.cols(), self.input_dim, "lstm input width");
            let mut z = x.matmul(&self.wx);
            z.add_assign(&h_prev.matmul(&self.wh));
            z.add_row_broadcast(self.b.row(0));

            // Apply gate nonlinearities in place: sigmoid on i|f|o, tanh on g.
            let batch = z.rows();
            for r in 0..batch {
                let row = z.row_mut(r);
                for (col, v) in row.iter_mut().enumerate() {
                    let gate = col / hsz;
                    *v = if gate == 2 {
                        v.tanh()
                    } else {
                        ops::sigmoid(*v)
                    };
                }
            }

            let mut c = Matrix::zeros(batch, hsz);
            let mut h = Matrix::zeros(batch, hsz);
            let mut tanhc = Matrix::zeros(batch, hsz);
            for r in 0..batch {
                let zr = z.row(r);
                for k in 0..hsz {
                    let i = zr[k];
                    let f = zr[hsz + k];
                    let g = zr[2 * hsz + k];
                    let o = zr[3 * hsz + k];
                    let c_new = f * c_prev.get(r, k) + i * g;
                    let tc = c_new.tanh();
                    c.set(r, k, c_new);
                    tanhc.set(r, k, tc);
                    h.set(r, k, o * tc);
                }
            }
            cache.gates.push(z);
            cache.cs.push(c);
            cache.tanhc.push(tanhc);
            cache.hs.push(h);
        }
        cache
    }

    /// Back-propagates through time.
    ///
    /// * `dh[t]` — gradient of the loss w.r.t. `h_t` from *outside* the
    ///   recurrence (per-step outputs, probes); may be empty matrices for
    ///   steps with no direct loss.
    /// * `final_state_grad` — optional gradient flowing into the final
    ///   `(h, c)` (used when a decoder was initialized from this encoder).
    ///
    /// Accumulates parameter gradients and returns
    /// `(dxs, dh0, dc0)` — gradients w.r.t. inputs and the initial state.
    pub fn backward(
        &mut self,
        cache: &LstmCache,
        dh: &[Matrix],
        final_state_grad: Option<(&Matrix, &Matrix)>,
    ) -> (Vec<Matrix>, Matrix, Matrix) {
        let steps = cache.len();
        assert_eq!(dh.len(), steps, "dh length mismatch");
        let batch = cache.h0.rows();
        let hsz = self.hidden;

        let mut dh_next = Matrix::zeros(batch, hsz);
        let mut dc_next = Matrix::zeros(batch, hsz);
        if let Some((dhf, dcf)) = final_state_grad {
            dh_next.add_assign(dhf);
            dc_next.add_assign(dcf);
        }
        let mut dxs = vec![Matrix::zeros(0, 0); steps];

        for t in (0..steps).rev() {
            let mut dh_total = dh_next;
            if dh[t].rows() == batch {
                dh_total.add_assign(&dh[t]);
            }
            let c_prev = if t == 0 { &cache.c0 } else { &cache.cs[t - 1] };
            let h_prev = if t == 0 { &cache.h0 } else { &cache.hs[t - 1] };
            let gates = &cache.gates[t];
            let tanhc = &cache.tanhc[t];

            // dz packs the pre-activation gradients [di|df|dg|do].
            let mut dz = Matrix::zeros(batch, 4 * hsz);
            let mut dc_prev = Matrix::zeros(batch, hsz);
            for r in 0..batch {
                let zr = gates.row(r);
                for k in 0..hsz {
                    let i = zr[k];
                    let f = zr[hsz + k];
                    let g = zr[2 * hsz + k];
                    let o = zr[3 * hsz + k];
                    let tc = tanhc.get(r, k);
                    let dh_v = dh_total.get(r, k);
                    let dov = dh_v * tc;
                    let dc_total = dc_next.get(r, k) + dh_v * o * (1.0 - tc * tc);
                    let div = dc_total * g;
                    let dfv = dc_total * c_prev.get(r, k);
                    let dgv = dc_total * i;
                    dz.set(r, k, div * i * (1.0 - i));
                    dz.set(r, hsz + k, dfv * f * (1.0 - f));
                    dz.set(r, 2 * hsz + k, dgv * (1.0 - g * g));
                    dz.set(r, 3 * hsz + k, dov * o * (1.0 - o));
                    dc_prev.set(r, k, dc_total * f);
                }
            }

            self.grad_wx.add_assign(&cache.xs[t].t_matmul(&dz));
            self.grad_wh.add_assign(&h_prev.t_matmul(&dz));
            let col_sums = dz.col_sums();
            for (g, s) in self.grad_b.as_mut_slice().iter_mut().zip(col_sums.iter()) {
                *g += s;
            }
            dxs[t] = dz.matmul_t(&self.wx);
            dh_next = dz.matmul_t(&self.wh);
            dc_next = dc_prev;
        }
        (dxs, dh_next, dc_next)
    }

    /// Applies accumulated gradients with Adam (scaled by `scale`) and
    /// clears them.
    pub fn apply_grads(&mut self, lr: f32, scale: f32) {
        self.grad_wx.scale_inplace(scale);
        self.grad_wh.scale_inplace(scale);
        self.grad_b.scale_inplace(scale);
        self.adam_wx.step(&mut self.wx, &self.grad_wx, lr);
        self.adam_wh.step(&mut self.wh, &self.grad_wh, lr);
        self.adam_b.step(&mut self.b, &self.grad_b, lr);
        self.grad_wx.scale_inplace(0.0);
        self.grad_wh.scale_inplace(0.0);
        self.grad_b.scale_inplace(0.0);
    }

    /// The trainable parameter matrices (`wx`, `wh`, `b`), in a fixed
    /// order — used to fingerprint a model's weights for the persistent
    /// behavior store.
    pub fn params(&self) -> [&Matrix; 3] {
        [&self.wx, &self.wh, &self.b]
    }

    /// Mutable access to the input projection (used by gradient-check
    /// tests only).
    #[doc(hidden)]
    pub fn wx_mut(&mut self) -> &mut Matrix {
        &mut self.wx
    }

    /// Mutable access to the recurrent projection (tests only).
    #[doc(hidden)]
    pub fn wh_mut(&mut self) -> &mut Matrix {
        &mut self.wh
    }

    /// Accumulated input-projection gradient (tests only).
    #[doc(hidden)]
    pub fn grad_wx(&self) -> &Matrix {
        &self.grad_wx
    }

    /// Accumulated recurrent-projection gradient (tests only).
    #[doc(hidden)]
    pub fn grad_wh(&self) -> &Matrix {
        &self.grad_wh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepbase_tensor::init::seeded_rng;

    fn sequence(rng: &mut impl Rng, steps: usize, batch: usize, dim: usize) -> Vec<Matrix> {
        (0..steps)
            .map(|_| init::uniform(batch, dim, -1.0, 1.0, rng))
            .collect()
    }

    /// Scalar loss L = sum_t sum(h_t^2)/2, whose dL/dh_t = h_t.
    fn loss_of(cache: &LstmCache) -> f32 {
        cache
            .hs
            .iter()
            .map(|h| h.as_slice().iter().map(|v| v * v / 2.0).sum::<f32>())
            .sum()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(1);
        let lstm = Lstm::new(3, 4, &mut rng);
        let xs = sequence(&mut rng, 5, 2, 3);
        let cache = lstm.forward(&xs);
        assert_eq!(cache.len(), 5);
        for h in &cache.hs {
            assert_eq!(h.shape(), (2, 4));
        }
        assert_eq!(cache.final_h().shape(), (2, 4));
    }

    #[test]
    fn hidden_states_bounded_by_one() {
        // h = o * tanh(c): |h| <= 1 always.
        let mut rng = seeded_rng(2);
        let lstm = Lstm::new(3, 8, &mut rng);
        let xs = sequence(&mut rng, 20, 4, 3);
        let cache = lstm.forward(&xs);
        for h in &cache.hs {
            assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn zero_input_zero_state_stays_small() {
        let mut rng = seeded_rng(3);
        let lstm = Lstm::new(2, 4, &mut rng);
        let xs = vec![Matrix::zeros(1, 2); 3];
        let cache = lstm.forward(&xs);
        // g = tanh(0) = 0 means c and h stay exactly 0.
        for h in &cache.hs {
            assert!(h.as_slice().iter().all(|&v| v.abs() < 1e-6), "{h}");
        }
    }

    #[test]
    fn gradient_check_input_projection() {
        let mut rng = seeded_rng(4);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs = sequence(&mut rng, 3, 2, 3);
        let cache = lstm.forward(&xs);
        let dh: Vec<Matrix> = cache.hs.clone();
        lstm.backward(&cache, &dh, None);
        let analytic = lstm.grad_wx().clone();

        let eps = 5e-3;
        for r in 0..3 {
            for c in 0..8 {
                let orig = lstm.wx_mut().get(r, c);
                lstm.wx_mut().set(r, c, orig + eps);
                let lp = loss_of(&lstm.forward(&xs));
                lstm.wx_mut().set(r, c, orig - eps);
                let lm = loss_of(&lstm.forward(&xs));
                lstm.wx_mut().set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic.get(r, c);
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + fd.abs().max(an.abs())),
                    "dWx[{r},{c}]: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_recurrent_projection() {
        let mut rng = seeded_rng(5);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = sequence(&mut rng, 4, 2, 2);
        let cache = lstm.forward(&xs);
        let dh: Vec<Matrix> = cache.hs.clone();
        lstm.backward(&cache, &dh, None);
        let analytic = lstm.grad_wh().clone();

        let eps = 5e-3;
        for r in 0..3 {
            for c in 0..12 {
                let orig = lstm.wh_mut().get(r, c);
                lstm.wh_mut().set(r, c, orig + eps);
                let lp = loss_of(&lstm.forward(&xs));
                lstm.wh_mut().set(r, c, orig - eps);
                let lm = loss_of(&lstm.forward(&xs));
                lstm.wh_mut().set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic.get(r, c);
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + fd.abs().max(an.abs())),
                    "dWh[{r},{c}]: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_inputs() {
        let mut rng = seeded_rng(6);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = sequence(&mut rng, 3, 1, 2);
        let cache = lstm.forward(&xs);
        let dh: Vec<Matrix> = cache.hs.clone();
        let (dxs, _, _) = lstm.backward(&cache, &dh, None);

        let eps = 5e-3;
        for t in 0..3 {
            for c in 0..2 {
                let mut xs_p = xs.clone();
                xs_p[t].set(0, c, xs[t].get(0, c) + eps);
                let lp = loss_of(&lstm.forward(&xs_p));
                let mut xs_m = xs.clone();
                xs_m[t].set(0, c, xs[t].get(0, c) - eps);
                let lm = loss_of(&lstm.forward(&xs_m));
                let fd = (lp - lm) / (2.0 * eps);
                let an = dxs[t].get(0, c);
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + fd.abs().max(an.abs())),
                    "dx[{t}][0,{c}]: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn final_state_gradient_flows() {
        // Gradient injected only at the final state must reach parameters.
        let mut rng = seeded_rng(7);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = sequence(&mut rng, 3, 2, 2);
        let cache = lstm.forward(&xs);
        let dh = vec![Matrix::zeros(0, 0); 3];
        let dhf = Matrix::full(2, 3, 1.0);
        let dcf = Matrix::zeros(2, 3);
        lstm.backward(&cache, &dh, Some((&dhf, &dcf)));
        assert!(lstm.grad_wx().frobenius_norm() > 0.0);
        assert!(lstm.grad_wh().frobenius_norm() > 0.0);
    }

    #[test]
    fn learns_to_remember_first_input() {
        // Task: output at the last step should match the first input bit —
        // requires carrying information across the sequence.
        let mut rng = seeded_rng(8);
        let mut lstm = Lstm::new(1, 8, &mut rng);
        let mut out = crate::dense::Dense::new(8, 1, &mut rng);
        let steps = 5;
        let mut final_loss = f32::INFINITY;
        for _ in 0..300 {
            // Batch of 8: first input ±1, later inputs noise.
            let first: Vec<f32> = (0..8)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect();
            let mut xs: Vec<Matrix> = Vec::new();
            xs.push(Matrix::from_vec(8, 1, first.clone()).unwrap());
            for _ in 1..steps {
                xs.push(init::uniform(8, 1, -0.3, 0.3, &mut rng));
            }
            let cache = lstm.forward(&xs);
            let y = out.forward(cache.final_h());
            let target = Matrix::from_vec(8, 1, first).unwrap();
            let diff = y.sub(&target);
            final_loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / 8.0;
            let dh_last = out.backward(cache.final_h(), &diff);
            let mut dh = vec![Matrix::zeros(0, 0); steps];
            dh[steps - 1] = dh_last;
            lstm.backward(&cache, &dh, None);
            lstm.apply_grads(0.01, 1.0 / 8.0);
            out.apply_grads(0.01, 1.0 / 8.0);
        }
        assert!(final_loss < 0.05, "memory task loss {final_loss}");
    }

    #[test]
    fn forward_from_respects_initial_state() {
        let mut rng = seeded_rng(9);
        let lstm = Lstm::new(2, 3, &mut rng);
        let xs = sequence(&mut rng, 2, 1, 2);
        let zero = lstm.forward(&xs);
        let h0 = Matrix::full(1, 3, 0.9);
        let c0 = Matrix::full(1, 3, 0.9);
        let warm = lstm.forward_from(&xs, h0, c0);
        assert!(
            !zero.hs[0].approx_eq(&warm.hs[0], 1e-6),
            "initial state must matter"
        );
    }
}
