//! Fully-connected layer with Glorot init, cached forward, exact backward
//! and Adam updates. Used as the output projection of every model in the
//! reproduction (the paper's models all end in a dense softmax layer).

use crate::adam::Adam;
use deepbase_tensor::{init, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense (fully-connected) layer `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    adam_w: Adam,
    adam_b: Adam,
    grad_w: Matrix,
    grad_b: Matrix,
}

impl Dense {
    /// Creates a layer with Glorot-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Dense {
            w: init::glorot_uniform(in_dim, out_dim, rng),
            b: Matrix::zeros(1, out_dim),
            adam_w: Adam::new(in_dim, out_dim),
            adam_b: Adam::new(1, out_dim),
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: Matrix::zeros(1, out_dim),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Borrow the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Borrow the bias row.
    pub fn bias(&self) -> &Matrix {
        &self.b
    }

    /// Forward pass: `x` is `batch x in_dim`, result `batch x out_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(self.b.row(0));
        y
    }

    /// Accumulates gradients for a batch and returns `dL/dx`.
    ///
    /// `x` must be the same input passed to `forward`; `dy` is `dL/dy`.
    /// Gradients accumulate across calls until [`Dense::apply_grads`].
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        self.grad_w.add_assign(&x.t_matmul(dy));
        let col_sums = dy.col_sums();
        for (g, s) in self.grad_b.as_mut_slice().iter_mut().zip(col_sums.iter()) {
            *g += s;
        }
        dy.matmul_t(&self.w)
    }

    /// Applies accumulated gradients (scaled by `scale`, typically `1/batch`)
    /// with Adam, then clears them.
    pub fn apply_grads(&mut self, lr: f32, scale: f32) {
        self.grad_w.scale_inplace(scale);
        self.grad_b.scale_inplace(scale);
        self.adam_w.step(&mut self.w, &self.grad_w, lr);
        self.adam_b.step(&mut self.b, &self.grad_b, lr);
        self.grad_w.scale_inplace(0.0);
        self.grad_b.scale_inplace(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepbase_tensor::init::seeded_rng;
    use deepbase_tensor::ops;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = seeded_rng(1);
        let layer = Dense::new(3, 2, &mut rng);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        // Zero input: output equals bias (zero at init).
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dL/dW for L = sum(y^2)/2.
        let mut rng = seeded_rng(2);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = init::uniform(5, 3, -1.0, 1.0, &mut rng);

        let y = layer.forward(&x);
        let dy = y.clone(); // dL/dy = y for L = sum(y^2)/2
        layer.backward(&x, &dy);
        let analytic = layer.grad_w.clone();

        let eps = 1e-3;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.w.get(r, c);
                layer.w.set(r, c, orig + eps);
                let lp: f32 = layer
                    .forward(&x)
                    .as_slice()
                    .iter()
                    .map(|v| v * v / 2.0)
                    .sum();
                layer.w.set(r, c, orig - eps);
                let lm: f32 = layer
                    .forward(&x)
                    .as_slice()
                    .iter()
                    .map(|v| v * v / 2.0)
                    .sum();
                layer.w.set(r, c, orig);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic.get(r, c);
                assert!((fd - an).abs() < 2e-2, "dW[{r},{c}]: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = seeded_rng(3);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = init::uniform(2, 3, -1.0, 1.0, &mut rng);
        let y = layer.forward(&x);
        let dx = layer.backward(&x, &y);

        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let lp: f32 = layer
                    .forward(&xp)
                    .as_slice()
                    .iter()
                    .map(|v| v * v / 2.0)
                    .sum();
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let lm: f32 = layer
                    .forward(&xm)
                    .as_slice()
                    .iter()
                    .map(|v| v * v / 2.0)
                    .sum();
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - dx.get(r, c)).abs() < 2e-2, "dx[{r},{c}]");
            }
        }
    }

    #[test]
    fn trains_linear_map() {
        // Learn y = [x0 + x1, x0 - x1] with MSE.
        let mut rng = seeded_rng(4);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = init::uniform(64, 2, -1.0, 1.0, &mut rng);
        let target = Matrix::from_fn(64, 2, |r, c| {
            if c == 0 {
                x.get(r, 0) + x.get(r, 1)
            } else {
                x.get(r, 0) - x.get(r, 1)
            }
        });
        let mut last_loss = f32::INFINITY;
        for _ in 0..1200 {
            let y = layer.forward(&x);
            let diff = y.sub(&target);
            layer.backward(&x, &diff);
            layer.apply_grads(0.01, 1.0 / 64.0);
            last_loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / 64.0;
        }
        assert!(last_loss < 2e-3, "loss {last_loss}");
    }

    #[test]
    fn softmax_cross_entropy_classifier() {
        // 3-class one-hot passthrough should be perfectly learnable.
        let mut rng = seeded_rng(5);
        let mut layer = Dense::new(3, 3, &mut rng);
        let x = Matrix::from_fn(30, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
        let targets: Vec<usize> = (0..30).map(|r| r % 3).collect();
        for _ in 0..200 {
            let logits = layer.forward(&x);
            let mut dlogits = ops::softmax_rows(&logits);
            for (r, &t) in targets.iter().enumerate() {
                let v = dlogits.get(r, t);
                dlogits.set(r, t, v - 1.0);
            }
            layer.backward(&x, &dlogits);
            layer.apply_grads(0.05, 1.0 / 30.0);
        }
        let probs = ops::softmax_rows(&layer.forward(&x));
        assert_eq!(probs.argmax_rows(), targets);
    }
}
