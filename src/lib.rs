//! # deepbase-repro
//!
//! Root facade of the DeepBase reproduction (Sellam et al., SIGMOD 2019).
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests read like downstream user code:
//!
//! * [`deepbase`] — the inspection engine (the paper's contribution).
//! * [`nn`] — trainable neural-network substrate (Keras stand-in).
//! * [`lang`] — grammars, parsing, hypotheses, POS tagging (NLTK/CoreNLP
//!   stand-in).
//! * [`stats`] — statistical measures (scipy/scikit-learn stand-in).
//! * [`relational`] — mini columnar engine (PostgreSQL/MADLib stand-in).
//! * [`tensor`] — dense linear algebra (NumPy stand-in), built on cache-
//!   blocked mat-mul kernels.
//! * [`runtime`] — the persistent worker pool behind every parallel path
//!   (the CUDA stand-in). `Device::Parallel(n)` in the engine splits work
//!   into `n` deterministic chunks and runs them on this pool; workers are
//!   spawned once per process and reused across extraction, measure
//!   fan-out and mat-mul calls, so parallel results are always identical
//!   to `Device::SingleCore`.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper (plus
//! `bench_smoke`, which emits kernel timings as `BENCH_PR1.json`).

pub use deepbase;
pub use deepbase_lang as lang;
pub use deepbase_nn as nn;
pub use deepbase_relational as relational;
pub use deepbase_runtime as runtime;
pub use deepbase_stats as stats;
pub use deepbase_tensor as tensor;
