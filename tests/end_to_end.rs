//! Cross-crate integration tests: the full pipeline — PCFG sampling,
//! window datasets, LSTM training, extraction, inspection engines,
//! verification and the INSPECT query language — exercised together the
//! way the paper's evaluation uses them.

use deepbase::prelude::*;
use deepbase::query::{run_query, Catalog};
use deepbase::verify::{verify_units, VerifyConfig};
use deepbase::workloads::{nmt, paren, sql};
use std::sync::Arc;

fn small_sql_workload() -> sql::SqlWorkload {
    sql::build(&sql::SqlWorkloadConfig {
        n_queries: 24,
        max_records: 256,
        ..Default::default()
    })
}

#[test]
fn sql_pipeline_end_to_end() {
    let workload = small_sql_workload();
    let snapshots = sql::train_model(&workload, 24, 2, 0.02, 0);
    let model = snapshots.last().unwrap();

    let extractor = CharModelExtractor::new(model);
    let corr = CorrelationMeasure;
    let hyps: Vec<&dyn HypothesisFn> = workload
        .hypotheses
        .iter()
        .take(6)
        .map(|h| h as &dyn HypothesisFn)
        .collect();
    let n_hyps = hyps.len();
    let request = InspectionRequest {
        model_id: "sql".into(),
        extractor: &extractor,
        groups: vec![UnitGroup::all(model.hidden())],
        dataset: &workload.dataset,
        hypotheses: hyps,
        measures: vec![&corr],
    };
    let (frame, profile) = inspect(&request, &InspectionConfig::default()).unwrap();
    assert_eq!(frame.len(), n_hyps * model.hidden());
    assert!(frame
        .rows
        .iter()
        .all(|r| (-1.0..=1.0).contains(&r.unit_score)));
    assert!(profile.records_read > 0);
}

#[test]
fn trained_model_has_stronger_keyword_affinity_than_untrained() {
    let workload = small_sql_workload();
    let snapshots = sql::train_model(&workload, 24, 5, 0.02, 1);
    let untrained = &snapshots[0];
    let trained = snapshots.last().unwrap();

    // Probe with logreg over all units against the select keyword rule.
    let logreg = LogRegMeasure::l2(0.001);
    let select_hyp = workload
        .hypotheses
        .iter()
        .find(|h| h.id() == "select_kw:time")
        .unwrap();
    let run = |model: &deepbase_nn::CharLstmModel| {
        let extractor = CharModelExtractor::new(model);
        let request = InspectionRequest {
            model_id: "m".into(),
            extractor: &extractor,
            groups: vec![UnitGroup::all(model.hidden())],
            dataset: &workload.dataset,
            hypotheses: vec![select_hyp as &dyn HypothesisFn],
            measures: vec![&logreg],
        };
        inspect(&request, &InspectionConfig::default())
            .unwrap()
            .0
            .group_score("logreg_l2", "select_kw:time")
            .unwrap()
    };
    let trained_f1 = run(trained);
    let untrained_f1 = run(untrained);
    // The keyword position is predictable from a trained LSTM's state; an
    // untrained one provides a weaker signal (Fig. 12b's contrast).
    assert!(
        trained_f1 >= untrained_f1 - 0.05,
        "trained {trained_f1} vs untrained {untrained_f1}"
    );
    assert!(trained_f1 > 0.5, "trained probe F1 {trained_f1}");
}

#[test]
fn engines_agree_on_a_real_model() {
    let workload = small_sql_workload();
    let snapshots = sql::train_model(&workload, 16, 1, 0.02, 2);
    let model = snapshots.last().unwrap();
    let extractor = CharModelExtractor::new(model);
    let corr = CorrelationMeasure;
    let hyp = workload
        .hypotheses
        .iter()
        .find(|h| h.id() == "from_kw:time")
        .unwrap();

    let run = |engine: EngineKind| {
        let request = InspectionRequest {
            model_id: "m".into(),
            extractor: &extractor,
            groups: vec![UnitGroup::all(model.hidden())],
            dataset: &workload.dataset,
            hypotheses: vec![hyp as &dyn HypothesisFn],
            measures: vec![&corr],
        };
        let config = InspectionConfig {
            engine,
            epsilon: Some(1e-5),
            ..Default::default()
        };
        inspect(&request, &config)
            .unwrap()
            .0
            .unit_scores("corr", "from_kw:time")
    };
    let pybase = run(EngineKind::PyBase);
    let deepbase_scores = run(EngineKind::DeepBase);
    let madlib = run(EngineKind::Madlib);
    for ((u, a), ((_, b), (_, c))) in pybase.iter().zip(deepbase_scores.iter().zip(madlib.iter())) {
        assert!((a - b).abs() < 0.02, "unit {u}: pybase {a} vs deepbase {b}");
        assert!((a - c).abs() < 0.02, "unit {u}: pybase {a} vs madlib {c}");
    }
}

#[test]
fn specialized_units_outscore_free_units_and_verify() {
    let workload = paren::build(&paren::ParenWorkloadConfig {
        n_strings: 64,
        ns: 16,
        seed: 3,
    });
    let model = paren::train_specialized(&workload, 16, 4, 0.7, 15, 4);
    let extractor = CharModelExtractor::new(&model);

    // Correlation of each unit with the paren-symbol hypothesis.
    let hypotheses = paren::hypotheses();
    let corr = CorrelationMeasure;
    let request = InspectionRequest {
        model_id: "paren".into(),
        extractor: &extractor,
        groups: vec![UnitGroup::all(16)],
        dataset: &workload.dataset,
        hypotheses: vec![&hypotheses[0] as &dyn HypothesisFn],
        measures: vec![&corr],
    };
    let (frame, _) = inspect(&request, &InspectionConfig::default()).unwrap();
    let scores = frame.unit_scores("corr", "paren_symbols");
    let spec_mean: f32 = scores.iter().take(4).map(|(_, s)| s.abs()).sum::<f32>() / 4.0;
    let free_mean: f32 = scores.iter().skip(4).map(|(_, s)| s.abs()).sum::<f32>() / 12.0;
    assert!(
        spec_mean > free_mean,
        "specialized mean |r| {spec_mean} vs free {free_mean}"
    );

    // Verification separates the specialized units.
    let alphabet: Vec<u32> = (1..workload.vocab.size() as u32).collect();
    let vocab = workload.vocab.clone();
    let result = verify_units(
        &extractor,
        &workload.dataset,
        &hypotheses[0],
        &[0, 1, 2, 3],
        &alphabet,
        &move |s| vocab.char(s),
        &VerifyConfig {
            max_records: 20,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(result.n_baseline() > 0);
    assert!(result.n_treatment() > 0);
    assert!(result.silhouette > 0.0, "silhouette {}", result.silhouette);
}

#[test]
fn nmt_probe_runs_over_encoder_layers() {
    let workload = nmt::build(&nmt::NmtWorkloadConfig {
        n_sentences: 200,
        seed: 5,
    });
    let model = nmt::train_model(&workload, 16, 16, 12, 0.01, 6);
    let extractor = Seq2SeqEncoderExtractor::new(&model);
    let hypotheses = nmt::tag_hypotheses(&workload, &["DT", "."]);
    let hyp_refs: Vec<&dyn HypothesisFn> =
        hypotheses.iter().map(|h| h as &dyn HypothesisFn).collect();
    // Small corpus: give the probe more optimization passes per block so
    // the rare-class hypotheses (one period per sentence) are learnable.
    let logreg = LogRegMeasure {
        inner_epochs: 40,
        ..LogRegMeasure::l2(0.001)
    };
    let request = InspectionRequest {
        model_id: "nmt".into(),
        extractor: &extractor,
        groups: vec![
            UnitGroup::new("layer0", (0..16).collect()),
            UnitGroup::new("layer1", (16..32).collect()),
        ],
        dataset: &workload.dataset,
        hypotheses: hyp_refs,
        measures: vec![&logreg],
    };
    let (frame, _) = inspect(&request, &InspectionConfig::default()).unwrap();
    // 2 groups x 2 hypotheses x 16 units.
    assert_eq!(frame.len(), 2 * 2 * 16);
    // Determiners and periods are frequent, lexically-anchored tags: the
    // trained encoder must carry usable signal for at least one of them
    // (our scaled-down analog of Fig. 12b's mid-range F1 scores).
    let best_f1 = frame
        .rows
        .iter()
        .filter(|r| r.hyp_id == "pos:." || r.hyp_id == "pos:DT")
        .map(|r| r.group_score)
        .fold(0.0f32, f32::max);
    assert!(best_f1 > 0.15, "best tag probe F1 {best_f1}");
}

#[test]
fn inspect_query_over_real_catalog() {
    let workload = small_sql_workload();
    let snapshots = sql::train_model(&workload, 16, 1, 0.02, 7);

    struct Owned(deepbase_nn::CharLstmModel);
    impl Extractor for Owned {
        fn n_units(&self) -> usize {
            self.0.hidden()
        }
        fn extract(&self, records: &[&Record], units: &[usize]) -> deepbase_tensor::Matrix {
            CharModelExtractor::new(&self.0).extract(records, units)
        }
    }

    let mut catalog = Catalog::new();
    for (epoch, model) in snapshots.into_iter().enumerate() {
        catalog.add_model("sqlparser", epoch as i64, Arc::new(Owned(model)));
    }
    catalog.add_hypotheses(
        "keywords",
        sql::keyword_hypotheses()
            .into_iter()
            .take(3)
            .map(|h| Arc::new(h) as Arc<dyn HypothesisFn>)
            .collect(),
    );
    catalog.add_dataset("seq", Arc::new(workload.dataset.clone()));

    let table = run_query(
        "SELECT M.epoch, S.uid, S.unit_score \
         INSPECT U.uid AND H.h USING corr OVER D.seq AS S \
         FROM models M, units U, hypotheses H, inputs D \
         WHERE M.mid = 'sqlparser' AND M.epoch = 1 \
         HAVING S.unit_score > -2.0",
        &catalog,
        &InspectionConfig::default(),
    )
    .unwrap();
    // epoch-1 model only: 16 units x 3 hypotheses.
    assert_eq!(table.len(), 48);
}

#[test]
fn result_frames_post_process_relationally() {
    let workload = small_sql_workload();
    let snapshots = sql::train_model(&workload, 16, 1, 0.02, 8);
    let model = snapshots.last().unwrap();
    let extractor = CharModelExtractor::new(model);
    let corr = CorrelationMeasure;
    let hyps: Vec<&dyn HypothesisFn> = workload
        .hypotheses
        .iter()
        .take(4)
        .map(|h| h as &dyn HypothesisFn)
        .collect();
    let request = InspectionRequest {
        model_id: "sql".into(),
        extractor: &extractor,
        groups: vec![UnitGroup::all(model.hidden())],
        dataset: &workload.dataset,
        hypotheses: hyps,
        measures: vec![&corr],
    };
    let (frame, _) = inspect(&request, &InspectionConfig::default()).unwrap();

    // The §4.1 post-processing path: results land in the relational
    // engine and are filtered/grouped with SQL-style operators.
    let table = frame.to_table();
    let mut stats = deepbase_relational::ExecStats::default();
    let high = deepbase_relational::select(&table, &mut stats, |t, r| {
        t.value(r, "val").unwrap().as_f32().unwrap().abs() > 0.5
    });
    let grouped = deepbase_relational::aggregate(
        &high,
        &mut stats,
        &["hyp_id"],
        &[deepbase_relational::AggFn::Count],
    )
    .unwrap();
    // Sanity: groups partition the filtered rows.
    let total: i64 = (0..grouped.len())
        .map(|r| grouped.value(r, "count").unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total as usize, high.len());
}
